"""Scenario runner: compose stages, run specs, fan out over the engine.

:func:`run_scenario` is the canonical single-scenario entry point;
:func:`run_scenarios` runs many specs in parallel on the generation
engine's worker pool (each spec carries its own seed, so the result list
is deterministic for any ``workers``).  The default stage chain is the
paper's full loop; pass a custom ``stages`` tuple to run a prefix (e.g.
measurement only) or to splice in project-specific stages.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from ..exceptions import ParameterError
from ..generation.engine import GenerationEngine
from ..trace.packet import PacketTrace
from .spec import ScenarioSpec
from .stages import (
    AccountFlows,
    AccountingResult,
    Calibrate,
    CalibrationResult,
    Estimate,
    EstimationResult,
    FitModel,
    FitResult,
    Generate,
    GenerationResult,
    ImportFlows,
    IngestResult,
    NetworkStageResult,
    PipelineContext,
    RunSweep,
    SimulateNetwork,
    Stage,
    SweepStageResult,
    SynthesisResult,
    Synthesize,
    Validate,
    ValidationReport,
)

__all__ = [
    "DEFAULT_STAGES",
    "MEASUREMENT_STAGES",
    "INGEST_STAGES",
    "NETWORK_STAGES",
    "SWEEP_STAGES",
    "QUICK_MODE_ENV",
    "ScenarioResult",
    "ScenarioRunner",
    "run_scenario",
    "run_scenarios",
    "apply_quick_mode",
]

#: The full synthesize → measure → fit → generate → validate chain.
DEFAULT_STAGES: tuple[Stage, ...] = (
    Synthesize(),
    AccountFlows(),
    Estimate(),
    Calibrate(),
    FitModel(),
    Generate(),
    Validate(),
)

#: The section VI measurement prefix (no generation) — what ``measure``
#: and the experiment harness run.
MEASUREMENT_STAGES: tuple[Stage, ...] = (
    Synthesize(),
    AccountFlows(),
    Estimate(),
    Calibrate(),
    FitModel(),
    Validate(),
)

#: The real-trace-fit chain for specs carrying an ``ingest`` section:
#: imported telemetry streams through the same account → estimate → fit →
#: validate loop the synthetic scenarios use (generation stays available
#: for a model-driven twin of the imported trace).
INGEST_STAGES: tuple[Stage, ...] = (
    ImportFlows(),
    AccountFlows(),
    Estimate(),
    Calibrate(),
    FitModel(),
    Generate(),
    Validate(),
)

#: The whole-backbone chain for specs carrying a ``network`` section:
#: the network engine runs the full per-link loop internally.
NETWORK_STAGES: tuple[Stage, ...] = (SimulateNetwork(),)

#: The capacity-planning chain for specs carrying a ``sweep`` section:
#: the sweep service expands, pre-filters and fans out internally.
SWEEP_STAGES: tuple[Stage, ...] = (RunSweep(),)

#: Environment variable that shrinks scenario horizons for CI smoke runs.
QUICK_MODE_ENV = "REPRO_BENCH_QUICK"

#: Workload/generation horizon cap (seconds) under quick mode.
_QUICK_DURATION = 30.0


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one scenario run produced, stage by stage.

    Single-link runs populate the stage fields; network runs populate
    ``network`` (the per-link simulation bundle + report) and leave the
    single-link stages ``None``.
    """

    spec: ScenarioSpec
    ingest: IngestResult | None = None
    synthesis: SynthesisResult | None = None
    accounting: AccountingResult | None = None
    estimation: EstimationResult | None = None
    calibration: CalibrationResult | None = None
    fit: FitResult | None = None
    validation: ValidationReport | None = None
    generation: GenerationResult | None = None
    network: NetworkStageResult | None = None
    sweep: SweepStageResult | None = None

    @property
    def trace(self) -> PacketTrace | None:
        return self.synthesis.trace if self.synthesis is not None else None

    def report(self) -> dict:
        """JSON-safe report: the spec, per-stage summaries, validation."""
        out = {"spec": self.spec.to_dict()}
        if self.sweep is not None:
            out["sweep"] = self.sweep.summary()
            return out
        if self.network is not None:
            out["network"] = self.network.summary()
            return out
        out["stages"] = {}
        if self.ingest is not None:
            out["stages"]["import_flows"] = self.ingest.summary()
        else:
            out["stages"]["synthesize"] = self.synthesis.summary()
        out["stages"].update(
            {
                "account_flows": self.accounting.summary(),
                "estimate": self.estimation.summary(),
                "fit_model": self.fit.summary(),
            }
        )
        if self.calibration is not None:
            out["stages"]["calibrate"] = self.calibration.summary()
        if self.generation is not None:
            out["stages"]["generate"] = self.generation.summary()
        if self.validation is not None:
            out["validation"] = self.validation.to_dict()
        return out


class ScenarioRunner:
    """Run scenario specs through a (customisable) stage chain.

    With ``stages=None`` the chain is picked per spec:
    :data:`DEFAULT_STAGES` for single-link scenarios,
    :data:`NETWORK_STAGES` for specs carrying a ``network`` section.
    """

    def __init__(self, stages: tuple[Stage, ...] | None = None) -> None:
        self._auto = stages is None
        self.stages: tuple[Stage, ...] = (
            tuple(stages) if stages is not None else DEFAULT_STAGES
        )
        for stage in self.stages:
            if not isinstance(stage, Stage):
                raise ParameterError(
                    f"{stage!r} does not implement the Stage protocol "
                    "(needs a 'name' attribute and a run(context) method)"
                )

    def _stages_for(self, spec: ScenarioSpec) -> tuple[Stage, ...]:
        if self._auto and spec.sweep is not None:
            return SWEEP_STAGES
        if self._auto and spec.network is not None:
            return NETWORK_STAGES
        if self._auto and spec.ingest is not None:
            return INGEST_STAGES
        return self.stages

    def run(
        self,
        spec: ScenarioSpec,
        *,
        trace: PacketTrace | None = None,
        checkpoint_dir=None,
        resume: bool = False,
    ) -> ScenarioResult:
        """Run one scenario; ``trace`` measures an existing capture.

        ``checkpoint_dir``/``resume`` thread through to the engine
        stages (sweep cells, network links) — see
        :mod:`repro.checkpoint`.
        """
        context = PipelineContext(
            spec=spec,
            trace=trace,
            checkpoint_dir=checkpoint_dir,
            resume=bool(resume),
        )
        stages = self._stages_for(spec)
        for stage in stages:
            stage.run(context)
        if context.network is None and context.sweep is None:
            front = "ingest" if context.ingest is not None else "synthesis"
            for required in (front, "accounting", "estimation", "fit"):
                context.require(required, "run_scenario")
        return ScenarioResult(
            spec=spec,
            ingest=context.ingest,
            synthesis=context.synthesis,
            accounting=context.accounting,
            estimation=context.estimation,
            calibration=context.calibration,
            fit=context.fit,
            generation=context.generation,
            network=context.network,
            sweep=context.sweep,
            validation=context.validation,
        )

    def run_many(
        self, specs, *, workers: int = 1
    ) -> list[ScenarioResult]:
        """Run many specs in parallel over the engine's worker pool.

        Each spec carries its own seed, so results are deterministic and
        independent of ``workers``.
        """
        specs = list(specs)
        if not specs:
            raise ParameterError("run_many needs at least one scenario spec")
        engine = GenerationEngine(workers=int(workers))
        return engine.map_ordered(self.run, specs)


def run_scenario(
    spec: ScenarioSpec,
    *,
    trace: PacketTrace | None = None,
    stages: tuple[Stage, ...] | None = None,
    checkpoint_dir=None,
    resume: bool = False,
) -> ScenarioResult:
    """Run one scenario spec end-to-end (the canonical public API)."""
    return ScenarioRunner(stages).run(
        spec, trace=trace, checkpoint_dir=checkpoint_dir, resume=resume
    )


def run_scenarios(
    specs,
    *,
    workers: int = 1,
    stages: tuple[Stage, ...] | None = None,
) -> list[ScenarioResult]:
    """Run many scenario specs, fanned out over ``workers`` threads."""
    return ScenarioRunner(stages).run_many(specs, workers=workers)


def apply_quick_mode(
    spec: ScenarioSpec, *, force: bool | None = None
) -> ScenarioSpec:
    """Cap scenario horizons when ``REPRO_BENCH_QUICK`` is set.

    CI smoke jobs run registry scenarios end-to-end but cannot afford the
    full 120 s intervals; quick mode trims workload and generation
    durations to 30 s without touching any other knob.  ``force`` overrides
    the environment check (True/False); the spec is returned unchanged
    when quick mode is off.
    """
    if force is None:
        # same convention as benchmarks/conftest.py: "" and "0" mean off
        quick = os.environ.get(QUICK_MODE_ENV, "") not in ("", "0")
    else:
        quick = force
    if not quick:
        return spec
    changes = {}
    if spec.workload is not None and spec.workload.duration > _QUICK_DURATION:
        changes["workload"] = replace(
            spec.workload, duration=_QUICK_DURATION
        )
        if spec.anomaly is not None:
            # keep the injected event inside the shortened capture
            start = min(spec.anomaly.start, _QUICK_DURATION / 3.0)
            duration = min(
                spec.anomaly.duration, _QUICK_DURATION - start - 1.0
            )
            changes["anomaly"] = replace(
                spec.anomaly, start=start, duration=duration
            )
    if (
        spec.generation is not None
        and spec.generation.duration is not None
        and spec.generation.duration > _QUICK_DURATION
    ):
        changes["generation"] = replace(
            spec.generation, duration=_QUICK_DURATION
        )
    if spec.network is not None and spec.network.duration > _QUICK_DURATION:
        # keep every event inside the shortened capture, like anomalies
        events = tuple(
            replace(
                event,
                start=min(event.start, _QUICK_DURATION / 3.0),
                duration=min(
                    event.duration,
                    _QUICK_DURATION
                    - min(event.start, _QUICK_DURATION / 3.0)
                    - 1.0,
                ),
            )
            for event in spec.network.events
        )
        changes["network"] = replace(
            spec.network, duration=_QUICK_DURATION, events=events
        )
    return replace(spec, **changes) if changes else spec
