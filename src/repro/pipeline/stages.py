"""Composable pipeline stages: synthesize → measure → fit → generate → validate.

Each stage is a small object with a ``name`` and a ``run(context)`` method
(the :class:`Stage` protocol).  Stages read and write a shared
:class:`PipelineContext` and return a typed result object; the default
stage chain reproduces the paper's section VI/VII loop exactly — the same
calls in the same order as the pre-pipeline CLI and harness, so Table I
presets produce bit-for-bit identical traces and statistics through the
new front door.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np

from .._util import as_rng
from ..calibration import (
    CalibrationReport,
    ClosedLoopReport,
    calibrate_flows,
    validate_fitted_spec,
)
from ..applications.anomaly import (
    AnomalyDetector,
    AnomalyEvent,
    inject_flood,
    inject_outage,
)
from ..core.fitting import PowerFit
from ..core.model import PoissonShotNoiseModel, SuperposedModel
from ..core.shots import PowerShot
from ..exceptions import ParameterError, ReproError
from ..execution import run_health
from ..flows.exporter import export_flows
from ..flows.records import FlowSet
from ..generation.engine import GenerationEngine
from ..measurement.engine import MeasurementEngine
from ..netsim.workloads import LinkWorkload
from ..stats.estimators import replay_flow_statistics
from ..stats.qq import ExponentialityReport, exponentiality
from ..stats.timeseries import RateSeries
from ..trace.packet import PacketTrace
from .spec import ScenarioSpec

__all__ = [
    "Stage",
    "PipelineContext",
    "TraceMeta",
    "IngestResult",
    "SynthesisResult",
    "AccountingResult",
    "CalibrationResult",
    "EstimationResult",
    "FitResult",
    "GenerationResult",
    "NetworkStageResult",
    "SweepStageResult",
    "ValidationReport",
    "Synthesize",
    "ImportFlows",
    "AccountFlows",
    "Estimate",
    "Calibrate",
    "FitModel",
    "Generate",
    "SimulateNetwork",
    "RunSweep",
    "Validate",
]


@runtime_checkable
class Stage(Protocol):
    """One pipeline step: consumes/extends the context, returns a result."""

    name: str

    def run(self, context: "PipelineContext"): ...


@dataclass(frozen=True)
class TraceMeta:
    """Capture metadata that survives when the trace itself is streamed.

    Set by :class:`Synthesize` in every mode, so downstream stages read
    durations and capacities from one place whether the packets are an
    in-memory :class:`PacketTrace` or a single-use synthesis stream.
    """

    name: str
    duration: float
    link_capacity: float

    @classmethod
    def from_trace(cls, trace: PacketTrace) -> "TraceMeta":
        return cls(
            name=trace.name,
            duration=float(trace.duration),
            link_capacity=float(trace.link_capacity),
        )


@dataclass
class PipelineContext:
    """Mutable bag of artifacts shared by the stages of one scenario run.

    ``trace`` and ``stream`` are alternatives: a streamed synthesis
    (``spec.synthesis.chunk``/``workers``) sets ``stream`` — a
    :class:`~repro.synthesis.StreamingSynthesis` consumed exactly once
    by :class:`AccountFlows` — and leaves ``trace`` as ``None``; the
    classic path materialises ``trace``.  ``trace_meta`` is always set.
    """

    spec: ScenarioSpec
    trace: PacketTrace | None = None
    workload: LinkWorkload | None = None
    stream: "object | None" = None  # StreamingSynthesis
    trace_meta: TraceMeta | None = None
    checkpoint_dir: "object | None" = None  # sweep/network durable results
    resume: bool = False
    ingest: "IngestResult | None" = None
    synthesis: "SynthesisResult | None" = None
    accounting: "AccountingResult | None" = None
    estimation: "EstimationResult | None" = None
    calibration: "CalibrationResult | None" = None
    fit: "FitResult | None" = None
    generation: "GenerationResult | None" = None
    network: "NetworkStageResult | None" = None
    sweep: "SweepStageResult | None" = None
    validation: "ValidationReport | None" = None

    def require(self, attribute: str, needed_by: str):
        value = getattr(self, attribute)
        if value is None:
            raise ParameterError(
                f"stage {needed_by!r} needs {attribute!r}; run the producing "
                "stage first (or pass trace=... to run_scenario)"
            )
        return value

    def require_meta(self, needed_by: str) -> TraceMeta:
        """Trace metadata, derived from the trace for hand-wired contexts
        that skipped the :class:`Synthesize` stage."""
        if self.trace_meta is None and self.trace is not None:
            self.trace_meta = TraceMeta.from_trace(self.trace)
        return self.require("trace_meta", needed_by)


# -- typed stage results ----------------------------------------------------


@dataclass(frozen=True)
class IngestResult:
    """Output of :class:`ImportFlows`.

    ``stream`` is the live import stream consumed by
    :class:`AccountFlows`; its counters (records read, packets fed to
    the measurement engine) are complete once the accounting stage has
    drained it — :meth:`summary` reads them at call time, so a report
    rendered after the run sees final values.
    """

    path: str
    format: str
    order: str
    stream: "object"  # FlowPacketStream | PacketChunkStream
    meta: TraceMeta

    def summary(self) -> dict:
        stream = self.stream
        duration = float(self.meta.duration)
        octets = int(stream.scan.octets)
        # a native .rptr header names no byte total; scanned formats do
        mean_rate = (
            8.0 * octets / duration if duration > 0 and octets > 0 else None
        )
        capacity = float(self.meta.link_capacity)
        return {
            "path": self.path,
            "format": self.format,
            "order": self.order,
            "records": int(stream.records_read),
            "records_skipped": int(getattr(stream, "records_skipped", 0)),
            "packets": int(stream.packets_emitted),
            "duration_s": duration,
            "clock_offset_s": float(stream.base_offset),
            "mean_rate_bps": mean_rate,
            "utilization": (
                mean_rate / capacity
                if capacity > 0 and mean_rate is not None
                else None
            ),
        }


@dataclass(frozen=True)
class SynthesisResult:
    """Output of :class:`Synthesize`.

    ``trace`` is ``None`` when the workload streams straight into the
    measurement stage (``source="streamed"``); ``stream`` then carries
    the live packet/byte counters, which are complete once
    :class:`AccountFlows` has drained it — :meth:`summary` reads them
    at call time, so a report rendered after the run sees final values.
    """

    trace: PacketTrace | None
    workload: LinkWorkload | None
    source: str  # "synthesized", "streamed" or "provided"
    anomaly: str | None = None
    stream: "object | None" = None  # StreamingSynthesis
    meta: TraceMeta | None = None

    def summary(self) -> dict:
        if self.trace is not None:
            return {
                "name": self.trace.name,
                "source": self.source,
                "packets": int(len(self.trace)),
                "duration_s": float(self.trace.duration),
                "mean_rate_bps": float(self.trace.mean_rate_bps),
                "utilization": float(self.trace.utilization),
                "anomaly": self.anomaly,
            }
        duration = float(self.meta.duration)
        mean_rate = 8.0 * float(self.stream.total_bytes) / duration
        return {
            "name": self.meta.name,
            "source": self.source,
            "packets": int(self.stream.packet_count),
            "duration_s": duration,
            "mean_rate_bps": mean_rate,
            "utilization": mean_rate / float(self.meta.link_capacity),
            "anomaly": self.anomaly,
        }


@dataclass(frozen=True)
class AccountingResult:
    """Output of :class:`AccountFlows`.

    ``series`` is set when the streaming measurement engine ran: the
    single-packet-filtered rate series it accumulated in the same pass
    (bit-for-bit what :class:`Estimate` would compute from the packet
    map), so the estimation stage need not touch the packets again.
    """

    flows: FlowSet
    series: RateSeries | None = None
    engine: str = "in_memory"
    #: Pre-discard rate series, accumulated when the scenario streams
    #: synthesis and the validation stage will need the raw link rate
    #: (anomaly detection) — there is no trace to re-bin later.
    raw_series: RateSeries | None = None

    def summary(self) -> dict:
        return {
            "kind": self.flows.key_kind,
            "n_flows": int(len(self.flows)),
            "timeout_s": float(self.flows.timeout),
            "discarded_packets": int(self.flows.discarded_packets),
            "engine": self.engine,
        }


@dataclass(frozen=True)
class EstimationResult:
    """Output of :class:`Estimate`: the measured series + the summary."""

    series: RateSeries
    statistics: "object"  # FlowStatistics
    online_statistics: "object | None" = None  # EWMA snapshot when requested

    def summary(self) -> dict:
        stats = self.statistics
        out = {
            "delta_s": float(self.series.delta),
            "n_samples": int(len(self.series)),
            "measured_mean_bps": float(self.series.mean * 8.0),
            "measured_cov": float(self.series.coefficient_of_variation),
            "arrival_rate": float(stats.arrival_rate),
            "mean_size_bytes": float(stats.mean_size),
            "mean_square_size_over_duration": float(
                stats.mean_square_size_over_duration
            ),
            "mean_duration_s": (
                float(stats.mean_duration)
                if np.isfinite(stats.mean_duration)
                else None
            ),
        }
        if self.online_statistics is not None:
            online = self.online_statistics
            out["ewma"] = {
                "arrival_rate": float(online.arrival_rate),
                "mean_size_bytes": float(online.mean_size),
                "mean_square_size_over_duration": float(
                    online.mean_square_size_over_duration
                ),
            }
        return out


@dataclass(frozen=True)
class FitResult:
    """Output of :class:`FitModel`."""

    model: PoissonShotNoiseModel
    power_fit: PowerFit
    fitted: PoissonShotNoiseModel
    model_cov: dict[float, float]
    superposed: SuperposedModel | None = None
    class_note: str | None = None

    def summary(self) -> dict:
        out = {
            "fitted_power": float(self.power_fit.power),
            "kappa": float(self.power_fit.kappa),
            "clipped": bool(self.power_fit.clipped),
            "model_mean_bps": float(self.model.mean * 8.0),
            "model_cov": {
                f"{power:g}": float(cov)
                for power, cov in self.model_cov.items()
            },
            "fitted_cov": float(self.fitted.coefficient_of_variation),
        }
        if self.superposed is not None:
            out["superposed"] = {
                "n_classes": len(self.superposed.components),
                "mean_bps": float(self.superposed.mean * 8.0),
                "cov": float(self.superposed.coefficient_of_variation),
            }
        if self.class_note:
            out["class_note"] = self.class_note
        return out


@dataclass(frozen=True)
class GenerationResult:
    """Output of :class:`Generate`: the model-driven rate path."""

    series: RateSeries
    mode: str
    seed: int
    chunk: float | None
    workers: int

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "seed": int(self.seed),
            "chunk_s": None if self.chunk is None else float(self.chunk),
            "workers": int(self.workers),
            "n_samples": int(len(self.series)),
            "generated_mean_bps": float(self.series.mean * 8.0),
            "generated_cov": float(self.series.coefficient_of_variation),
        }


@dataclass(frozen=True)
class ValidationReport:
    """Measured-vs-model comparison: the pipeline's final artifact."""

    scenario: str
    seed: int
    measured_cov: float
    measured_mean_bps: float
    model_cov: dict[float, float]
    fitted_power: float
    fitted_cov: float
    relative_error: float
    cov_band: float
    within_band: bool
    required_capacity_bps: float
    epsilon: float
    autocorrelation_lags_s: tuple[float, ...] = ()
    autocorrelation_measured: tuple[float, ...] = ()
    autocorrelation_model: tuple[float, ...] = ()
    autocorrelation_rmse: float = float("nan")
    interarrivals: ExponentialityReport | None = None
    generated_cov: float | None = None
    generated_vs_measured_error: float | None = None
    superposed_cov: float | None = None
    anomalies: tuple[AnomalyEvent, ...] = ()
    anomaly_delta_s: float | None = None

    @property
    def passed(self) -> bool:
        """The paper's headline check: fitted CoV inside the ±band."""
        return self.within_band

    def to_dict(self) -> dict:
        """JSON-safe report (what ``python -m repro run --report`` writes)."""
        out = {
            "scenario": self.scenario,
            "seed": int(self.seed),
            "passed": bool(self.passed),
            "measured": {
                "cov": float(self.measured_cov),
                "mean_bps": float(self.measured_mean_bps),
            },
            "model": {
                "cov_by_power": {
                    f"{p:g}": float(c) for p, c in self.model_cov.items()
                },
                "fitted_power": float(self.fitted_power),
                "fitted_cov": float(self.fitted_cov),
            },
            "cov_relative_error": float(self.relative_error),
            "cov_band": float(self.cov_band),
            "within_band": bool(self.within_band),
            "provisioning": {
                "epsilon": float(self.epsilon),
                "required_capacity_bps": float(self.required_capacity_bps),
            },
            "autocorrelation": {
                "lags_s": [float(v) for v in self.autocorrelation_lags_s],
                "measured": [float(v) for v in self.autocorrelation_measured],
                "model": [float(v) for v in self.autocorrelation_model],
                "rmse": float(self.autocorrelation_rmse),
            },
        }
        if self.interarrivals is not None:
            out["interarrivals"] = {
                "ks_statistic": float(self.interarrivals.ks_statistic),
                "ks_pvalue": float(self.interarrivals.ks_pvalue),
                "cov": float(self.interarrivals.cov),
                "qq_correlation": float(self.interarrivals.qq_correlation),
                "plausibly_exponential": bool(
                    self.interarrivals.plausibly_exponential
                ),
            }
        if self.generated_cov is not None:
            out["generation"] = {
                "cov": float(self.generated_cov),
                "vs_measured_error": float(self.generated_vs_measured_error),
            }
        if self.superposed_cov is not None:
            out["superposed_cov"] = float(self.superposed_cov)
        if self.anomaly_delta_s is not None:
            out["anomalies"] = [
                {
                    "kind": event.kind,
                    "start_s": float(event.start_time(self.anomaly_delta_s)),
                    "duration_s": float(event.n_samples * self.anomaly_delta_s),
                    "peak_z": float(event.peak_z),
                }
                for event in self.anomalies
            ]
        return out


# -- built-in stages --------------------------------------------------------


@dataclass(frozen=True)
class NetworkStageResult:
    """Output of :class:`SimulateNetwork`: per-link results + the report.

    ``health`` snapshots the retry/degradation log at stage completion
    (see :mod:`repro.execution.health`); it rides into the report JSON
    but stays out of the :class:`~repro.network.NetworkReport` itself,
    so recovered runs compare bitwise-equal to clean ones.
    """

    simulation: "object"  # repro.network.NetworkSimulation
    report: "object"  # repro.network.NetworkReport
    health: "object | None" = None  # repro.execution.RunHealth

    def summary(self) -> dict:
        out = self.report.to_dict()
        if self.health is not None:
            out["health"] = self.health.to_dict()
        return out


class SimulateNetwork:
    """Whole-backbone simulation for specs carrying a ``network`` section.

    Builds the topology, demand matrix and events from
    :class:`~repro.pipeline.spec.NetworkSpec`, then runs the
    :class:`~repro.network.NetworkEngine` — every link gets the
    superposed, routed packet population streamed through the synthesis
    and measurement engines, a fitted model, a provisioning verdict and
    (with ``validation.detect_anomalies``) the anomaly detector.  The
    per-link knobs come from the scenario's shared sections: ``flows``
    (accounting), ``estimation.delta`` (rate binning) and ``validation``
    (epsilon / detection thresholds).
    """

    name = "simulate_network"

    def run(self, context: PipelineContext) -> NetworkStageResult:
        from ..network.engine import NetworkEngine

        spec = context.spec
        if spec.network is None:
            raise ParameterError(
                f"scenario {spec.name!r} has no 'network' section; the "
                "SimulateNetwork stage only runs network scenarios"
            )
        topology, demands, events = spec.network.build()
        engine = NetworkEngine(
            chunk=spec.network.chunk,
            workers=int(spec.network.workers),
            backend=spec.network.backend,
            retry=spec.network.retry,
        )
        simulation = engine.simulate(
            topology,
            demands,
            routing=spec.network.routing,
            events=events,
            seed=int(spec.seed),
            name=spec.name,
            delta=spec.estimation.delta,
            flow_kind=spec.flows.kind,
            timeout=spec.flows.timeout,
            min_packets=int(spec.flows.min_packets),
            prefix_length=int(spec.flows.prefix_length),
            epsilon=spec.validation.epsilon,
            detect_anomalies=bool(spec.validation.detect_anomalies),
            threshold_sigma=spec.validation.threshold_sigma,
            min_run=int(spec.validation.min_run),
            checkpoint_dir=context.checkpoint_dir,
            resume=bool(context.resume),
        )
        context.network = NetworkStageResult(
            simulation=simulation,
            report=simulation.report(),
            health=run_health(),
        )
        return context.network


@dataclass(frozen=True)
class SweepStageResult:
    """Output of :class:`RunSweep`: per-cell outcomes + the ranked report.

    The run's :class:`~repro.execution.RunHealth` snapshot rides into
    the report JSON (``summary()``) but stays out of the ranked
    :class:`~repro.sweep.report.SweepReport`, so recovered/resumed runs
    compare bitwise-equal to clean ones.
    """

    result: "object"  # repro.sweep.SweepResult
    report: "object"  # repro.sweep.SweepReport

    def summary(self) -> dict:
        out = self.report.to_dict()
        health = getattr(self.result, "health", None)
        if health is not None:
            out["health"] = health.to_dict()
        resumed = getattr(self.result, "resumed", ())
        if resumed:
            out["resumed_cells"] = [int(i) for i in resumed]
        return out


class RunSweep:
    """Capacity-planning sweep for specs carrying a ``sweep`` section.

    Expands the spec's growth/failure/routing axes into concrete
    network-family cells, assesses every cell with the closed-form
    moment-superposition pre-filter, and dispatches the full
    :class:`~repro.network.NetworkEngine` only on cells inside the
    marginal SLA band — fanned over the generation engine's worker pool
    (``sweep.execution.workers``).  See :mod:`repro.sweep`.
    """

    name = "run_sweep"

    def run(self, context: PipelineContext) -> SweepStageResult:
        from ..sweep.service import run_sweep

        spec = context.spec
        if spec.sweep is None:
            raise ParameterError(
                f"scenario {spec.name!r} has no 'sweep' section; the "
                "RunSweep stage only runs sweep scenarios"
            )
        result = run_sweep(
            spec,
            checkpoint_dir=context.checkpoint_dir,
            resume=bool(context.resume),
        )
        context.sweep = SweepStageResult(result=result, report=result.report)
        return context.sweep


class Synthesize:
    """Materialise (or stream) the workload's packet trace.

    When the context already carries a trace (measuring an external
    capture) the stage records it as ``source="provided"`` and skips
    synthesis — anomaly injection still applies.

    With the spec's ``synthesis`` section engaged (``chunk`` or
    ``workers`` set) the workload is *not* materialised: the stage
    hands :class:`AccountFlows` a
    :class:`~repro.synthesis.StreamingSynthesis` and the packets flow
    straight into the streaming measurement engine — synthesize →
    measure in bounded memory, the paper's full-rate OC-12 scale.
    Anomaly injection needs the materialised packet array, so scenarios
    with an ``anomaly`` section fall back to in-memory synthesis; the
    engine's chunk/worker invariance makes the packets identical either
    way.
    """

    name = "synthesize"

    def run(self, context: PipelineContext) -> SynthesisResult:
        spec = context.spec
        anomaly_label = None
        stream = None
        trace = None
        if context.trace is not None:
            trace = context.trace
            source = "provided"
        else:
            if spec.workload is None:
                raise ParameterError(
                    f"scenario {spec.name!r} has no workload section and no "
                    "trace was provided; add a 'workload' to the spec or "
                    "call run_scenario(spec, trace=...)"
                )
            context.workload = spec.workload.build()
            if spec.synthesis.uses_engine and spec.anomaly is None:
                stream = context.workload.synthesize_chunks(
                    seed=spec.seed,
                    chunk=spec.synthesis.chunk or 1_000_000,
                    workers=int(spec.synthesis.workers),
                    backend=spec.synthesis.backend,
                )
                source = "streamed"
            else:
                trace = context.workload.synthesize(seed=spec.seed).trace
                source = "synthesized"
        if spec.anomaly is not None:
            trace = _apply_anomaly(trace, spec)
            anomaly_label = spec.anomaly.kind
        if trace is not None:
            context.trace = trace
            context.trace_meta = TraceMeta.from_trace(trace)
        else:
            context.stream = stream
            context.trace_meta = TraceMeta(
                name=stream.name,
                duration=float(stream.duration),
                link_capacity=float(stream.link_capacity),
            )
        context.synthesis = SynthesisResult(
            trace=trace,
            workload=context.workload,
            source=source,
            anomaly=anomaly_label,
            stream=stream,
            meta=context.trace_meta,
        )
        return context.synthesis


def _apply_anomaly(trace: PacketTrace, spec: ScenarioSpec) -> PacketTrace:
    anomaly = spec.anomaly
    # dedicated child stream so injection never perturbs synthesis draws
    rng = as_rng(np.random.default_rng([int(spec.seed), 0xA40]))
    if anomaly.kind == "flood":
        return inject_flood(
            trace,
            start=anomaly.start,
            duration=anomaly.duration,
            rate_bytes_per_s=anomaly.rate_bytes_per_s,
            packet_size=int(anomaly.packet_size),
            rng=rng,
        )
    return inject_outage(
        trace,
        start=anomaly.start,
        duration=anomaly.duration,
        drop_fraction=anomaly.drop_fraction,
        rng=rng,
    )


class ImportFlows:
    """Open the spec's telemetry file as a measurement-ready stream.

    The ``real-trace-fit`` twin of :class:`Synthesize`: instead of
    synthesizing a workload, the stage opens the ``ingest`` section's
    NetFlow v5 / IPFIX / pcap / ``.rptr`` file via
    :func:`repro.interop.open_import_stream` and hands
    :class:`AccountFlows` a time-ordered packet-chunk stream, so the
    paper's idle-timeout flow semantics are re-applied uniformly by the
    measurement engine's open-flow carry table — the archive never
    needs to fit in memory.
    """

    name = "import_flows"

    def run(self, context: PipelineContext) -> IngestResult:
        from ..interop import open_import_stream

        spec = context.spec
        if spec.ingest is None:
            raise ParameterError(
                f"scenario {spec.name!r} has no 'ingest' section; "
                "ImportFlows only runs in real-trace-fit scenarios"
            )
        path = spec.ingest.require_path()
        stream = open_import_stream(
            path,
            format=spec.ingest.format,
            chunk=spec.ingest.chunk,
            order=spec.ingest.order,
            rebase=spec.ingest.rebase,
            duration=spec.ingest.duration,
            link_capacity=spec.ingest.link_capacity_bps,
            errors=spec.ingest.errors,
        )
        if stream.scan.empty:
            raise ParameterError(
                f"{path}: the archive contains no flow records or packets; "
                "nothing to fit"
            )
        context.stream = stream
        context.trace_meta = TraceMeta(
            name=Path(path).stem,
            duration=float(stream.duration),
            link_capacity=float(stream.link_capacity or 0.0),
        )
        context.ingest = IngestResult(
            path=str(path),
            format=str(stream.format),
            order=str(getattr(stream, "order", "start")),
            stream=stream,
            meta=context.trace_meta,
        )
        return context.ingest


class AccountFlows:
    """NetFlow-style flow accounting over the trace (section III).

    With the spec's ``measurement`` section at its defaults this is the
    classic in-memory exporter.  When ``measurement.chunk`` or
    ``measurement.workers`` is set, the streaming
    :class:`~repro.measurement.MeasurementEngine` runs instead — chunked
    accounting plus the filtered rate series in one pass, bit-for-bit
    equal to the in-memory path — and the series is handed to
    :class:`Estimate` through the :class:`AccountingResult`.
    """

    name = "account_flows"

    def run(self, context: PipelineContext) -> AccountingResult:
        spec = context.spec
        flow_kwargs = dict(
            key=spec.flows.kind,
            timeout=spec.flows.timeout,
            min_packets=int(spec.flows.min_packets),
            prefix_length=int(spec.flows.prefix_length),
        )
        if context.stream is not None:
            # streamed synthesis: the packets exist only as this stream,
            # consumed here in one synthesize → measure pass.  The raw
            # (pre-discard) series is accumulated alongside when the
            # validation stage will need the raw link rate, since there
            # is no trace to re-bin later.
            meta = context.require_meta(self.name)
            engine = MeasurementEngine(
                chunk=spec.measurement.chunk,
                workers=int(spec.measurement.workers),
                backend=spec.measurement.backend,
            )
            measured = engine.measure_chunks(
                context.stream,
                duration=meta.duration,
                delta=spec.estimation.delta,
                link_capacity=meta.link_capacity,
                keep_raw_series=bool(spec.validation.detect_anomalies),
                **flow_kwargs,
            )
            context.accounting = AccountingResult(
                flows=measured.flows,
                series=measured.series,
                engine=(
                    "ingest" if context.ingest is not None
                    else "streamed_synthesis"
                ),
                raw_series=measured.raw_series,
            )
            return context.accounting
        trace = context.require("trace", self.name)
        if spec.measurement.uses_engine:
            engine = MeasurementEngine(
                chunk=spec.measurement.chunk,
                workers=int(spec.measurement.workers),
                backend=spec.measurement.backend,
            )
            measured = engine.measure_trace(
                trace, delta=spec.estimation.delta, **flow_kwargs
            )
            context.accounting = AccountingResult(
                flows=measured.flows,
                series=measured.series,
                engine="streaming",
            )
        else:
            flows = export_flows(trace, keep_packet_map=True, **flow_kwargs)
            context.accounting = AccountingResult(flows=flows)
        return context.accounting


class Estimate:
    """Measured rate series + three-parameter summary (sections V-F/V-G)."""

    name = "estimate"

    def run(self, context: PipelineContext) -> EstimationResult:
        spec = context.spec
        meta = context.require_meta(self.name)
        accounting = context.require("accounting", self.name)
        flows = accounting.flows
        if accounting.series is not None:
            series = accounting.series
        else:
            trace = context.require("trace", self.name)
            if flows.packet_flow_ids is None:
                raise ParameterError(
                    "the FlowSet carries no packet map, so the measured "
                    "rate series cannot exclude discarded single-packet "
                    "flows; rebuild it with export_flows(..., "
                    "keep_packet_map=True), or run the AccountFlows stage "
                    "(or the measurement engine) which does so for you"
                )
            series = RateSeries.from_packets(
                trace,
                spec.estimation.delta,
                packet_mask=flows.packet_flow_ids >= 0,
            )
        statistics = flows.statistics(meta.duration)
        online = None
        if spec.estimation.estimator == "ewma":
            online = _ewma_replay(flows, spec.estimation.ewma_eps)
        context.estimation = EstimationResult(
            series=series, statistics=statistics, online_statistics=online
        )
        return context.estimation


def _ewma_replay(flows: FlowSet, eps: float):
    """Replay the flow set through the router-style EWMA estimators.

    Closed-form vectorized replay (see
    :func:`repro.stats.estimators.replay_flow_statistics`); the per-flow
    loop it replaces is kept as
    :func:`repro.measurement.reference.reference_ewma_replay`.
    """
    return replay_flow_statistics(flows, eps)


@dataclass(frozen=True)
class CalibrationResult:
    """What the calibrate stage produced: the fit, and (optionally) the
    closed-loop verdict."""

    report: CalibrationReport
    closed_loop: ClosedLoopReport | None = None
    powers: tuple[float, ...] = ()

    def summary(self) -> dict:
        out = {"calibration": self.report.summary()}
        if self.powers:
            out["powers"] = list(self.powers)
        if self.closed_loop is not None:
            out["closed_loop"] = self.closed_loop.to_dict()
        return out


class Calibrate:
    """Fit the paper's size-law families to the measured flows.

    Runs right after flow accounting/estimation, on whatever produced
    the flows — a synthesized workload, or telemetry imported by
    :class:`ImportFlows` — and no-ops (returns ``None``) when the spec
    carries no ``calibration`` section, so existing scenarios are
    untouched.  With ``calibration.validate`` set, the closed loop runs
    inline: synthesize from the fitted spec, compare λ, E[S],
    utilization moments and tail quantiles within the declared
    tolerances (failures land in the result, not as an exception — the
    CLI turns them into a nonzero exit).
    """

    name = "calibrate"

    def run(self, context: PipelineContext) -> CalibrationResult | None:
        spec = context.spec
        section = spec.calibration
        if section is None:
            return None
        meta = context.require_meta(self.name)
        flows = context.require("accounting", self.name).flows
        seed = section.seed if section.seed is not None else spec.seed
        powers = (
            section.powers if section.powers is not None else spec.fit.powers
        )
        report = calibrate_flows(
            flows,
            duration=meta.duration,
            source=meta.name,
            families=section.families,
            select=section.select,
            restarts=int(section.restarts),
            seed=int(seed),
            bins=int(section.bins),
            tail_k=int(section.tail_k),
            time_bins=int(section.time_bins),
            tail_quantiles=section.tail_quantiles,
            link_capacity_bps=meta.link_capacity or None,
            chunk=section.chunk,
            workers=int(section.workers),
            backend=section.backend,
            metadata={"scenario": spec.name},
        )
        closed = None
        if section.validate:
            source_cov = None
            if context.estimation is not None:
                values = context.estimation.series.values
                if values.size and values.mean() > 0.0:
                    source_cov = float(values.std() / values.mean())
            closed = validate_fitted_spec(
                report,
                seed=int(seed),
                duration=section.validate_duration,
                delta=spec.estimation.delta,
                lambda_rtol=section.lambda_rtol,
                mean_rtol=section.mean_rtol,
                rate_rtol=section.rate_rtol,
                tail_rtol=section.tail_rtol,
                cov_atol=section.cov_atol,
                source_rate_cov=source_cov,
            )
        context.calibration = CalibrationResult(
            report=report, closed_loop=closed, powers=tuple(powers)
        )
        return context.calibration


class FitModel:
    """Parameterise the shot-noise model and fit the shot power."""

    name = "fit_model"

    def run(self, context: PipelineContext) -> FitResult:
        spec = context.spec
        meta = context.require_meta(self.name)
        flows = context.require("accounting", self.name).flows
        series = context.require("estimation", self.name).series
        model = PoissonShotNoiseModel.from_flows(
            flows.sizes, flows.durations, meta.duration
        )
        power_fit = model.fit_power(series.variance)
        fitted = model.with_shot(power_fit.shot)
        model_cov = {
            float(b): model.with_shot(PowerShot(b)).coefficient_of_variation
            for b in spec.fit.powers
        }
        superposed, note = None, None
        if spec.fit.class_split_bytes is not None:
            superposed, note = _fit_classes(
                flows, meta.duration, spec.fit.class_split_bytes,
                power_fit.shot,
            )
        context.fit = FitResult(
            model=model,
            power_fit=power_fit,
            fitted=fitted,
            model_cov=model_cov,
            superposed=superposed,
            class_note=note,
        )
        return context.fit


def _fit_classes(flows, duration, threshold, shot):
    """Mice/elephants split → per-class models → SuperposedModel."""
    try:
        mice, elephants = flows.partition_by_size(threshold)
    except ParameterError:
        return None, (
            f"class split at {threshold:g} B left one class empty; "
            "superposition skipped"
        )
    components = [
        PoissonShotNoiseModel.from_flows(
            part.sizes, part.durations, duration, shot=shot
        )
        for part in (mice, elephants)
    ]
    return SuperposedModel(components), None


class Generate:
    """Model-driven rate generation through the engine (section VII-C)."""

    name = "generate"

    def run(self, context: PipelineContext) -> GenerationResult | None:
        spec = context.spec
        if spec.generation is None:
            return None
        meta = context.require_meta(self.name)
        fitted = context.require("fit", self.name).fitted
        gen = spec.generation
        duration = gen.duration if gen.duration is not None else meta.duration
        delta = gen.delta if gen.delta is not None else spec.estimation.delta
        seed = gen.seed if gen.seed is not None else spec.seed
        engine = GenerationEngine(
            chunk=gen.chunk, workers=int(gen.workers), backend=gen.backend
        )
        if gen.mode == "streamed":
            series = engine.rate_series_streamed(
                fitted.arrival_rate,
                fitted.ensemble,
                fitted.shot,
                duration,
                delta,
                seed=int(seed),
            )
        else:
            series = engine.rate_series(
                fitted.arrival_rate,
                fitted.ensemble,
                fitted.shot,
                duration,
                delta,
                rng=as_rng(int(seed)),
                exact=gen.mode == "exact",
            )
        context.generation = GenerationResult(
            series=series,
            mode=gen.mode,
            seed=int(seed),
            chunk=gen.chunk,
            workers=int(gen.workers),
        )
        return context.generation


class Validate:
    """Measured-vs-model comparison: CoV band, autocorrelation, QQ."""

    name = "validate"

    def run(self, context: PipelineContext) -> ValidationReport:
        spec = context.spec
        accounting = context.require("accounting", self.name)
        flows = accounting.flows
        estimation = context.require("estimation", self.name)
        fit = context.require("fit", self.name)
        series = estimation.series

        measured_cov = series.coefficient_of_variation
        fitted_cov = fit.fitted.coefficient_of_variation
        relative_error = fitted_cov / measured_cov - 1.0

        max_lag = min(int(spec.validation.max_lag), len(series) - 1)
        lags_s: tuple[float, ...] = ()
        acf_measured: tuple[float, ...] = ()
        acf_model: tuple[float, ...] = ()
        rmse = float("nan")
        if max_lag >= 1:
            lag_axis = np.arange(1, max_lag + 1) * series.delta
            measured_acf = series.autocorrelation(max_lag)
            model_acf = np.asarray(fit.fitted.autocorrelation(lag_axis))
            lags_s = tuple(float(v) for v in lag_axis)
            acf_measured = tuple(float(v) for v in measured_acf)
            acf_model = tuple(float(v) for v in model_acf)
            rmse = float(
                np.sqrt(np.mean((measured_acf - model_acf) ** 2))
            )

        interarrivals = None
        gaps = np.diff(np.sort(flows.starts))
        gaps = gaps[gaps > 0.0]
        if gaps.size >= max(10, int(spec.validation.qq_points) // 5):
            try:
                interarrivals = exponentiality(gaps)
            except ReproError:
                interarrivals = None

        generated_cov = None
        generated_error = None
        if context.generation is not None:
            generated_cov = (
                context.generation.series.coefficient_of_variation
            )
            generated_error = generated_cov / measured_cov - 1.0

        superposed_cov = None
        if fit.superposed is not None:
            superposed_cov = fit.superposed.coefficient_of_variation

        anomalies: tuple[AnomalyEvent, ...] = ()
        anomaly_delta = None
        if spec.validation.detect_anomalies:
            # A router watches the raw link rate: detection runs on the
            # unmasked series (floods of single-packet flows are excluded
            # from the *measured* series by the exporter's discard rule).
            # The baseline is the rectangular-shot model — its variance
            # comes from flow statistics alone (Theorem 3), so an anomaly
            # that inflates the measured variance cannot widen the fitted
            # band and mask itself.
            if context.trace is not None:
                raw = RateSeries.from_packets(
                    context.trace, spec.estimation.delta
                )
            elif accounting.raw_series is not None:
                # streamed synthesis: the raw series was accumulated in
                # the same measurement pass (bitwise what from_packets
                # on the materialised trace would bin)
                raw = accounting.raw_series
            else:
                raise ParameterError(
                    "anomaly detection needs the raw link rate, but the "
                    "trace was streamed and no raw series was "
                    "accumulated; run AccountFlows with the validation "
                    "section's detect_anomalies set, or materialise the "
                    "trace (drop synthesis.chunk/workers)"
                )
            detector = AnomalyDetector(
                fit.model.gaussian(),
                threshold_sigma=spec.validation.threshold_sigma,
                min_run=int(spec.validation.min_run),
            )
            anomalies = tuple(detector.detect(raw))
            anomaly_delta = float(spec.estimation.delta)

        context.validation = ValidationReport(
            scenario=spec.name,
            seed=int(spec.seed),
            measured_cov=float(measured_cov),
            measured_mean_bps=float(series.mean * 8.0),
            model_cov=dict(fit.model_cov),
            fitted_power=float(fit.power_fit.power),
            fitted_cov=float(fitted_cov),
            relative_error=float(relative_error),
            cov_band=float(spec.validation.cov_band),
            within_band=bool(abs(relative_error) <= spec.validation.cov_band),
            required_capacity_bps=float(
                8.0 * fit.fitted.required_capacity(spec.validation.epsilon)
            ),
            epsilon=float(spec.validation.epsilon),
            autocorrelation_lags_s=lags_s,
            autocorrelation_measured=acf_measured,
            autocorrelation_model=acf_model,
            autocorrelation_rmse=rmse,
            interarrivals=interarrivals,
            generated_cov=generated_cov,
            generated_vs_measured_error=generated_error,
            superposed_cov=superposed_cov,
            anomalies=anomalies,
            anomaly_delta_s=anomaly_delta,
        )
        return context.validation
