"""Unified scenario/pipeline API — the declarative front door.

The paper's whole argument is a pipeline: measure a backbone link, reduce
it to the three-parameter summary (``lambda``, ``E[S]``, ``E[S^2/D]``),
fit a shot, then predict/provision/generate (sections V-VII).  This
package makes that pipeline a first-class object:

* :class:`ScenarioSpec` — a frozen, JSON-round-trippable description of
  one end-to-end experiment (workload, flow accounting, estimation, fit,
  generation, validation — plus arrival ramps and anomaly injection);
* :class:`~repro.pipeline.stages.Stage` — the protocol behind the
  built-in ``Synthesize → AccountFlows → Estimate → FitModel → Generate →
  Validate`` chain, each stage producing a typed result object;
* :func:`run_scenario` / :func:`run_scenarios` — the runner, fanning
  scenario lists out over the generation engine's worker pool;
* :class:`ScenarioRegistry` / :func:`default_registry` — named scenarios:
  the Table I presets plus multi-class, diurnal-ramp, session and
  anomaly-injection families.

Quickstart::

    from repro.pipeline import default_registry, run_scenario

    result = run_scenario(default_registry().get("medium"))
    print(result.validation.to_dict())
"""

from .registry import ScenarioRegistry, default_registry
from .runner import (
    DEFAULT_STAGES,
    INGEST_STAGES,
    MEASUREMENT_STAGES,
    NETWORK_STAGES,
    SWEEP_STAGES,
    QUICK_MODE_ENV,
    ScenarioResult,
    ScenarioRunner,
    apply_quick_mode,
    run_scenario,
    run_scenarios,
)
from .spec import (
    AnomalySpec,
    ArrivalSpec,
    CALIBRATION_FAMILIES,
    CalibrationSpec,
    DemandSpec,
    EstimationSpec,
    ExecutionSpec,
    FitSpec,
    FlowAccountingSpec,
    GenerationSpec,
    INGEST_FORMATS,
    IngestSpec,
    MeasurementSpec,
    NetworkEventSpec,
    NetworkSpec,
    PRESET_ALIASES,
    RetryPolicy,
    ScenarioSpec,
    SELECTION_CRITERIA,
    SIZE_DISTRIBUTION_KINDS,
    SizeDistributionSpec,
    SweepSpec,
    SynthesisSpec,
    TopologyLinkSpec,
    TopologySpec,
    ValidationSpec,
    WorkloadSpec,
    resolve_preset,
)
from .stages import (
    AccountFlows,
    AccountingResult,
    Calibrate,
    CalibrationResult,
    Estimate,
    EstimationResult,
    FitModel,
    FitResult,
    Generate,
    GenerationResult,
    ImportFlows,
    IngestResult,
    NetworkStageResult,
    PipelineContext,
    RunSweep,
    SimulateNetwork,
    Stage,
    SweepStageResult,
    SynthesisResult,
    Synthesize,
    TraceMeta,
    Validate,
    ValidationReport,
)

__all__ = [
    # spec layer
    "ScenarioSpec",
    "WorkloadSpec",
    "ArrivalSpec",
    "ExecutionSpec",
    "RetryPolicy",
    "FlowAccountingSpec",
    "IngestSpec",
    "INGEST_FORMATS",
    "CalibrationSpec",
    "CALIBRATION_FAMILIES",
    "SELECTION_CRITERIA",
    "SizeDistributionSpec",
    "SIZE_DISTRIBUTION_KINDS",
    "SynthesisSpec",
    "MeasurementSpec",
    "EstimationSpec",
    "FitSpec",
    "GenerationSpec",
    "AnomalySpec",
    "ValidationSpec",
    "TopologySpec",
    "TopologyLinkSpec",
    "DemandSpec",
    "NetworkEventSpec",
    "NetworkSpec",
    "SweepSpec",
    "PRESET_ALIASES",
    "resolve_preset",
    # stages
    "Stage",
    "PipelineContext",
    "Synthesize",
    "ImportFlows",
    "AccountFlows",
    "Estimate",
    "Calibrate",
    "FitModel",
    "Generate",
    "SimulateNetwork",
    "RunSweep",
    "Validate",
    "SynthesisResult",
    "TraceMeta",
    "IngestResult",
    "AccountingResult",
    "CalibrationResult",
    "EstimationResult",
    "FitResult",
    "GenerationResult",
    "NetworkStageResult",
    "SweepStageResult",
    "ValidationReport",
    # runner
    "ScenarioRunner",
    "ScenarioResult",
    "DEFAULT_STAGES",
    "MEASUREMENT_STAGES",
    "INGEST_STAGES",
    "NETWORK_STAGES",
    "SWEEP_STAGES",
    "QUICK_MODE_ENV",
    "apply_quick_mode",
    "run_scenario",
    "run_scenarios",
    # registry
    "ScenarioRegistry",
    "default_registry",
]
