"""Section VII-C: generation of backbone traffic from the model.

The scalable entry points are the engine-backed
:func:`generate_rate_series` / :func:`generate_packet_trace`; the
pre-engine per-flow loop survives as :func:`reference_rate_series`, the
bit-for-bit oracle the engine is validated against.
"""

from .engine import (
    DEFAULT_ARRIVAL_CELL,
    EngineConfig,
    GenerationEngine,
    default_engine,
)
from .fluid import generate_rate_series
from .packets import generate_packet_trace
from .reference import reference_rate_series

__all__ = [
    "DEFAULT_ARRIVAL_CELL",
    "EngineConfig",
    "GenerationEngine",
    "default_engine",
    "generate_rate_series",
    "generate_packet_trace",
    "reference_rate_series",
]
