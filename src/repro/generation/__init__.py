"""Section VII-C: generation of backbone traffic from the model."""

from .fluid import generate_rate_series
from .packets import generate_packet_trace

__all__ = ["generate_rate_series", "generate_packet_trace"]
