"""Packet-level shot-noise traffic generation — section VII-C.

Produces a full synthetic :class:`~repro.trace.PacketTrace` from the model
ingredients: flows arrive as Poisson, draw (S, D) from an ensemble, and
transmit their packets along the chosen shot.  Unlike
:mod:`repro.netsim.link` (which simulates TCP dynamics the model does not
know), this generator *is* the model — it is meant for feeding simulators
traffic with prescribed statistics, the third application of the paper.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive
from ..core.ensemble import FlowEnsemble
from ..core.shots import Shot
from ..exceptions import ParameterError
from ..netsim.addresses import AddressSpace
from ..netsim.packetize import packetize_shots
from ..trace.packet import PacketTrace, packets_from_columns

__all__ = ["generate_packet_trace"]


def generate_packet_trace(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    duration: float,
    *,
    link_capacity: float = 622e6,
    address_space: AddressSpace | None = None,
    mss: int = 1460,
    header_bytes: int = 40,
    jitter: float = 0.25,
    warmup: float | None = None,
    name: str = "generated",
    rng=None,
) -> PacketTrace:
    """Generate a packet trace whose flows follow the shot-noise model.

    ``warmup`` seconds of pre-capture arrivals put the process in steady
    state at t = 0 (default: the 99th percentile of sampled durations), so
    tails of earlier flows compensate the end-of-capture truncation and
    the generated mean rate matches the model's.  Flows that would extend
    past ``duration`` are truncated at the capture end, like a real trace.
    """
    arrival_rate = check_positive("arrival_rate", arrival_rate)
    duration = check_positive("duration", duration)
    rng = as_rng(rng)
    if address_space is None:
        address_space = AddressSpace()

    if warmup is None:
        _, probe = ensemble.sample(2048, rng)
        warmup = float(np.quantile(probe, 0.99))
    warmup = max(float(warmup), 0.0)

    n_flows = rng.poisson(arrival_rate * (duration + warmup))
    if n_flows == 0:
        raise ParameterError("no flows generated; increase rate or duration")
    starts = np.sort(rng.random(n_flows) * (duration + warmup) - warmup)
    sizes, durations = ensemble.sample(n_flows, rng)

    schedule = packetize_shots(
        sizes,
        durations,
        shot,
        mss=mss,
        header_bytes=header_bytes,
        jitter=jitter,
        rng=rng,
    )
    timestamps = starts[schedule.flow_index] + schedule.offset
    keep = (timestamps >= 0.0) & (timestamps < duration)
    timestamps = timestamps[keep]
    flow_of_packet = schedule.flow_index[keep]
    wire_sizes = schedule.wire_size[keep]

    src, dst, sport, dport, proto = address_space.sample_endpoints(n_flows, rng)
    packets = packets_from_columns(
        timestamps,
        src[flow_of_packet],
        dst[flow_of_packet],
        sport[flow_of_packet],
        dport[flow_of_packet],
        proto[flow_of_packet],
        wire_sizes,
    )
    order = np.argsort(packets["timestamp"], kind="stable")
    return PacketTrace(
        packets[order],
        link_capacity=link_capacity,
        duration=duration,
        name=name,
    )
