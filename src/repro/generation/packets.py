"""Packet-level shot-noise traffic generation — section VII-C.

Produces a full synthetic :class:`~repro.trace.PacketTrace` from the model
ingredients: flows arrive as Poisson, draw (S, D) from an ensemble, and
transmit their packets along the chosen shot.  Unlike
:mod:`repro.netsim.link` (which simulates TCP dynamics the model does not
know), this generator *is* the model — it is meant for feeding simulators
traffic with prescribed statistics, the third application of the paper.

Since the engine refactor this module is a thin front-end over
:class:`~repro.generation.engine.GenerationEngine`; ``chunk`` bounds the
per-packet expansion without changing the generated trace.
"""

from __future__ import annotations

from ..core.ensemble import FlowEnsemble
from ..core.shots import Shot
from ..netsim.addresses import AddressSpace
from ..trace.packet import PacketTrace
from .engine import GenerationEngine, default_engine

__all__ = ["generate_packet_trace"]


def generate_packet_trace(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    duration: float,
    *,
    link_capacity: float = 622e6,
    address_space: AddressSpace | None = None,
    mss: int = 1460,
    header_bytes: int = 40,
    jitter: float = 0.25,
    warmup: float | None = None,
    name: str = "generated",
    rng=None,
    chunk: float | None = None,
    engine: GenerationEngine | None = None,
) -> PacketTrace:
    """Generate a packet trace whose flows follow the shot-noise model.

    ``warmup`` seconds of pre-capture arrivals put the process in steady
    state at t = 0 (default: the 99th percentile of sampled durations), so
    tails of earlier flows compensate the end-of-capture truncation and
    the generated mean rate matches the model's.  Flows that would extend
    past ``duration`` are truncated at the capture end, like a real trace.

    ``chunk`` packetizes that many seconds of arrivals at a time (bounding
    the intermediate per-packet arrays); the output is identical for any
    chunking.  For horizons whose packets do not fit in memory at all, use
    :meth:`GenerationEngine.write_packet_trace` to stream the capture to
    disk instead.
    """
    if engine is None:
        engine = default_engine() if chunk is None else GenerationEngine(chunk=chunk)
    return engine.packet_trace(
        arrival_rate,
        ensemble,
        shot,
        duration,
        link_capacity=link_capacity,
        address_space=address_space,
        mss=mss,
        header_bytes=header_bytes,
        jitter=jitter,
        warmup=warmup,
        name=name,
        rng=rng,
    )
