"""Fluid shot-noise traffic generation — section VII-C.

Generates a sample path of the total rate ``R(t)`` directly from the model
ingredients (Poisson arrivals, a flow ensemble, a shot): the synthetic
traffic a network simulator would be fed.  The paper's point is that
transmitting each flow's bytes along a fitted shot — rather than at a
constant rate — is what makes the generated traffic match the real
second-order statistics.

The path is produced as exact bin averages: each flow's contribution to a
bin is the increment of its cumulative byte curve over the bin, divided by
the bin length — so the generated series is directly comparable to a
:class:`~repro.stats.timeseries.RateSeries` measured with the same Delta.

Since the engine refactor this module is a thin front-end over
:class:`~repro.generation.engine.GenerationEngine`: the same seed produces
the same series as the original per-flow loop (kept as
:func:`~repro.generation.reference.reference_rate_series`), bit for bit,
for any ``chunk`` / ``workers`` setting.
"""

from __future__ import annotations

from ..core.ensemble import FlowEnsemble
from ..core.shots import Shot
from ..stats.timeseries import RateSeries
from .engine import GenerationEngine, default_engine

__all__ = ["generate_rate_series"]


def generate_rate_series(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    duration: float,
    delta: float,
    *,
    warmup: float | None = None,
    rng=None,
    chunk: float | None = None,
    workers: int | None = None,
    engine: GenerationEngine | None = None,
) -> RateSeries:
    """Simulate the Delta-averaged total rate of the shot-noise model.

    Parameters
    ----------
    arrival_rate:
        Flow arrival rate ``lambda`` (flows/second).
    ensemble:
        Joint (size, duration) law flows are drawn from.
    shot:
        Rate profile applied to every flow.
    duration:
        Length of the generated path (seconds).
    delta:
        Averaging bin (seconds); the result has ``duration/delta`` samples.
    warmup:
        Extra lead-in time so the process is stationary at t=0.  Defaults
        to a high quantile of the sampled flow durations.
    rng:
        Seed or Generator.
    chunk:
        Accumulate in windows of this many seconds (bounds peak memory of
        the vectorized scatter).  ``None`` processes the horizon at once.
    workers:
        Thread-pool width for independent chunks; never changes the result.
    engine:
        Pre-configured :class:`GenerationEngine` to route through
        (overrides ``chunk`` / ``workers``).
    """
    if engine is None:
        if chunk is None and workers is None:
            engine = default_engine()
        else:
            engine = GenerationEngine(chunk=chunk, workers=workers)
    return engine.rate_series(
        arrival_rate, ensemble, shot, duration, delta, warmup=warmup, rng=rng
    )
