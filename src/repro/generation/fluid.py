"""Fluid shot-noise traffic generation — section VII-C.

Generates a sample path of the total rate ``R(t)`` directly from the model
ingredients (Poisson arrivals, a flow ensemble, a shot): the synthetic
traffic a network simulator would be fed.  The paper's point is that
transmitting each flow's bytes along a fitted shot — rather than at a
constant rate — is what makes the generated traffic match the real
second-order statistics.

The path is produced as exact bin averages: each flow's contribution to a
bin is the increment of its cumulative byte curve over the bin, divided by
the bin length — so the generated series is directly comparable to a
:class:`~repro.stats.timeseries.RateSeries` measured with the same Delta.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive
from ..core.ensemble import FlowEnsemble
from ..core.shots import Shot
from ..exceptions import ParameterError
from ..stats.timeseries import RateSeries

__all__ = ["generate_rate_series"]


def generate_rate_series(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    duration: float,
    delta: float,
    *,
    warmup: float | None = None,
    rng=None,
) -> RateSeries:
    """Simulate the Delta-averaged total rate of the shot-noise model.

    Parameters
    ----------
    arrival_rate:
        Flow arrival rate ``lambda`` (flows/second).
    ensemble:
        Joint (size, duration) law flows are drawn from.
    shot:
        Rate profile applied to every flow.
    duration:
        Length of the generated path (seconds).
    delta:
        Averaging bin (seconds); the result has ``duration/delta`` samples.
    warmup:
        Extra lead-in time so the process is stationary at t=0.  Defaults
        to a high quantile of the sampled flow durations.
    rng:
        Seed or Generator.
    """
    arrival_rate = check_positive("arrival_rate", arrival_rate)
    duration = check_positive("duration", duration)
    delta = check_positive("delta", delta)
    if delta > duration:
        raise ParameterError("delta must not exceed duration")
    rng = as_rng(rng)

    # draw a provisional sample to size the warm-up
    if warmup is None:
        _, probe_durations = ensemble.sample(2048, rng)
        warmup = float(np.quantile(probe_durations, 0.99))
    warmup = max(float(warmup), 0.0)

    horizon = duration + warmup
    n_flows = rng.poisson(arrival_rate * horizon)
    if n_flows == 0:
        raise ParameterError(
            "no flows generated; increase arrival_rate or duration"
        )
    starts = rng.random(n_flows) * horizon - warmup
    sizes, flow_durations = ensemble.sample(n_flows, rng)

    n_bins = int(np.floor(duration / delta))
    edges = delta * np.arange(n_bins + 1)
    volumes = np.zeros(n_bins)

    # Each flow adds C(t1 - T) - C(t0 - T) bytes to bin [t0, t1): exact.
    first_bin = np.clip(np.floor(starts / delta).astype(np.int64), 0, n_bins)
    last_bin = np.clip(
        np.ceil((starts + flow_durations) / delta).astype(np.int64), 0, n_bins
    )
    for i in range(n_flows):
        lo, hi = first_bin[i], last_bin[i]
        if hi <= 0 or lo >= n_bins or hi <= lo:
            # entirely outside the observation window, or zero-width
            if lo >= n_bins or hi <= 0:
                continue
        lo = max(lo, 0)
        hi = min(max(hi, lo + 1), n_bins)
        local_edges = edges[lo: hi + 1]
        cumulative = shot.cumulative(
            local_edges - starts[i], sizes[i], flow_durations[i]
        )
        volumes[lo:hi] += np.diff(cumulative)

    return RateSeries(volumes / delta, delta)
