"""Chunked, vectorized, parallel traffic-generation engine.

The original section VII-C generators looped over flows in Python and
materialised the whole horizon at once, which caps them at a few hundred
thousand flows.  This engine is the scalable substrate every generation
entry point now routes through.  It provides three orthogonal mechanisms:

**Vectorization.**  The per-flow bin scatter becomes one grouped
segment-sum: every (flow, bin) overlap is expanded into a flat row, the
shot's cumulative byte curve is evaluated once per row, and
``np.bincount`` accumulates the increments.  Rows are laid out in flow
order, so each bin receives its floating-point additions in exactly the
order the reference loop performed them — the vectorized output is
**bit-for-bit identical** to :func:`repro.generation.reference_rate_series`
for the same seed.  For the rectangular shot a closed-form fast path
(difference-array of flow rates plus two partial-bin corrections per
flow) skips the row expansion entirely; it is exact up to float roundoff
rather than bitwise, so it is only used when ``exact=False``.

**Chunking.**  Time is cut into fixed windows of ``chunk`` seconds
(aligned to whole bins for rate paths).  Each chunk's accumulation sees
only the rows overlapping it, so peak memory is bounded by the chunk
size instead of the horizon.  Flows spanning chunk boundaries are exact:
a flow's contribution to any bin is the increment of its cumulative
curve over that bin, wherever the flow started.  In streamed mode
(:meth:`GenerationEngine.rate_series_streamed` and
:meth:`GenerationEngine.write_packet_trace`) arrival sampling is chunked
too: flows are drawn per fixed *arrival cell* from
``numpy.random.SeedSequence`` children, kept in a buffer only while they
can still contribute, and dropped once the horizon has passed them — so
arbitrarily long horizons run in memory proportional to the stationary
flow population, not the duration.

**Parallelism.**  Chunks cover disjoint bin ranges and independent
links/seeds are independent tasks, so both fan out over a
``concurrent.futures`` thread pool (``workers``).  Sampling is either a
single compat RNG stream (exact mode) or per-cell ``SeedSequence``
children keyed only by cell index, hence results are deterministic for a
given seed regardless of worker count, and — for the exact scatter path
— bitwise invariant to the chunk size as well.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from .._util import as_rng, check_positive
from ..core.ensemble import FlowEnsemble
from ..core.shots import PowerShot, Shot
from ..exceptions import ParameterError
from ..execution import check_backend, make_pool
from ..kernels import powershot_scatter
from ..netsim.addresses import AddressSpace
from ..netsim.packetize import packetize_shots
from ..stats.timeseries import RateSeries
from ..trace.io import TraceWriter
from ..trace.packet import PacketTrace, packets_from_columns

__all__ = [
    "DEFAULT_ARRIVAL_CELL",
    "EngineConfig",
    "GenerationEngine",
    "default_engine",
]

#: Width (seconds) of one arrival-sampling cell in streamed mode.  Part of
#: the seeding contract: changing it changes which SeedSequence child a
#: flow is drawn from, so it is a config knob rather than a tuning default.
DEFAULT_ARRIVAL_CELL = 64.0

#: Number of (size, duration) probe samples used to size the warm-up.
_WARMUP_PROBE = 2048


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the generation engine.

    Parameters
    ----------
    chunk:
        Processing window in seconds; ``None`` processes the whole horizon
        as one chunk.  Peak accumulation memory scales with ``chunk``.
    workers:
        Pool width for independent chunks / links / seeds.  Results
        never depend on it.
    backend:
        Pool flavour: ``"serial"`` runs inline, ``"thread"`` (default)
        uses a thread pool, ``"process"`` a fork-based shared-memory
        process pool (see :mod:`repro.execution`).  Results never depend
        on it either — the bitwise contracts extend to the backend axis.
    arrival_cell:
        Streamed-mode sampling cell width in seconds.  Flows are drawn per
        cell from a dedicated ``SeedSequence`` child, which is what makes
        streamed output invariant to ``chunk`` and ``workers``.
    rect_fast_path:
        Allow the closed-form rectangular accumulation when bitwise
        reference equality is not requested.
    """

    chunk: float | None = None
    workers: int = 1
    backend: str = "thread"
    arrival_cell: float = DEFAULT_ARRIVAL_CELL
    rect_fast_path: bool = True
    retry: object | None = None  # RetryPolicy; process-backend watchdog

    def __post_init__(self) -> None:
        if self.chunk is not None:
            check_positive("chunk", self.chunk)
        workers = int(self.workers)
        if workers != self.workers or workers < 1:
            raise ParameterError(
                f"workers must be an integer >= 1, got {self.workers!r}"
            )
        object.__setattr__(self, "workers", workers)
        check_backend("backend", self.backend)
        check_positive("arrival_cell", self.arrival_cell)


def _is_rectangular(shot: Shot) -> bool:
    return isinstance(shot, PowerShot) and shot.power == 0.0


def _warmup_from_probe(ensemble: FlowEnsemble, rng) -> float:
    _, probe_durations = ensemble.sample(_WARMUP_PROBE, rng)
    return float(np.quantile(probe_durations, 0.99))


def _bin_bounds(starts, durations, delta, n_bins):
    """First/last touched bin per flow, replicating the reference loop.

    Returns ``(active, lo, hi)``: the mask of flows intersecting the
    observation window and, for those flows only, the clamped half-open
    bin range ``[lo, hi)`` (always at least one bin wide).
    """
    first = np.clip(np.floor(starts / delta).astype(np.int64), 0, n_bins)
    last = np.clip(
        np.ceil((starts + durations) / delta).astype(np.int64), 0, n_bins
    )
    active = (last > 0) & (first < n_bins)
    lo = first[active]
    hi = np.minimum(np.maximum(last[active], lo + 1), n_bins)
    return active, lo, hi


def _chunk_buckets(lo, hi, ranges):
    """Flow indices overlapping each bin range, each bucket in flow order.

    Chunk ranges are uniform (``per`` bins, last possibly shorter), so a
    flow spanning bins ``[lo, hi)`` overlaps chunks ``lo//per`` through
    ``(hi-1)//per``.  One flat expansion plus a stable sort by chunk
    yields every bucket in O(total flow-chunk overlaps).
    """
    if len(ranges) == 1:
        return [slice(None)]
    per = ranges[0][1] - ranges[0][0]
    c_lo = lo // per
    c_hi = (hi - 1) // per
    counts = c_hi - c_lo + 1
    total = int(counts.sum())
    flow_entry = np.repeat(np.arange(lo.size), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    chunk_entry = c_lo[flow_entry] + (np.arange(total) - offsets[flow_entry])
    order = np.argsort(chunk_entry, kind="stable")
    sorted_flows = flow_entry[order]
    bounds = np.searchsorted(
        chunk_entry[order], np.arange(len(ranges) + 1)
    )
    return [
        sorted_flows[bounds[k]: bounds[k + 1]] for k in range(len(ranges))
    ]


def _scatter_chunk(shot, starts, sizes, durations, lo, hi, delta, b0, b1):
    """Exact segment-sum of byte increments over the bin range [b0, b1).

    One row per (flow, bin) overlap, in flow order; ``np.bincount``
    accumulates rows sequentially, so every bin sums its contributions in
    the same order as the reference per-flow loop — bit-for-bit equal.
    Power shots route through :func:`repro.kernels.powershot_scatter`
    (compiled when numba is available; its NumPy fallback is this very
    expansion), table-interpolated shots keep the generic path below.
    """
    a = np.maximum(lo, b0)
    b = np.minimum(hi, b1)
    if isinstance(shot, PowerShot):
        return powershot_scatter(
            starts, sizes, durations, a, b, shot.power, delta, b0, b1
        )
    sel = b > a
    volumes = np.zeros(b1 - b0)
    if not np.any(sel):
        return volumes
    counts = b[sel] - a[sel]
    total = int(counts.sum())
    flow = np.repeat(np.flatnonzero(sel), counts)
    row_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total) - np.repeat(row_start, counts)
    gbin = np.repeat(a[sel], counts) + within

    t = starts[flow]
    s = sizes[flow]
    d = durations[flow]
    gb = gbin.astype(np.float64)
    # Evaluate the same edge values the reference builds via
    # ``delta * arange``: delta * j is one correctly-rounded product.
    c_left = shot.cumulative(delta * gb - t, s, d)
    c_right = shot.cumulative(delta * (gb + 1.0) - t, s, d)
    return np.bincount(gbin - b0, weights=c_right - c_left, minlength=b1 - b0)


def _rect_chunk(starts, sizes, durations, delta, b0, b1, n_bins):
    """Closed-form rectangular accumulation over [b0, b1).

    A constant-rate flow contributes ``rate * delta`` to every fully
    covered bin and a partial amount to its first/last bins, so the whole
    scatter collapses to a difference-array cumulative sum plus at most
    two ``np.add.at`` corrections per flow: O(flows + bins) instead of
    O(flow-bin overlaps).  Exact up to float roundoff (all per-flow
    quantities are computed from global, chunk-independent values).
    """
    nb = b1 - b0
    volumes = np.zeros(nb)
    end = starts + durations
    sel = (starts < delta * b1) & (end > delta * b0)
    if not np.any(sel):
        return volumes
    t = starts[sel]
    e = end[sel]
    rate = sizes[sel] / durations[sel]

    jl = np.clip(np.floor(t / delta).astype(np.int64), 0, n_bins - 1)
    jr = np.clip(np.ceil(e / delta).astype(np.int64) - 1, 0, n_bins - 1)
    jr = np.maximum(jr, jl)
    single = jl == jr

    left_amount = ((jl + 1) * delta - np.maximum(t, 0.0)) * rate
    right_amount = (np.minimum(e, n_bins * delta) - jr * delta) * rate
    single_amount = (np.minimum(e, n_bins * delta) - np.maximum(t, 0.0)) * rate

    def in_chunk(j):
        return (j >= b0) & (j < b1)

    m = single & in_chunk(jl)
    np.add.at(volumes, jl[m] - b0, single_amount[m])
    m = ~single & in_chunk(jl)
    np.add.at(volumes, jl[m] - b0, left_amount[m])
    m = ~single & in_chunk(jr)
    np.add.at(volumes, jr[m] - b0, right_amount[m])

    # interior bins jl+1 .. jr-1 at full rate, restricted to the chunk
    lo_full = np.clip(jl[~single] + 1, b0, b1)
    hi_full = np.clip(jr[~single], b0, b1)
    grow = hi_full > lo_full
    if np.any(grow):
        acc = np.zeros(nb + 1)
        np.add.at(acc, lo_full[grow] - b0, rate[~single][grow])
        np.add.at(acc, hi_full[grow] - b0, -rate[~single][grow])
        volumes += np.cumsum(acc[:-1]) * delta
    return volumes


class _StarTask:
    """Picklable ``fn(*task)`` adapter for the pool's single-arg map."""

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, task):
        return self.fn(*task)


def _rect_task(task):
    """Closed-form rectangular accumulation of one chunk (picklable)."""
    starts, sizes, durations, delta, b0, b1, n_bins = task
    return _rect_chunk(starts, sizes, durations, delta, b0, b1, n_bins)


def _scatter_task(task):
    """Exact scatter of one chunk's candidate flows (picklable)."""
    shot, starts, sizes, durations, lo, hi, delta, b0, b1 = task
    return _scatter_chunk(shot, starts, sizes, durations, lo, hi, delta, b0, b1)


def _stream_accum_task(task):
    """Streamed-mode accumulation of one chunk's gathered flows."""
    shot, use_rect, delta, n_bins, b0, b1, flows = task
    if flows is None:
        return np.zeros(b1 - b0)
    f_starts, f_sizes, f_durations = flows
    if use_rect:
        return _rect_chunk(f_starts, f_sizes, f_durations, delta, b0, b1, n_bins)
    active, lo, hi = _bin_bounds(f_starts, f_durations, delta, n_bins)
    return _scatter_chunk(
        shot,
        f_starts[active],
        f_sizes[active],
        f_durations[active],
        lo,
        hi,
        delta,
        b0,
        b1,
    )


# -- splitmix64-based per-packet jitter (streamed packet generation) -------

_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix_uniform(keys: np.ndarray, index: np.ndarray) -> np.ndarray:
    """Deterministic uniforms in [0, 1) from (flow key, packet index).

    A counter-based generator: the jitter of packet ``j`` of a flow
    depends only on the flow's sampled 64-bit key and ``j``, never on
    which chunk evaluated it — so streamed packetization is reproducible
    across chunk sizes even though flows are re-packetized per chunk.
    """
    with np.errstate(over="ignore"):
        x = keys + (index.astype(np.uint64) + np.uint64(1)) * _SM64_GAMMA
        x ^= x >> np.uint64(30)
        x *= _SM64_MIX1
        x ^= x >> np.uint64(27)
        x *= _SM64_MIX2
        x ^= x >> np.uint64(31)
    return (x >> np.uint64(11)).astype(np.float64) * 2.0**-53


class _StreamBuffer:
    """Blocks of parallel per-flow arrays, kept while flows stay active.

    Block layout is ``(starts, sizes, durations, *extras)``.  Pruning and
    gathering preserve (cell, within-cell) order, which is what makes the
    per-bin accumulation order — and therefore the output — independent
    of the chunking.
    """

    def __init__(self) -> None:
        self._blocks: list[tuple[np.ndarray, ...]] = []

    def push(self, block: tuple[np.ndarray, ...] | None) -> None:
        if block is not None and block[0].size:
            self._blocks.append(block)

    def prune(self, t_start: float) -> None:
        """Drop flows that ended at or before ``t_start``."""
        kept = []
        for blk in self._blocks:
            mask = blk[0] + blk[2] > t_start
            if mask.all():
                kept.append(blk)
            elif mask.any():
                kept.append(tuple(a[mask] for a in blk))
        self._blocks = kept

    def gather(self, t_start: float, t_end: float):
        """Concatenate flows overlapping [t_start, t_end), or None."""
        picked = []
        for blk in self._blocks:
            mask = (blk[0] < t_end) & (blk[0] + blk[2] > t_start)
            if mask.all():
                picked.append(blk)
            elif mask.any():
                picked.append(tuple(a[mask] for a in blk))
        if not picked:
            return None
        return tuple(np.concatenate(cols) for cols in zip(*picked))


class GenerationEngine:
    """Scalable generator for section VII-C traffic (see module docs)."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        chunk: float | None = None,
        workers: int | None = None,
        backend: str | None = None,
        arrival_cell: float | None = None,
        rect_fast_path: bool | None = None,
    ) -> None:
        if config is None:
            config = EngineConfig()
        overrides = {
            "chunk": chunk,
            "workers": workers,
            "backend": backend,
            "arrival_cell": arrival_cell,
            "rect_fast_path": rect_fast_path,
        }
        overrides = {k: v for k, v in overrides.items() if v is not None}
        if overrides:
            config = replace(config, **overrides)
        self.config = config

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return (
            f"GenerationEngine(chunk={c.chunk}, workers={c.workers}, "
            f"arrival_cell={c.arrival_cell:g})"
        )

    # -- scheduling helpers ---------------------------------------------

    def _chunk_bin_ranges(self, n_bins: int, delta: float):
        chunk = self.config.chunk
        if chunk is None:
            return [(0, n_bins)]
        per = max(1, int(round(chunk / delta)))
        return [
            (b0, min(b0 + per, n_bins)) for b0 in range(0, n_bins, per)
        ]

    def _chunk_time_ranges(self, duration: float):
        chunk = self.config.chunk
        if chunk is None or chunk >= duration:
            return [(0.0, duration)]
        edges = np.arange(0.0, duration, chunk)
        return [
            (float(t0), float(min(t0 + chunk, duration))) for t0 in edges
        ]

    def _make_pool(self, n_tasks: int):
        """Backend pool sized for ``n_tasks`` (serial when pointless)."""
        width = min(self.config.workers, max(n_tasks, 1))
        return make_pool(
            self.config.backend, width, retry=self.config.retry
        )

    def _run_ordered(self, fn, tasks):
        """Evaluate ``fn(*task)`` for every task, preserving order.

        With the ``process`` backend ``fn`` must be picklable (a
        module-level function); ``serial``/``thread`` accept closures.
        """
        if self.config.workers <= 1 or len(tasks) <= 1:
            return [fn(*task) for task in tasks]
        with self._make_pool(len(tasks)) as pool:
            return pool.map_ordered(_StarTask(fn), tasks)

    def map_ordered(self, fn, items) -> list:
        """Run ``fn(item)`` for independent items, preserving input order.

        The scenario-pipeline fan-out: items carry their own seeds (or no
        randomness at all), so the engine only supplies the worker pool —
        results never depend on ``workers``.  Use :meth:`map_seeded` when
        the tasks need engine-managed per-task seed streams instead.
        """
        return self._run_ordered(fn, [(item,) for item in items])

    def map_seeded(self, fn, n_tasks: int, seed=0) -> list:
        """Run ``fn(index, seed_sequence_child)`` for independent tasks.

        Every task gets its own ``SeedSequence`` child keyed by position,
        so the result list is deterministic for a given ``seed`` no
        matter how many workers execute it.  Used for multi-link /
        multi-seed scenario fan-out.
        """
        n_tasks = int(n_tasks)
        if n_tasks < 1:
            raise ParameterError(f"n_tasks must be >= 1, got {n_tasks}")
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        children = root.spawn(n_tasks)
        return self._run_ordered(fn, list(enumerate(children)))

    # -- fluid rate path: compat (bit-for-bit) sampling ------------------

    def rate_series(
        self,
        arrival_rate: float,
        ensemble: FlowEnsemble,
        shot: Shot,
        duration: float,
        delta: float,
        *,
        warmup: float | None = None,
        rng=None,
        exact: bool = True,
    ) -> RateSeries:
        """Delta-averaged total rate of the shot-noise model.

        Samples all flows from one RNG stream exactly like the reference
        implementation, then accumulates them with the chunked vectorized
        scatter.  With ``exact=True`` (default) the result is bit-for-bit
        identical to :func:`repro.generation.reference_rate_series` for
        the same seed, for any ``chunk`` and ``workers``.  With
        ``exact=False`` the rectangular fast path may be used instead
        (identical up to float roundoff).
        """
        arrival_rate = check_positive("arrival_rate", arrival_rate)
        duration = check_positive("duration", duration)
        delta = check_positive("delta", delta)
        if delta > duration:
            raise ParameterError("delta must not exceed duration")
        rng = as_rng(rng)

        if warmup is None:
            warmup = _warmup_from_probe(ensemble, rng)
        warmup = max(float(warmup), 0.0)

        horizon = duration + warmup
        n_flows = rng.poisson(arrival_rate * horizon)
        if n_flows == 0:
            raise ParameterError(
                "no flows generated; increase arrival_rate or duration"
            )
        starts = rng.random(n_flows) * horizon - warmup
        sizes, flow_durations = ensemble.sample(n_flows, rng)

        n_bins = int(np.floor(duration / delta))
        volumes = self._accumulate(
            shot, starts, sizes, flow_durations, delta, n_bins, exact=exact
        )
        return RateSeries(volumes / delta, delta)

    def _accumulate(
        self, shot, starts, sizes, durations, delta, n_bins, *, exact=True
    ) -> np.ndarray:
        """Chunked, parallel bin accumulation for one flow population."""
        ranges = self._chunk_bin_ranges(n_bins, delta)
        if not exact and self.config.rect_fast_path and _is_rectangular(shot):
            run = _rect_task
            tasks = [
                (starts, sizes, durations, delta, b0, b1, n_bins)
                for b0, b1 in ranges
            ]
        else:
            active, lo, hi = _bin_bounds(starts, durations, delta, n_bins)
            a_starts = starts[active]
            a_sizes = sizes[active]
            a_durations = durations[active]
            # Bucket flows to the chunks they overlap once, so each chunk
            # task touches only its own flows (instead of rescanning all
            # n_flows per chunk).  The stable sort keeps every bucket in
            # flow order, preserving bitwise accumulation order.
            buckets = _chunk_buckets(lo, hi, ranges)
            run = _scatter_task
            tasks = [
                (
                    shot,
                    a_starts[cand],
                    a_sizes[cand],
                    a_durations[cand],
                    lo[cand],
                    hi[cand],
                    delta,
                    b0,
                    b1,
                )
                for (b0, b1), cand in zip(ranges, buckets)
            ]

        if self.config.workers <= 1 or len(tasks) <= 1:
            parts = [run(task) for task in tasks]
        else:
            with self._make_pool(len(tasks)) as pool:
                parts = pool.map_ordered(run, tasks)
        volumes = np.zeros(n_bins)
        for (b0, b1), part in zip(ranges, parts):
            volumes[b0:b1] = part
        return volumes

    # -- fluid rate path: streamed (bounded-memory) sampling -------------

    def rate_series_streamed(
        self,
        arrival_rate: float,
        ensemble: FlowEnsemble,
        shot: Shot,
        duration: float,
        delta: float,
        *,
        warmup: float | None = None,
        seed=0,
        exact: bool = False,
    ) -> RateSeries:
        """Bounded-memory rate path for arbitrarily long horizons.

        Flows are sampled per arrival cell from ``SeedSequence`` children
        and buffered only while they can still reach an unprocessed bin,
        so peak memory is O(stationary flow population + chunk), not
        O(horizon).  Output depends only on ``(seed, arrival_cell)`` and
        the model inputs — never on ``chunk`` or ``workers`` (bitwise for
        the scatter path; up to float roundoff for the rectangular fast
        path, see :func:`_rect_chunk`).
        """
        arrival_rate = check_positive("arrival_rate", arrival_rate)
        duration = check_positive("duration", duration)
        delta = check_positive("delta", delta)
        if delta > duration:
            raise ParameterError("delta must not exceed duration")

        sampler = _CellSampler(
            arrival_rate,
            ensemble,
            duration,
            warmup,
            seed,
            self.config.arrival_cell,
        )
        n_bins = int(np.floor(duration / delta))
        ranges = self._chunk_bin_ranges(n_bins, delta)
        use_rect = (
            not exact and self.config.rect_fast_path and _is_rectangular(shot)
        )

        buffer = _StreamBuffer()
        volumes = np.zeros(n_bins)
        group = max(1, self.config.workers)
        with self._make_pool(group) as pool:
            for g0 in range(0, len(ranges), group):
                tasks = []
                for b0, b1 in ranges[g0: g0 + group]:
                    t_start, t_end = delta * b0, delta * b1
                    for block in sampler.cells_before(t_end):
                        buffer.push(block)
                    buffer.prune(t_start)
                    tasks.append(
                        (
                            shot,
                            use_rect,
                            delta,
                            n_bins,
                            b0,
                            b1,
                            buffer.gather(t_start, t_end),
                        )
                    )
                if len(tasks) <= 1 or self.config.workers <= 1:
                    parts = [_stream_accum_task(task) for task in tasks]
                else:
                    parts = pool.map_ordered(_stream_accum_task, tasks)
                for (_, _, _, _, b0, b1, _), part in zip(tasks, parts):
                    volumes[b0:b1] = part
        if sampler.total_flows == 0:
            raise ParameterError(
                "no flows generated; increase arrival_rate or duration"
            )
        return RateSeries(volumes / delta, delta)

    # -- packet path: compat (bit-for-bit) sampling ----------------------

    def packet_trace(
        self,
        arrival_rate: float,
        ensemble: FlowEnsemble,
        shot: Shot,
        duration: float,
        *,
        link_capacity: float = 622e6,
        address_space: AddressSpace | None = None,
        mss: int = 1460,
        header_bytes: int = 40,
        jitter: float = 0.25,
        warmup: float | None = None,
        name: str = "generated",
        rng=None,
    ) -> PacketTrace:
        """Generate a full synthetic packet trace (section VII-C).

        Sampling matches the pre-engine implementation draw for draw;
        packetization runs per chunk of flows so the per-packet expansion
        is bounded by ``chunk`` seconds of arrivals.  Because jitter
        uniforms are consumed from the same stream in the same order, the
        resulting trace is bit-for-bit identical for any chunking.
        """
        arrival_rate = check_positive("arrival_rate", arrival_rate)
        duration = check_positive("duration", duration)
        rng = as_rng(rng)
        if address_space is None:
            address_space = AddressSpace()

        if warmup is None:
            warmup = _warmup_from_probe(ensemble, rng)
        warmup = max(float(warmup), 0.0)

        n_flows = rng.poisson(arrival_rate * (duration + warmup))
        if n_flows == 0:
            raise ParameterError(
                "no flows generated; increase rate or duration"
            )
        starts = np.sort(rng.random(n_flows) * (duration + warmup) - warmup)
        sizes, durations = ensemble.sample(n_flows, rng)

        if self.config.chunk is None:
            per_group = n_flows
        else:
            per_group = max(
                1,
                int(np.ceil(n_flows * self.config.chunk / (duration + warmup))),
            )
        ts_parts, flow_parts, wire_parts = [], [], []
        for g0 in range(0, n_flows, per_group):
            g1 = min(g0 + per_group, n_flows)
            schedule = packetize_shots(
                sizes[g0:g1],
                durations[g0:g1],
                shot,
                mss=mss,
                header_bytes=header_bytes,
                jitter=jitter,
                rng=rng,
            )
            ts = starts[g0:g1][schedule.flow_index] + schedule.offset
            keep = (ts >= 0.0) & (ts < duration)
            ts_parts.append(ts[keep])
            flow_parts.append(schedule.flow_index[keep] + g0)
            wire_parts.append(schedule.wire_size[keep])

        timestamps = np.concatenate(ts_parts)
        flow_of_packet = np.concatenate(flow_parts)
        wire_sizes = np.concatenate(wire_parts)

        src, dst, sport, dport, proto = address_space.sample_endpoints(
            n_flows, rng
        )
        packets = packets_from_columns(
            timestamps,
            src[flow_of_packet],
            dst[flow_of_packet],
            sport[flow_of_packet],
            dport[flow_of_packet],
            proto[flow_of_packet],
            wire_sizes,
        )
        order = np.argsort(packets["timestamp"], kind="stable")
        return PacketTrace(
            packets[order],
            link_capacity=link_capacity,
            duration=duration,
            name=name,
        )

    # -- packet path: streamed writer ------------------------------------

    def write_packet_trace(
        self,
        path,
        arrival_rate: float,
        ensemble: FlowEnsemble,
        shot: Shot,
        duration: float,
        *,
        link_capacity: float = 622e6,
        address_space: AddressSpace | None = None,
        mss: int = 1460,
        header_bytes: int = 40,
        jitter: float = 0.25,
        warmup: float | None = None,
        seed=0,
    ) -> int:
        """Stream a generated capture to disk in bounded memory.

        Combines streamed arrival cells with the chunked packetizer and
        the back-patching :class:`~repro.trace.TraceWriter`: only the
        packets of one chunk (plus the active-flow buffer) are ever in
        memory, and chunks are written in time order so the capture is
        globally sorted.  Packet jitter uses a counter-based splitmix64
        stream keyed per flow, so the file content depends only on
        ``seed`` and ``arrival_cell``, not on ``chunk``.  Returns the
        number of packets written.
        """
        arrival_rate = check_positive("arrival_rate", arrival_rate)
        duration = check_positive("duration", duration)
        if address_space is None:
            address_space = AddressSpace()

        sampler = _CellSampler(
            arrival_rate,
            ensemble,
            duration,
            warmup,
            seed,
            self.config.arrival_cell,
            address_space=address_space,
        )
        buffer = _StreamBuffer()
        written = 0
        try:
            with TraceWriter(
                path, link_capacity=link_capacity, duration=duration
            ) as writer:
                for t_start, t_end in self._chunk_time_ranges(duration):
                    for block in sampler.cells_before(t_end):
                        buffer.push(block)
                    buffer.prune(t_start)
                    flows = buffer.gather(t_start, t_end)
                    if flows is None:
                        continue
                    chunk_packets = _packetize_window(
                        flows,
                        shot,
                        t_start,
                        t_end,
                        mss=mss,
                        header_bytes=header_bytes,
                        jitter=jitter,
                    )
                    writer.write(chunk_packets)
                    written += chunk_packets.size
                if sampler.total_flows == 0:
                    raise ParameterError(
                        "no flows generated; increase rate or duration"
                    )
        except ParameterError:
            # do not leave a stale empty capture behind (the other
            # generators raise before producing any output)
            Path(path).unlink(missing_ok=True)
            raise
        return written


class _CellSampler:
    """Streamed Poisson arrivals, one SeedSequence child per fixed cell.

    Cell ``k`` covers ``[-warmup + k * cell, ...)`` and owns every draw
    for the flows arriving in it (counts, start offsets, sizes/durations
    and — in packet mode — endpoints and jitter keys), so any consumer
    that replays the cells obtains the same flows in the same order.
    """

    def __init__(
        self,
        arrival_rate: float,
        ensemble: FlowEnsemble,
        duration: float,
        warmup: float | None,
        seed,
        cell: float,
        *,
        address_space: AddressSpace | None = None,
    ) -> None:
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        probe_child = root.spawn(1)[0]
        if warmup is None:
            warmup = _warmup_from_probe(
                ensemble, np.random.default_rng(probe_child)
            )
        self.warmup = max(float(warmup), 0.0)
        self.arrival_rate = arrival_rate
        self.ensemble = ensemble
        self.cell = float(cell)
        self.address_space = address_space
        horizon = duration + self.warmup
        self.n_cells = max(1, int(np.ceil(horizon / self.cell)))
        self._seeds = root.spawn(self.n_cells)
        self._next = 0
        self._t_last = duration
        self.total_flows = 0

    def _cell_start(self, k: int) -> float:
        return -self.warmup + k * self.cell

    def _sample(self, k: int):
        rng = np.random.default_rng(self._seeds[k])
        t_lo = self._cell_start(k)
        width = min(self.cell, self._t_last - t_lo)
        n = int(rng.poisson(self.arrival_rate * width))
        self.total_flows += n
        if n == 0:
            return None
        starts = t_lo + rng.random(n) * width
        sizes, durations = self.ensemble.sample(n, rng)
        if self.address_space is None:
            return starts, sizes, durations
        src, dst, sport, dport, proto = self.address_space.sample_endpoints(
            n, rng
        )
        keys = rng.integers(
            np.iinfo(np.uint64).max, size=n, dtype=np.uint64, endpoint=True
        )
        return starts, sizes, durations, src, dst, sport, dport, proto, keys

    def cells_before(self, t_end: float):
        """Yield blocks for every unsampled cell starting before t_end."""
        while self._next < self.n_cells and self._cell_start(self._next) < t_end:
            block = self._sample(self._next)
            self._next += 1
            if block is not None:
                yield block


def _packetize_window(
    flows,
    shot: Shot,
    t_start: float,
    t_end: float,
    *,
    mss: int,
    header_bytes: int,
    jitter: float,
):
    """Packets of the given flows with timestamps in [t_start, t_end).

    Flows spanning the window are packetized in full (their schedule is a
    pure function of (S, D, key)) and filtered to the window, so chunked
    invocations partition the packet stream exactly.
    """
    starts, sizes, durations, src, dst, sport, dport, proto, keys = flows
    schedule = packetize_shots(
        sizes, durations, shot, mss=mss, header_bytes=header_bytes, jitter=0.0
    )
    offsets = schedule.offset
    if jitter > 0.0:
        counts = np.bincount(schedule.flow_index, minlength=sizes.size)
        row_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
        within = np.arange(len(schedule)) - row_start[schedule.flow_index]
        gap = durations[schedule.flow_index] / counts[schedule.flow_index]
        u = _splitmix_uniform(keys[schedule.flow_index], within)
        offsets = offsets + (u - 0.5) * jitter * gap
        offsets = np.clip(offsets, 0.0, durations[schedule.flow_index])

    timestamps = starts[schedule.flow_index] + offsets
    keep = (timestamps >= t_start) & (timestamps < t_end)
    timestamps = timestamps[keep]
    flow = schedule.flow_index[keep]
    packets = packets_from_columns(
        timestamps,
        src[flow],
        dst[flow],
        sport[flow],
        dport[flow],
        proto[flow],
        schedule.wire_size[keep],
    )
    return packets[np.argsort(packets["timestamp"], kind="stable")]


_DEFAULT_ENGINE = GenerationEngine()


def default_engine() -> GenerationEngine:
    """The shared single-chunk, single-worker engine instance."""
    return _DEFAULT_ENGINE
