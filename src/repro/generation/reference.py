"""Reference (pre-engine) rate-path generator — the validation oracle.

This module preserves the original per-flow Python loop that
:func:`repro.generation.generate_rate_series` shipped with, byte for byte
in behaviour: one global RNG stream, one pass over flows, one
``volumes[lo:hi] += diff`` per flow.  The vectorized engine
(:mod:`repro.generation.engine`) must reproduce this function's output
**bit-for-bit** for the same seed — the equivalence tests in
``tests/generation/test_engine.py`` and the scaling benchmark in
``benchmarks/bench_engine_scaling.py`` both treat it as ground truth, so
do not "optimise" it.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive
from ..core.ensemble import FlowEnsemble
from ..core.shots import Shot
from ..exceptions import ParameterError
from ..stats.timeseries import RateSeries

__all__ = ["reference_rate_series"]


def reference_rate_series(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    duration: float,
    delta: float,
    *,
    warmup: float | None = None,
    rng=None,
) -> RateSeries:
    """Simulate the Delta-averaged total rate with the original flow loop."""
    arrival_rate = check_positive("arrival_rate", arrival_rate)
    duration = check_positive("duration", duration)
    delta = check_positive("delta", delta)
    if delta > duration:
        raise ParameterError("delta must not exceed duration")
    rng = as_rng(rng)

    # draw a provisional sample to size the warm-up
    if warmup is None:
        _, probe_durations = ensemble.sample(2048, rng)
        warmup = float(np.quantile(probe_durations, 0.99))
    warmup = max(float(warmup), 0.0)

    horizon = duration + warmup
    n_flows = rng.poisson(arrival_rate * horizon)
    if n_flows == 0:
        raise ParameterError(
            "no flows generated; increase arrival_rate or duration"
        )
    starts = rng.random(n_flows) * horizon - warmup
    sizes, flow_durations = ensemble.sample(n_flows, rng)

    n_bins = int(np.floor(duration / delta))
    edges = delta * np.arange(n_bins + 1)
    volumes = np.zeros(n_bins)

    # Each flow adds C(t1 - T) - C(t0 - T) bytes to bin [t0, t1): exact.
    first_bin = np.clip(np.floor(starts / delta).astype(np.int64), 0, n_bins)
    last_bin = np.clip(
        np.ceil((starts + flow_durations) / delta).astype(np.int64), 0, n_bins
    )
    for i in range(n_flows):
        lo, hi = first_bin[i], last_bin[i]
        if hi <= 0 or lo >= n_bins or hi <= lo:
            # entirely outside the observation window, or zero-width
            if lo >= n_bins or hi <= 0:
                continue
        lo = max(lo, 0)
        hi = min(max(hi, lo + 1), n_bins)
        local_edges = edges[lo: hi + 1]
        cumulative = shot.cumulative(
            local_edges - starts[i], sizes[i], flow_durations[i]
        )
        volumes[lo:hi] += np.diff(cumulative)

    return RateSeries(volumes / delta, delta)
