"""Durable checkpoint stores for the long-running fan-outs.

A :class:`CheckpointStore` owns one directory holding a ``manifest.json``
plus one ``<key>.ckpt`` entry per completed unit of work (a sweep cell,
a network link).  Writes are atomic (``write + fsync + os.replace``), so
a run killed mid-write never leaves a torn entry — a checkpoint either
exists completely or not at all.

The manifest pins a *fingerprint* of the run's identity.  Resuming into
a directory whose fingerprint does not match raises
:class:`~repro.exceptions.CheckpointError` instead of silently mixing
results from two different scenarios.  Execution knobs (``workers``,
``backend``, ``chunk``, ``retry``) are excluded from the fingerprint:
results are execution-invariant by contract, so a run interrupted at
``workers=8`` may resume at ``workers=2`` and still be bitwise-equal.

Entries are pickled: pickle round-trips every float bit-for-bit and
rebuilds the frozen result dataclasses directly, which is what makes a
resumed report *bitwise-equal* to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

from .exceptions import CheckpointError

__all__ = ["CheckpointStore", "run_fingerprint"]

MANIFEST_NAME = "manifest.json"
_VERSION = 1


def run_fingerprint(payload) -> str:
    """A stable hex digest of a JSON-able run-identity payload.

    ``execution`` sections are stripped recursively before hashing (see
    the module docstring), and dict ordering is normalised, so two
    specs that can only differ in wall-clock strategy fingerprint
    identically.
    """

    def strip(value):
        if isinstance(value, dict):
            return {
                k: strip(v)
                for k, v in sorted(value.items())
                if k != "execution"
            }
        if isinstance(value, (list, tuple)):
            return [strip(v) for v in value]
        return value

    blob = json.dumps(strip(payload), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class CheckpointStore:
    """One directory of atomically-written, manifest-pinned entries.

    ``resume=False`` (a fresh run) discards any entries already present
    for the *same* fingerprint and starts over; ``resume=True`` keeps
    them so the caller can skip completed work.  Either way a
    fingerprint mismatch fails loudly — a checkpoint directory never
    silently serves results from a different run.
    """

    def __init__(self, directory, fingerprint: str, *, resume: bool = False):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = str(fingerprint)
        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
            except ValueError as exc:
                raise CheckpointError(
                    f"unreadable checkpoint manifest {manifest_path}: {exc}"
                ) from None
            if manifest.get("fingerprint") != self.fingerprint:
                raise CheckpointError(
                    f"checkpoint directory {self.directory} belongs to a "
                    "different run (fingerprint mismatch); point "
                    "checkpoint_dir at a fresh directory"
                )
            if not resume:
                for entry in self.directory.glob("*.ckpt"):
                    entry.unlink()
        _atomic_write(
            manifest_path,
            json.dumps(
                {"version": _VERSION, "fingerprint": self.fingerprint},
                indent=2,
            ).encode("utf-8"),
        )

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.ckpt"

    def has(self, key: str) -> bool:
        return self._path(key).exists()

    def load(self, key: str):
        with open(self._path(key), "rb") as fh:
            return pickle.load(fh)

    def save(self, key: str, value) -> None:
        _atomic_write(
            self._path(key),
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.directory.glob("*.ckpt"))
