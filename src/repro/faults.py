"""Deterministic fault injection for the execution resilience layer.

A :class:`FaultPlan` names exactly one failure to inject into a
process-backend run:

``worker-crash``
    the worker executing task ``task`` dies hard (``os._exit``) on its
    first attempt — exercises the watchdog + respawn + re-execute path.
``task-exception``
    task ``task`` raises :class:`~repro.exceptions.FaultInjectedError`
    on its first attempt — a *deterministic* failure, which must
    propagate loudly rather than burn retries.
``slow-task``
    task ``task`` sleeps ``seconds`` before computing on its first
    attempt — exercises the per-task deadline on a hung-but-alive
    worker.
``shm-exhaustion``
    the next ``count`` one-shot shared-memory allocations fail with
    ``ENOSPC`` — exercises the transport's pickle fallback.

Plans are installed either in-process via :func:`install` (the pool
dispatches the parent's plan alongside every task payload, so workers
always see the parent's current install/clear state) or through the
``REPRO_FAULTS`` environment variable holding the same fields as JSON,
e.g.::

    REPRO_FAULTS='{"kind": "worker-crash", "task": 3}'

Every fault fires **only on a task's first attempt** (``attempt == 0``),
so a retried task deterministically succeeds — which is exactly the
recovery contract the chaos battery pins: identical output, one named
retry in :class:`~repro.execution.health.RunHealth`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from .exceptions import FaultInjectedError, ParameterError

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "active_plan",
    "clear",
    "consume_shm_fault",
    "fire_task_fault",
    "install",
]

FAULT_KINDS = ("worker-crash", "task-exception", "slow-task", "shm-exhaustion")

#: Environment hook: a JSON object with the :class:`FaultPlan` fields.
FAULTS_ENV = "REPRO_FAULTS"


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """One seeded, reproducible failure to inject."""

    kind: str
    task: int = 0  # 0-based task index the fault targets
    count: int = 1  # shm-exhaustion: how many allocations fail
    seconds: float = 5.0  # slow-task: how long to hang

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ParameterError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if int(self.task) < 0:
            raise ParameterError("fault task index must be >= 0")
        if int(self.count) < 1:
            raise ParameterError("fault count must be >= 1")
        if float(self.seconds) < 0:
            raise ParameterError("fault seconds must be >= 0")


_PLAN: FaultPlan | None = None
_SHM_REMAINING: int | None = None


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` in this process (pools dispatch it to workers)."""
    global _PLAN, _SHM_REMAINING
    _PLAN = plan
    _SHM_REMAINING = None


def clear() -> None:
    """Disarm any installed plan."""
    global _PLAN, _SHM_REMAINING
    _PLAN = None
    _SHM_REMAINING = None


def active_plan() -> FaultPlan | None:
    """The installed plan, else one parsed from ``REPRO_FAULTS``."""
    if _PLAN is not None:
        return _PLAN
    raw = os.environ.get(FAULTS_ENV, "")
    if not raw:
        return None
    try:
        data = json.loads(raw)
    except ValueError as exc:
        raise ParameterError(f"{FAULTS_ENV} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ParameterError(f"{FAULTS_ENV} must be a JSON object")
    return FaultPlan(**data)


def fire_task_fault(
    index: int, attempt: int, plan: FaultPlan | None = None
) -> None:
    """Inject the armed task fault, if ``index`` is its target.

    Called by the pool worker just before running each task.  The pool
    dispatches the *parent's* active plan with every task payload, so
    :func:`install` / :func:`clear` in the parent are authoritative even
    for workers forked while a plan was armed; callers that pass no plan
    fall back to this process's own :func:`active_plan`.  Faults fire
    only on ``attempt == 0`` so recovery is deterministic.
    """
    if plan is None:
        plan = active_plan()
    if plan is None or attempt != 0 or index != int(plan.task):
        return
    if plan.kind == "worker-crash":
        os._exit(17)
    if plan.kind == "task-exception":
        raise FaultInjectedError(
            f"injected exception in task {index} (FaultPlan task-exception)"
        )
    if plan.kind == "slow-task":
        time.sleep(float(plan.seconds))


def consume_shm_fault() -> bool:
    """True when the next one-shot shm allocation should fail (ENOSPC).

    Decrements the armed plan's budget; an env-armed plan counts within
    each process separately (workers inherit the env, not the counter).
    """
    plan = active_plan()
    if plan is None or plan.kind != "shm-exhaustion":
        return False
    global _SHM_REMAINING
    if _SHM_REMAINING is None:
        _SHM_REMAINING = int(plan.count)
    if _SHM_REMAINING <= 0:
        return False
    _SHM_REMAINING -= 1
    return True
