"""Topology-wide flow simulation: route a demand matrix, drive every link.

The :class:`NetworkEngine` closes the paper's section VI-VII loop at the
network level: each origin-destination demand is a Poisson flow
population (a :class:`~repro.netsim.LinkWorkload`), the routing strategy
pins each flow to a path via the deterministic ECMP hash, and every link
carries the superposition of the flow populations routed over it —
Poisson superposition is exactly the model's multi-class extension, so
the per-link traffic is again shot noise and the whole single-link
pipeline (streamed synthesis → streamed measurement → fit → provision →
detect) applies link by link.

Execution model:

* **Per-link tasks.** Each simulated link re-synthesizes the demands
  crossing it from their own ``SeedSequence`` (demand ``i`` of a network
  seeded ``s`` draws from ``SeedSequence([s, i])``), filters each packet
  chunk by the flow-hash/route-segment rule, and k-way merges the
  filtered streams into one time-ordered stream feeding a streaming
  :class:`~repro.measurement.MeasurementEngine`.  Peak memory per link
  is bounded by one chunk per crossing demand plus the open-flow tables
  — never a trace.
* **Sharding.** Links are independent given the demand seeds, so the
  engine fans them out over a :func:`repro.execution.make_pool` worker
  pool (``workers`` × ``backend``); per-link synthesis/measurement stay
  single-worker so pools never nest (and :func:`make_pool` downgrades a
  nested ``process`` request to threads anyway).
* **Determinism.** Per-link outputs depend only on ``(seed, demands,
  topology, routing, events)`` — never on ``chunk`` or ``workers``.
  The merged packet order is canonical: sorted by timestamp with ties
  broken by demand index (then within-demand synthesis order), so the
  per-link trace, FlowSet and RateSeries are bitwise invariant to the
  execution knobs, and a one-demand one-link network reproduces
  :func:`~repro.netsim.link.synthesize_link_trace` +
  :class:`~repro.measurement.StreamingMeasurement` bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import check_positive, check_probability
from ..applications.anomaly import AnomalyDetector, AnomalyEvent
from ..applications.dimensioning import provision_capacity
from ..checkpoint import CheckpointStore, run_fingerprint
from ..core.model import PoissonShotNoiseModel
from ..core.shots import variance_shape_factor
from ..exceptions import ParameterError
from ..execution import check_backend, make_pool, stage_timer
from ..flows.records import FlowSet
from ..measurement.engine import MeasurementEngine
from ..stats.timeseries import RateSeries
from .demands import DemandMatrix
from .events import FlashCrowd, LinkOutage, apply_flash_crowds, routing_timeline
from .routing import ecmp_salt, flow_uniforms, resolve_routing
from .topology import Topology

__all__ = [
    "NetworkEngine",
    "LinkSimulation",
    "NetworkSimulation",
    "NetworkLinkReport",
    "NetworkReport",
]

#: Default packets per streamed block (matches the synthesis engine).
DEFAULT_NETWORK_CHUNK = 1_000_000


# -- per-link packet plumbing ----------------------------------------------


def _segment_intervals(segments, link):
    """Per segment: the hash-uniform intervals of ``link`` (maybe empty).

    Adjacent segments with equal intervals are coalesced — an outage
    elsewhere in the topology splits every demand's timeline at its
    breakpoints, but a demand whose share of *this* link never changes
    collapses back to one segment (restoring the no-hash fast path for
    unaffected single-path demands).
    """
    out = []
    for segment in segments:
        intervals = (
            ()
            if segment.routed is None
            else segment.routed.intervals_for_link(link)
        )
        if out and out[-1][2] == intervals and out[-1][1] == segment.t0:
            out[-1] = (out[-1][0], segment.t1, intervals)
        else:
            out.append((segment.t0, segment.t1, intervals))
    return out


def _covers_unit_interval(intervals) -> bool:
    """True when the hash intervals union to all of ``[0, 1)``."""
    reach = 0.0
    for lo, hi in sorted(intervals):
        if lo > reach:
            return False
        reach = max(reach, hi)
    return reach >= 1.0


def _filter_chunks(stream, segment_intervals, salt):
    """Yield the packets of one demand stream that traverse one link."""
    # constant route fast path: no event ever moves this demand, so the
    # keep-rule is time-independent
    constant = len(segment_intervals) == 1
    if constant and _covers_unit_interval(segment_intervals[0][2]):
        # every flow crosses this link (single-path routes, or ECMP
        # paths that all share it): no per-packet hashing needed
        yield from stream
        return
    for block in stream:
        if not block.size:
            continue
        u = flow_uniforms(block, salt)
        keep = np.zeros(block.size, dtype=bool)
        ts = block["timestamp"]
        for t0, t1, intervals in segment_intervals:
            if not intervals:
                continue
            in_window = (
                None if constant else (ts >= t0) & (ts < t1)
            )
            for lo, hi in intervals:
                picked = (u >= lo) & (u < hi)
                if in_window is not None:
                    picked &= in_window
                keep |= picked
        if keep.all():
            yield block
        elif keep.any():
            yield block[keep]


def _merge_packet_streams(streams):
    """K-way merge of per-demand time-ordered chunk iterators.

    Canonical global order: timestamp, ties broken by stream (demand)
    index, then within-stream order — invariant to every stream's chunk
    boundaries.  Memory is bounded by one block per stream plus the
    boundary carry.
    """
    iterators = [iter(s) for s in streams]
    k = len(iterators)
    current: list[np.ndarray | None] = [None] * k
    exhausted = [False] * k

    def refill(i) -> None:
        while current[i] is None and not exhausted[i]:
            block = next(iterators[i], None)
            if block is None:
                exhausted[i] = True
            elif block.size:
                current[i] = block

    for i in range(k):
        refill(i)
    while True:
        active = [i for i in range(k) if current[i] is not None]
        if not active:
            return
        pending = [i for i in active if not exhausted[i]]
        t_safe = (
            min(float(current[i]["timestamp"][-1]) for i in pending)
            if pending
            else np.inf
        )
        parts = []
        for i in active:
            block = current[i]
            cut = (
                block.size
                if t_safe == np.inf
                else int(
                    np.searchsorted(block["timestamp"], t_safe, side="left")
                )
            )
            if cut:
                parts.append(block[:cut])
            current[i] = block[cut:] if cut < block.size else None
        # pull the bounding streams forward so t_safe strictly advances
        for i in pending:
            if (
                current[i] is None
                or float(current[i]["timestamp"][-1]) <= t_safe
            ):
                tail = current[i]
                current[i] = None
                refill(i)
                if tail is not None and tail.size:
                    current[i] = (
                        tail
                        if current[i] is None
                        else np.concatenate([tail, current[i]])
                    )
        if not parts:
            continue
        if len(parts) == 1:
            yield parts[0]
            continue
        merged = np.concatenate(parts)
        order = np.argsort(merged["timestamp"], kind="stable")
        yield merged[order]


class _LinkStream:
    """The merged, filtered packet stream of one link (single use).

    Mirrors the duck-type the measurement engine reads metadata from
    (``duration``/``link_capacity``), and optionally accumulates the
    materialised per-link trace for tests and exports.
    """

    def __init__(
        self, merged, *, duration, link_capacity, keep_packets=False
    ) -> None:
        self._merged = merged
        self.duration = float(duration)
        self.link_capacity = float(link_capacity)
        self.keep_packets = keep_packets
        self._blocks: list[np.ndarray] = []

    def __iter__(self):
        for block in self._merged:
            if self.keep_packets:
                self._blocks.append(block)
            yield block

    def packets(self) -> np.ndarray:
        from ..trace.packet import PACKET_DTYPE

        if not self._blocks:
            return np.zeros(0, dtype=PACKET_DTYPE)
        return (
            self._blocks[0]
            if len(self._blocks) == 1
            else np.concatenate(self._blocks)
        )


# -- results ---------------------------------------------------------------


@dataclass
class LinkSimulation:
    """Everything the engine measured on one link."""

    link: tuple[str, str]
    capacity_bps: float
    n_demands: int
    packet_count: int = 0
    total_bytes: float = 0.0
    flows: FlowSet | None = None
    series: RateSeries | None = None
    raw_series: RateSeries | None = None
    model: PoissonShotNoiseModel | None = None
    fitted: PoissonShotNoiseModel | None = None
    fitted_power: float = float("nan")
    statistics: object | None = None  # FlowStatistics
    required_capacity_bps: float = 0.0
    anomalies: tuple[AnomalyEvent, ...] = ()
    delta: float = 0.2
    duration: float = 0.0
    packets: np.ndarray | None = None  # only with keep_packets=True

    @property
    def mean_rate_bps(self) -> float:
        if self.duration <= 0.0:
            return 0.0
        return 8.0 * self.total_bytes / self.duration

    @property
    def utilization(self) -> float:
        if not self.capacity_bps:
            return 0.0
        return self.mean_rate_bps / self.capacity_bps

    @property
    def measured_cov(self) -> float:
        if self.series is None or self.series.mean == 0.0:
            return float("nan")
        return float(self.series.coefficient_of_variation)

    @property
    def overloaded(self) -> bool:
        return self.required_capacity_bps > self.capacity_bps

    def report(self) -> "NetworkLinkReport":
        return NetworkLinkReport(
            link=self.link,
            capacity_bps=float(self.capacity_bps),
            n_demands=int(self.n_demands),
            packets=int(self.packet_count),
            mean_rate_bps=float(self.mean_rate_bps),
            utilization=float(self.utilization),
            measured_cov=float(self.measured_cov),
            fitted_power=float(self.fitted_power),
            fitted_cov=(
                float(self.fitted.coefficient_of_variation)
                if self.fitted is not None
                else float("nan")
            ),
            arrival_rate=(
                float(self.statistics.arrival_rate)
                if self.statistics is not None
                else 0.0
            ),
            required_capacity_bps=float(self.required_capacity_bps),
            overloaded=bool(self.overloaded),
            anomalies=tuple(
                {
                    "kind": event.kind,
                    "start_s": float(event.start_time(self.delta)),
                    "duration_s": float(event.n_samples * self.delta),
                    "peak_z": float(event.peak_z),
                }
                for event in self.anomalies
            ),
        )


@dataclass(frozen=True)
class NetworkLinkReport:
    """JSON-safe per-link entry of a :class:`NetworkReport`."""

    link: tuple[str, str]
    capacity_bps: float
    n_demands: int
    packets: int
    mean_rate_bps: float
    utilization: float
    measured_cov: float
    fitted_power: float
    fitted_cov: float
    arrival_rate: float
    required_capacity_bps: float
    overloaded: bool
    anomalies: tuple[dict, ...] = ()

    def to_dict(self) -> dict:
        out = {
            "link": list(self.link),
            "capacity_bps": self.capacity_bps,
            "n_demands": self.n_demands,
            "packets": self.packets,
            "mean_rate_bps": self.mean_rate_bps,
            "utilization": self.utilization,
            "measured_cov": (
                None if np.isnan(self.measured_cov) else self.measured_cov
            ),
            "fitted_power": (
                None if np.isnan(self.fitted_power) else self.fitted_power
            ),
            "fitted_cov": (
                None if np.isnan(self.fitted_cov) else self.fitted_cov
            ),
            "arrival_rate": self.arrival_rate,
            "required_capacity_bps": self.required_capacity_bps,
            "overloaded": self.overloaded,
        }
        if self.anomalies:
            out["anomalies"] = [dict(a) for a in self.anomalies]
        return out


@dataclass(frozen=True)
class NetworkReport:
    """The network run's final artifact (what ``repro network`` writes)."""

    name: str
    seed: int
    duration: float
    routing: str
    n_routers: int
    n_links: int
    n_demands: int
    links: tuple[NetworkLinkReport, ...]

    @property
    def overloaded_links(self) -> tuple[NetworkLinkReport, ...]:
        return tuple(entry for entry in self.links if entry.overloaded)

    @property
    def anomalous_links(self) -> tuple[NetworkLinkReport, ...]:
        return tuple(entry for entry in self.links if entry.anomalies)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": int(self.seed),
            "duration_s": float(self.duration),
            "routing": self.routing,
            "topology": {
                "routers": int(self.n_routers),
                "links": int(self.n_links),
            },
            "n_demands": int(self.n_demands),
            "overloaded_links": [
                list(entry.link) for entry in self.overloaded_links
            ],
            "anomalous_links": [
                list(entry.link) for entry in self.anomalous_links
            ],
            "links": [entry.to_dict() for entry in self.links],
        }


@dataclass
class NetworkSimulation:
    """Per-link results plus the aggregate report."""

    name: str
    seed: int
    duration: float
    routing: str
    topology: Topology
    links: dict[tuple[str, str], LinkSimulation] = field(default_factory=dict)

    def __getitem__(self, link: tuple[str, str]) -> LinkSimulation:
        return self.links[(str(link[0]), str(link[1]))]

    @property
    def simulated_links(self) -> list[LinkSimulation]:
        """Links that carried traffic, in topology order."""
        return [s for s in self.links.values() if s.n_demands > 0]

    def report(self) -> NetworkReport:
        return NetworkReport(
            name=self.name,
            seed=int(self.seed),
            duration=float(self.duration),
            routing=self.routing,
            n_routers=len(self.topology.routers),
            n_links=self.topology.n_links,
            n_demands=int(self._n_demands),
            links=tuple(s.report() for s in self.links.values()),
        )

    _n_demands: int = 0


# -- the engine ------------------------------------------------------------


class NetworkEngine:
    """Whole-backbone flow simulation (see module docs).

    Parameters
    ----------
    chunk:
        Packets per streamed block inside each per-link pass (default
        :data:`DEFAULT_NETWORK_CHUNK`).  Execution strategy only: per-link
        results are bitwise invariant to it.
    workers:
        Links simulated concurrently on an execution-backend pool.
        Execution strategy only — never changes any result.
    backend:
        Pool flavour carrying the per-link tasks: ``"serial"``,
        ``"thread"`` (default) or ``"process"`` (shared-memory workers;
        per-link synthesis/measurement inside each task stay
        single-worker so pools never nest).
    retry:
        Optional :class:`~repro.execution.RetryPolicy` arming the
        process backend's watchdog: a per-link task whose worker
        crashes or hangs is deterministically re-executed.  Execution
        strategy only — never changes any result.
    """

    def __init__(
        self,
        *,
        chunk: int | None = None,
        workers: int = 1,
        backend: str = "thread",
        retry=None,
    ) -> None:
        if chunk is not None:
            if int(chunk) != chunk or int(chunk) < 1:
                raise ParameterError(
                    f"network chunk must be an integer >= 1 packet, "
                    f"got {chunk!r}"
                )
            chunk = int(chunk)
        if int(workers) != workers or int(workers) < 1:
            raise ParameterError(
                f"workers must be an integer >= 1, got {workers!r}"
            )
        self.chunk = chunk
        self.workers = int(workers)
        self.backend = check_backend("backend", backend)
        self.retry = retry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkEngine(chunk={self.chunk}, workers={self.workers}, "
            f"backend={self.backend!r})"
        )

    def simulate(
        self,
        topology: Topology,
        demands,
        *,
        routing="ecmp",
        events=(),
        seed: int = 0,
        name: str = "network",
        delta: float = 0.2,
        flow_kind: str = "five_tuple",
        timeout: float = 8.0,
        min_packets: int = 2,
        prefix_length: int = 24,
        epsilon: float = 0.01,
        detect_anomalies: bool = False,
        threshold_sigma: float = 3.0,
        min_run: int = 3,
        keep_packets: bool = False,
        checkpoint_dir=None,
        resume: bool = False,
    ) -> NetworkSimulation:
        """Simulate every link of the topology under the demand matrix.

        ``events`` mixes :class:`~repro.network.events.LinkOutage` and
        :class:`~repro.network.events.FlashCrowd` entries.  Returns a
        :class:`NetworkSimulation`; call :meth:`NetworkSimulation.report`
        for the JSON-safe artifact.

        ``checkpoint_dir`` persists each completed link's simulation
        durably (atomic write + manifest, see :mod:`repro.checkpoint`);
        ``resume=True`` then loads finished links and simulates only
        the remainder — bitwise-equal to an uninterrupted run, because
        every link task is seeded independently.
        """
        if resume and checkpoint_dir is None:
            raise ParameterError(
                "resume=True needs a checkpoint_dir to resume from"
            )
        if not isinstance(topology, Topology):
            raise ParameterError(
                f"expected a Topology, got {type(topology).__name__}"
            )
        if not isinstance(demands, DemandMatrix):
            demands = DemandMatrix(demands)
        if not len(demands):
            raise ParameterError("the demand matrix must not be empty")
        demands.validate_endpoints(topology)
        routing = resolve_routing(routing)
        delta = check_positive("delta", delta)
        epsilon = check_probability("epsilon", epsilon)
        outages = [e for e in events if isinstance(e, LinkOutage)]
        crowds = [e for e in events if isinstance(e, FlashCrowd)]
        stray = [
            e for e in events
            if not isinstance(e, (LinkOutage, FlashCrowd))
        ]
        if stray:
            raise ParameterError(
                f"unknown network event type {type(stray[0]).__name__}"
            )
        duration = demands.duration
        # disjoint per-demand destination blocks (tile offset zero for
        # demand 0, preserving the single-link degeneracy bit for bit)
        demands = demands.with_tiled_addresses()
        with stage_timer("network.routing"):
            timeline = routing_timeline(
                topology, demands, routing, outages, duration=duration
            )
            demands = apply_flash_crowds(demands, crowds)
            salt = ecmp_salt(seed)

            # which demands can ever cross each link (any segment)
            crossing: dict[tuple[str, str], list[int]] = {
                link: [] for link in topology.links
            }
            for index, segments in enumerate(timeline):
                touched: set[tuple[str, str]] = set()
                for segment in segments:
                    if segment.routed is not None:
                        touched.update(segment.routed.links())
                for link in touched:
                    crossing[link].append(index)

        simulation = NetworkSimulation(
            name=str(name),
            seed=int(seed),
            duration=duration,
            routing=routing.name,
            topology=topology,
        )
        simulation._n_demands = len(demands)
        measure_kwargs = dict(
            delta=delta,
            key=flow_kind,
            timeout=timeout,
            min_packets=int(min_packets),
            prefix_length=int(prefix_length),
        )
        detect_kwargs = dict(
            epsilon=epsilon,
            detect_anomalies=bool(detect_anomalies),
            threshold_sigma=threshold_sigma,
            min_run=int(min_run),
        )

        store = None
        if checkpoint_dir is not None:
            store = CheckpointStore(
                checkpoint_dir,
                run_fingerprint({
                    "name": str(name),
                    "seed": int(seed),
                    "duration": float(duration),
                    "routing": routing.name,
                    "links": [list(link) for link in topology.links],
                    "n_demands": len(demands),
                    "measure": measure_kwargs,
                    "detect": detect_kwargs,
                    "keep_packets": bool(keep_packets),
                }),
                resume=resume,
            )

        chunk = self.chunk or DEFAULT_NETWORK_CHUNK
        tasks = []
        task_keys = []
        restored = 0
        for position, link in enumerate(topology.links):
            indices = crossing[link]
            capacity = topology.capacity_bps(*link)
            if not indices:
                simulation.links[link] = LinkSimulation(
                    link=link,
                    capacity_bps=capacity,
                    n_demands=0,
                    delta=delta,
                    duration=duration,
                )
                continue
            key = f"link-{position:04d}"
            if store is not None and resume and store.has(key):
                simulation.links[link] = store.load(key)
                restored += 1
                continue
            # every link task rebuilds each crossing demand's SeedSequence
            # from scratch: spawn() mutates the sequence, so sharing one
            # instance across concurrent tasks would decohere the streams
            # — fresh, equal-valued children per (demand, link) keep one
            # demand's flows identical on every link of its path
            tasks.append((
                link,
                capacity,
                [demands[i] for i in indices],
                [demands[i].seed_sequence(int(seed), i) for i in indices],
                [_segment_intervals(timeline[i], link) for i in indices],
                salt,
                duration,
                chunk,
                measure_kwargs,
                detect_kwargs,
                keep_packets,
            ))
            task_keys.append(key)
        with stage_timer("network.links"):
            # without a checkpoint dir everything goes in one fan-out;
            # with one, links go through in pool-width batches so each
            # completed batch lands on disk before the next starts
            width = min(self.workers, max(len(tasks), 1))
            batch_size = len(tasks) if store is None else max(1, width)
            pool = None
            try:
                for b0 in range(0, len(tasks), batch_size):
                    batch = tasks[b0:b0 + batch_size]
                    if len(batch) <= 1 or self.workers <= 1:
                        results = [_simulate_link_task(t) for t in batch]
                    else:
                        if pool is None:
                            pool = make_pool(
                                self.backend, width, retry=self.retry
                            )
                        results = pool.map_ordered(
                            _simulate_link_task, batch
                        )
                    for offset, result in enumerate(results):
                        task = batch[offset]
                        simulation.links[task[0]] = result
                        if store is not None:
                            store.save(task_keys[b0 + offset], result)
            finally:
                if pool is not None:
                    pool.close()
        # restore topology order (empty links were inserted eagerly)
        simulation.links = {
            link: simulation.links[link] for link in topology.links
        }
        return simulation


# -- one link --------------------------------------------------------------


def _simulate_link_task(task) -> LinkSimulation:
    """Simulate one link from a picklable task tuple (worker entry)."""
    return _simulate_one_link(*task)


def _simulate_one_link(
    link,
    capacity_bps,
    link_demands,
    link_seeds,
    link_segments,
    salt,
    duration,
    chunk,
    measure_kwargs,
    detect_kwargs,
    keep_packets,
) -> LinkSimulation:
    streams = [
        _filter_chunks(
            demand.workload.synthesize_chunks(
                seed=child, chunk=chunk, workers=1
            ),
            segments,
            salt,
        )
        for demand, child, segments in zip(
            link_demands, link_seeds, link_segments
        )
    ]
    link_stream = _LinkStream(
        _merge_packet_streams(streams),
        duration=duration,
        link_capacity=capacity_bps,
        keep_packets=keep_packets,
    )
    engine = MeasurementEngine(chunk=chunk, workers=1)
    measured = engine.measure_chunks(
        link_stream,
        keep_raw_series=bool(detect_kwargs["detect_anomalies"]),
        **measure_kwargs,
    )
    result = LinkSimulation(
        link=link,
        capacity_bps=capacity_bps,
        n_demands=len(link_demands),
        packet_count=int(measured.packet_count),
        total_bytes=float(measured.total_bytes),
        flows=measured.flows,
        series=measured.series,
        raw_series=measured.raw_series,
        delta=float(measure_kwargs["delta"]),
        duration=duration,
    )
    if keep_packets:
        result.packets = link_stream.packets()
    flows = measured.flows
    if len(flows) and measured.series is not None:
        result.statistics = flows.statistics(duration)
        model = PoissonShotNoiseModel.from_flows(
            flows.sizes, flows.durations, duration
        )
        fit = model.fit_power(measured.series.variance)
        result.model = model
        result.fitted = model.with_shot(fit.shot)
        result.fitted_power = float(fit.power)
        provisioned = provision_capacity(
            result.statistics,
            detect_kwargs["epsilon"],
            shape_factor=variance_shape_factor(fit.power),
        )
        result.required_capacity_bps = float(provisioned.capacity_bps)
        if detect_kwargs["detect_anomalies"] and result.raw_series is not None:
            # rectangular-baseline Gaussian band, as in the pipeline's
            # Validate stage: the baseline variance comes from flow
            # statistics alone, so an anomaly cannot widen its own band
            detector = AnomalyDetector(
                model.gaussian(),
                threshold_sigma=detect_kwargs["threshold_sigma"],
                min_run=detect_kwargs["min_run"],
            )
            result.anomalies = tuple(detector.detect(result.raw_series))
    return result
