"""Origin-destination demand matrices of flow populations.

Where :class:`repro.applications.backbone.Demand` carries *measured*
three-parameter statistics (the analytic moment-sum path), a
:class:`NetworkDemand` carries a full :class:`~repro.netsim.LinkWorkload`
flow population: the network engine synthesizes it packet by packet,
routes its flows, and superposes it with the other demands on every link
it crosses.

Each demand owns a deterministic ``SeedSequence``: demand ``i`` of a
network seeded with ``seed`` draws from ``SeedSequence([seed, i])``
unless the demand pins its own ``seed`` — in which case it draws from
``SeedSequence(demand.seed)`` exactly like a standalone
:meth:`~repro.netsim.LinkWorkload.synthesize` call, which is what makes
the one-demand one-link network reproduce the single-link engines bit
for bit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError, TopologyError
from ..netsim.addresses import AddressSpace
from ..netsim.workloads import LinkWorkload
from .topology import Topology

__all__ = ["NetworkDemand", "DemandMatrix", "demand_address_space"]

#: Address stride per demand: 4096 /24 destination prefixes span 2^20
#: addresses, so tiling ``dst_base`` by 2^20 keeps demand populations
#: disjoint (distinct OD pairs do not share destination networks).
_DST_STRIDE = 1 << 20


def demand_address_space(index: int, template: AddressSpace | None = None):
    """A per-demand destination-address block (disjoint across demands).

    Demand ``index`` keeps the template's population shape but draws its
    destinations from a tiled base, so five-tuples never collide across
    demands on a shared link and the ECMP hash spreads demands
    independently.  Index 0 is the template itself — which is what keeps
    a one-demand network bit-for-bit equal to the standalone single-link
    engines.  The engine applies this to every demand
    (:meth:`DemandMatrix.with_tiled_addresses`); build workloads with a
    custom ``AddressSpace`` to shift the whole tiling, not to escape it.
    """
    template = template if template is not None else AddressSpace()
    base = (template.dst_base + int(index) * _DST_STRIDE) % (1 << 32)
    return dataclasses.replace(template, dst_base=base)


@dataclass(frozen=True)
class NetworkDemand:
    """One OD pair carrying a synthesizable flow population."""

    source: str
    sink: str
    workload: LinkWorkload
    #: Optional explicit synthesis seed.  ``None`` derives
    #: ``SeedSequence([network_seed, index])`` from the demand's position.
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "source", str(self.source))
        object.__setattr__(self, "sink", str(self.sink))
        if self.source == self.sink:
            raise TopologyError("demand source and sink must differ")
        if not isinstance(self.workload, LinkWorkload):
            raise ParameterError(
                f"demand workload must be a LinkWorkload, got "
                f"{type(self.workload).__name__}"
            )
        if self.seed is not None and int(self.seed) < 0:
            raise ParameterError(f"demand seed must be >= 0, got {self.seed!r}")

    @property
    def od(self) -> tuple[str, str]:
        return (self.source, self.sink)

    def seed_sequence(self, network_seed: int, index: int) -> np.random.SeedSequence:
        """The demand's synthesis seed (see module docs)."""
        if self.seed is not None:
            return np.random.SeedSequence(int(self.seed))
        return np.random.SeedSequence([int(network_seed), int(index)])


class DemandMatrix:
    """An ordered collection of :class:`NetworkDemand` entries.

    Order matters: it fixes each demand's derived seed and the
    deterministic tie-break when merging packets on a shared link, so a
    matrix is a reproducible object, not a bag.
    """

    def __init__(self, demands=()) -> None:
        self.demands: list[NetworkDemand] = []
        for demand in demands:
            self.add(demand)

    def add(self, demand: NetworkDemand) -> NetworkDemand:
        if not isinstance(demand, NetworkDemand):
            raise ParameterError(
                f"expected NetworkDemand, got {type(demand).__name__}"
            )
        self.demands.append(demand)
        return demand

    def __len__(self) -> int:
        return len(self.demands)

    def __iter__(self):
        return iter(self.demands)

    def __getitem__(self, index: int) -> NetworkDemand:
        return self.demands[index]

    def __repr__(self) -> str:
        return f"DemandMatrix(n_demands={len(self)})"

    @property
    def duration(self) -> float:
        """The common capture duration shared by every demand."""
        durations = {float(d.workload.duration) for d in self.demands}
        if len(durations) != 1:
            raise ParameterError(
                "all demands must share one duration; got "
                f"{sorted(durations)} — use LinkWorkload.with_duration"
            )
        return durations.pop()

    def validate_endpoints(self, topology: Topology) -> None:
        """Every demand endpoint must be a router of the topology."""
        for demand in self.demands:
            topology.require_router(demand.source)
            topology.require_router(demand.sink)

    def with_tiled_addresses(self) -> "DemandMatrix":
        """A copy with each demand's destination block tiled by position.

        The engine applies this before simulating, so demand populations
        never collide on a shared link no matter how the matrix was
        built (spec file or direct API).  Demand 0 keeps its declared
        address space untouched (tile offset zero).
        """
        return DemandMatrix(
            dataclasses.replace(
                demand,
                workload=dataclasses.replace(
                    demand.workload,
                    address_space=demand_address_space(
                        index, demand.workload.address_space
                    ),
                ),
            )
            for index, demand in enumerate(self.demands)
        )

    def total_rate_bps(self) -> float:
        return float(
            sum(d.workload.target_mean_rate_bps for d in self.demands)
        )
