"""Dynamic network events: link outages with reroute, demand flash crowds.

Events perturb a network run mid-trace, deterministically:

* :class:`LinkOutage` — a fibre fails for a window.  Demands whose
  routed paths cross the failed link are re-routed on the reduced
  topology *for that window only* (packets switch paths by timestamp,
  like an IGP reconvergence); demands left disconnected lose their
  packets for the window.  Unaffected demands keep their paths bit for
  bit.
* :class:`FlashCrowd` — one demand's flow arrival intensity is scaled by
  ``factor`` during a window (a flash crowd, or a DoS onset when the
  factor is large).  Implemented as a piecewise-constant
  non-homogeneous Poisson process, which stays cell-sampleable, so the
  streamed synthesis remains chunk/worker-invariant.

:func:`routing_timeline` compiles a topology, demand matrix, routing
strategy and event list into per-demand ``(t0, t1, RoutedPaths | None)``
segments — the pure-data object the engine's per-link packet filter
evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check_positive
from ..exceptions import ParameterError, TopologyError
from ..netsim.arrivals import NonHomogeneousPoissonArrivals, PoissonArrivals
from .demands import DemandMatrix
from .routing import RoutedPaths, RoutingStrategy
from .topology import Topology

__all__ = [
    "LinkOutage",
    "FlashCrowd",
    "RouteSegment",
    "routing_timeline",
    "apply_flash_crowds",
]


@dataclass(frozen=True)
class LinkOutage:
    """A fibre failure window (both directions of a bidirectional link)."""

    link: tuple[str, str]
    start: float
    duration: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "link", (str(self.link[0]), str(self.link[1]))
        )
        if float(self.start) < 0.0:
            raise ParameterError(f"outage start must be >= 0, got {self.start!r}")
        check_positive("outage duration", self.duration)

    @property
    def end(self) -> float:
        return float(self.start) + float(self.duration)


@dataclass(frozen=True)
class FlashCrowd:
    """A window during which one demand's arrival rate scales by ``factor``."""

    demand: int
    start: float
    duration: float
    factor: float = 4.0

    def __post_init__(self) -> None:
        if int(self.demand) < 0:
            raise ParameterError(
                f"flash-crowd demand index must be >= 0, got {self.demand!r}"
            )
        if float(self.start) < 0.0:
            raise ParameterError(
                f"flash-crowd start must be >= 0, got {self.start!r}"
            )
        check_positive("flash-crowd duration", self.duration)
        check_positive("flash-crowd factor", self.factor)

    @property
    def end(self) -> float:
        return float(self.start) + float(self.duration)


@dataclass(frozen=True)
class RouteSegment:
    """One time window of a demand's routing (``routed=None``: blackholed)."""

    t0: float
    t1: float
    routed: RoutedPaths | None


def _breakpoints(outages, duration: float) -> list[float]:
    points = {0.0, float(duration)}
    for outage in outages:
        if outage.start < duration:
            points.add(float(outage.start))
            points.add(min(outage.end, float(duration)))
    return sorted(points)


def routing_timeline(
    topology: Topology,
    demands: DemandMatrix,
    routing: RoutingStrategy,
    outages=(),
    *,
    duration: float | None = None,
) -> list[list[RouteSegment]]:
    """Per-demand route segments over the capture, honouring outages.

    For each inter-breakpoint window, demands whose baseline paths avoid
    every failed fibre keep them untouched; affected demands are
    re-routed on the reduced topology (``None`` when disconnected).
    """
    outages = list(outages)
    for outage in outages:
        if not isinstance(outage, LinkOutage):
            raise ParameterError(
                f"expected LinkOutage entries, got {type(outage).__name__}"
            )
        topology.fate_group(*outage.link)  # validates the link exists
    if duration is None:
        duration = demands.duration
    baseline = [
        routing.route(topology, demand.source, demand.sink)
        for demand in demands
    ]
    timeline: list[list[RouteSegment]] = [[] for _ in demands.demands]
    points = _breakpoints(outages, float(duration))
    reduced_cache: dict[frozenset, Topology] = {}
    for t0, t1 in zip(points[:-1], points[1:]):
        if t1 <= t0:
            continue
        failed = frozenset(
            group
            for outage in outages
            if outage.start <= t0 and outage.end >= t1
            and outage.start < outage.end
            for group in topology.fate_group(*outage.link)
        )
        if not failed:
            for segments, routed in zip(timeline, baseline):
                segments.append(RouteSegment(t0, t1, routed))
            continue
        if failed not in reduced_cache:
            reduced_cache[failed] = topology.without_links(failed)
        reduced = reduced_cache[failed]
        for segments, routed, demand in zip(
            timeline, baseline, demands.demands
        ):
            if not (routed.links() & failed):
                segments.append(RouteSegment(t0, t1, routed))
                continue
            try:
                rerouted = routing.route(reduced, demand.source, demand.sink)
            except TopologyError:
                rerouted = None  # disconnected: packets are blackholed
            segments.append(RouteSegment(t0, t1, rerouted))
    return timeline


def apply_flash_crowds(demands: DemandMatrix, crowds) -> DemandMatrix:
    """A demand matrix with flash-crowd arrival scaling applied.

    Each targeted demand's (Poisson) arrivals become a
    piecewise-constant non-homogeneous Poisson process: rate ``lambda``
    outside the windows, scaled inside.  Several crowds may target one
    demand (their factors multiply where windows overlap).
    Cell-sampleable, so streamed synthesis stays chunk/worker-invariant.
    """
    crowds = list(crowds)
    if not crowds:
        return demands
    import dataclasses

    from ..synthesis import default_warmup

    duration = demands.duration
    # the arrival process is sampled on the horizon [0, warmup +
    # duration) and shifted to capture time afterwards (see
    # repro.synthesis.cells), so capture-time windows move by the
    # workload's warm-up (the synthesis engine's default lead-in)
    warmup = default_warmup(duration)
    by_demand: dict[int, list[FlashCrowd]] = {}
    for crowd in crowds:
        if not isinstance(crowd, FlashCrowd):
            raise ParameterError(
                f"expected FlashCrowd entries, got {type(crowd).__name__}"
            )
        index = int(crowd.demand)
        if index >= len(demands):
            raise ParameterError(
                f"flash crowd targets demand {index}, but the matrix has "
                f"only {len(demands)} demands"
            )
        by_demand.setdefault(index, []).append(crowd)
    scaled = list(demands.demands)
    for index, bursts in by_demand.items():
        demand = scaled[index]
        arrivals = demand.workload.arrivals
        if arrivals is not None and not isinstance(arrivals, PoissonArrivals):
            raise ParameterError(
                "flash crowds only apply to Poisson-arrival demands, got "
                f"{type(arrivals).__name__} on demand {index}"
            )
        base_rate = (
            arrivals.rate
            if isinstance(arrivals, PoissonArrivals)
            else demand.workload.arrival_rate
        )
        windows = tuple(
            (
                float(burst.start) + warmup,
                min(float(burst.end), duration) + warmup,
                float(burst.factor),
            )
            for burst in bursts
        )

        def rate_fn(t, *, _r=base_rate, _w=windows):
            t = np.asarray(t, dtype=np.float64)
            rate = np.full(t.shape, _r)
            for start, end, factor in _w:
                rate = np.where((t >= start) & (t < end), rate * factor, rate)
            return rate

        bound = base_rate * float(
            np.prod([max(1.0, factor) for _, _, factor in windows])
        )
        crowded = NonHomogeneousPoissonArrivals(rate_fn, rate_max=bound)
        scaled[index] = dataclasses.replace(
            demand,
            workload=dataclasses.replace(demand.workload, arrivals=crowded),
        )
    return DemandMatrix(scaled)
