"""Analytic per-link superposition: edge statistics + routing = link moments.

The paper's section VI-A / VII-A argument: flow statistics measured at
the network *edges* plus routing information give the model on every
internal link without monitoring it — means and variances of independent
Poisson shot-noise classes add, and a routed split of a Poisson flow
population is again Poisson with the arrival rate thinned by the split
fraction (so ECMP fractions scale ``lambda``, keeping the per-flow
laws).

This module is the one home of that moment-sum logic; the historic
:class:`repro.applications.backbone.BackboneNetwork` front door delegates
here (see MIGRATION.md).

Demands are duck-typed: anything with ``source``, ``sink``,
``statistics`` (a :class:`~repro.core.parameters.FlowStatistics`) and
``shape_factor`` works — in particular
:class:`repro.applications.backbone.Demand`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from .._util import as_rng
from ..core.gaussian import normal_quantile
from ..core.parameters import FlowStatistics
from ..exceptions import ParameterError
from .routing import RoutingStrategy, ShortestPathRouting
from .topology import Topology

__all__ = [
    "AnalyticDemand",
    "LinkMoments",
    "superpose_link_moments",
    "workload_flow_statistics",
]


@dataclass
class LinkMoments:
    """Summed first/second moments of the demands crossing one link."""

    link: tuple[str, str]
    capacity_bps: float
    mean_rate: float = 0.0  # bytes/s
    variance: float = 0.0  # (bytes/s)^2
    arrival_rate: float = 0.0  # flows/s, thinned by split fractions
    n_demands: int = 0

    def required_capacity_bps(self, epsilon: float = 0.01) -> float:
        """Gaussian provisioning target ``8 (mean + F(eps) sigma)`` bits/s."""
        return 8.0 * (
            self.mean_rate + normal_quantile(epsilon) * np.sqrt(self.variance)
        )


@dataclass(frozen=True)
class AnalyticDemand:
    """A statistics-carrying OD demand for the moment-superposition path.

    The closed-form counterpart of a flow-population
    :class:`~repro.network.demands.NetworkDemand`: only the
    three-parameter summary travels, so whole what-if grids (growth
    factors x failure sets) evaluate in microseconds per cell.
    """

    source: str
    sink: str
    statistics: FlowStatistics
    shape_factor: float = 1.8

    def scaled(self, factor: float) -> "AnalyticDemand":
        """This demand under ``factor`` x growth: ``lambda`` scales, the
        per-flow laws do not (the paper's aggregation-smoothing axis)."""
        return dataclasses.replace(
            self, statistics=self.statistics.scaled_arrivals(factor)
        )


def workload_flow_statistics(workload, *, samples: int = 50_000) -> FlowStatistics:
    """The three-parameter summary a workload's laws imply, closed form.

    Derives (``lambda``, ``E[S]``, ``E[S^2/D]``) from a
    :class:`~repro.netsim.LinkWorkload` *without synthesizing packets*:
    a seeded Monte Carlo over the size law (the same 12345 convention as
    :attr:`~repro.netsim.LinkWorkload.mean_wire_bytes_per_flow`), the
    deterministic TCP window schedule for transfer durations
    (``n_rounds x rtt`` — the update rule of the synthesiser, jitter
    averaging out), and the CBR rate law for the UDP fraction.  This is
    what lets a capacity sweep assess a cell analytically before
    deciding whether the full packet-level engine needs to run.
    """
    params = workload.tcp_params
    rng = as_rng(12345)
    sizes = np.asarray(
        workload.size_dist.rvs(size=samples, random_state=rng),
        dtype=np.float64,
    )
    sizes = np.maximum(sizes, 40.0)
    packets = np.maximum(np.ceil(sizes / params.mss), 1.0)
    wire = sizes + params.header_bytes * packets
    rtts = np.asarray(
        workload.rtt_dist.rvs(size=samples, random_state=rng),
        dtype=np.float64,
    )
    rates = np.asarray(
        workload.cbr_rate_dist.rvs(size=samples, random_state=rng),
        dtype=np.float64,
    )
    from ..synthesis.cells import _window_table

    _, cum_windows = _window_table(params, int(packets.max()))
    n_rounds = np.searchsorted(cum_windows, packets, side="left") + 1
    tcp_durations = n_rounds * rtts
    udp_durations = np.maximum(sizes / rates, 1e-3)
    udp = float(workload.address_space.udp_fraction)
    mix = lambda tcp_val, udp_val: float(  # noqa: E731
        (1.0 - udp) * tcp_val + udp * udp_val
    )
    return FlowStatistics(
        arrival_rate=float(workload.arrival_rate),
        mean_size=float(np.mean(wire)),
        mean_square_size_over_duration=mix(
            np.mean(wire**2 / tcp_durations),
            np.mean(wire**2 / udp_durations),
        ),
        mean_duration=mix(np.mean(tcp_durations), np.mean(udp_durations)),
    )


def superpose_link_moments(
    topology: Topology,
    demands,
    *,
    routing: RoutingStrategy | None = None,
) -> dict[tuple[str, str], LinkMoments]:
    """Per-link moment sums for statistics-carrying demands.

    Every topology link gets an entry (zeros when nothing crosses it).
    A demand split over several paths contributes each link its split
    fraction times the demand's moments: thinning a Poisson population
    by ``f`` scales ``lambda`` — and hence both the mean
    ``lambda E[S]`` and the variance
    ``shape * lambda E[S^2/D]`` — by ``f``.
    """
    routing = routing if routing is not None else ShortestPathRouting()
    moments = {
        link: LinkMoments(
            link=link, capacity_bps=topology.capacity_bps(*link)
        )
        for link in topology.links
    }
    for demand in demands:
        statistics = getattr(demand, "statistics", None)
        if statistics is None:
            raise ParameterError(
                "analytic superposition needs demands carrying "
                "FlowStatistics (got no 'statistics' attribute on "
                f"{demand!r}); use the NetworkEngine for "
                "flow-population demands"
            )
        shape = float(getattr(demand, "shape_factor", 1.0))
        routed = routing.route(topology, demand.source, demand.sink)
        fractions: dict[tuple[str, str], float] = {}
        for path, weight in zip(routed.paths, routed.weights):
            if weight <= 0.0:
                continue
            for link in zip(path[:-1], path[1:]):
                fractions[link] = fractions.get(link, 0.0) + float(weight)
        for link, fraction in fractions.items():
            entry = moments[link]
            entry.mean_rate += fraction * statistics.mean_rate
            entry.variance += fraction * statistics.variance(shape)
            entry.arrival_rate += fraction * statistics.arrival_rate
            entry.n_demands += 1
    return moments
