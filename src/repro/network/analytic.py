"""Analytic per-link superposition: edge statistics + routing = link moments.

The paper's section VI-A / VII-A argument: flow statistics measured at
the network *edges* plus routing information give the model on every
internal link without monitoring it — means and variances of independent
Poisson shot-noise classes add, and a routed split of a Poisson flow
population is again Poisson with the arrival rate thinned by the split
fraction (so ECMP fractions scale ``lambda``, keeping the per-flow
laws).

This module is the one home of that moment-sum logic; the historic
:class:`repro.applications.backbone.BackboneNetwork` front door delegates
here (see MIGRATION.md).

Demands are duck-typed: anything with ``source``, ``sink``,
``statistics`` (a :class:`~repro.core.parameters.FlowStatistics`) and
``shape_factor`` works — in particular
:class:`repro.applications.backbone.Demand`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ParameterError
from .routing import RoutingStrategy, ShortestPathRouting
from .topology import Topology

__all__ = ["LinkMoments", "superpose_link_moments"]


@dataclass
class LinkMoments:
    """Summed first/second moments of the demands crossing one link."""

    link: tuple[str, str]
    capacity_bps: float
    mean_rate: float = 0.0  # bytes/s
    variance: float = 0.0  # (bytes/s)^2
    arrival_rate: float = 0.0  # flows/s, thinned by split fractions
    n_demands: int = 0


def superpose_link_moments(
    topology: Topology,
    demands,
    *,
    routing: RoutingStrategy | None = None,
) -> dict[tuple[str, str], LinkMoments]:
    """Per-link moment sums for statistics-carrying demands.

    Every topology link gets an entry (zeros when nothing crosses it).
    A demand split over several paths contributes each link its split
    fraction times the demand's moments: thinning a Poisson population
    by ``f`` scales ``lambda`` — and hence both the mean
    ``lambda E[S]`` and the variance
    ``shape * lambda E[S^2/D]`` — by ``f``.
    """
    routing = routing if routing is not None else ShortestPathRouting()
    moments = {
        link: LinkMoments(
            link=link, capacity_bps=topology.capacity_bps(*link)
        )
        for link in topology.links
    }
    for demand in demands:
        statistics = getattr(demand, "statistics", None)
        if statistics is None:
            raise ParameterError(
                "analytic superposition needs demands carrying "
                "FlowStatistics (got no 'statistics' attribute on "
                f"{demand!r}); use the NetworkEngine for "
                "flow-population demands"
            )
        shape = float(getattr(demand, "shape_factor", 1.0))
        routed = routing.route(topology, demand.source, demand.sink)
        fractions: dict[tuple[str, str], float] = {}
        for path, weight in zip(routed.paths, routed.weights):
            if weight <= 0.0:
                continue
            for link in zip(path[:-1], path[1:]):
                fractions[link] = fractions.get(link, 0.0) + float(weight)
        for link, fraction in fractions.items():
            entry = moments[link]
            entry.mean_rate += fraction * statistics.mean_rate
            entry.variance += fraction * statistics.variance(shape)
            entry.arrival_rate += fraction * statistics.arrival_rate
            entry.n_demands += 1
    return moments
