"""Demand routing strategies and deterministic per-flow path hashing.

A strategy maps one origin-destination pair to a :class:`RoutedPaths`: a
set of loop-free paths with split weights.  Flows are pinned to paths the
way a router's ECMP hash does it: a deterministic 64-bit mix of the flow
five-tuple (plus a seed-derived salt) yields a uniform in ``[0, 1)``,
and the cumulative split weights partition that interval — so a flow's
packets all take the same path, the assignment is a pure function of
``(five-tuple, salt)``, and two runs with the same seed balance flows
identically no matter how the packets are chunked or which worker
evaluates them.

Strategies:

* :class:`ShortestPathRouting` — single IGP shortest path (``weight``
  attribute), the classic OSPF/IS-IS single-path case;
* :class:`ECMPRouting` — all equal-cost shortest paths with equal
  splits, flows pinned by hash (the load-balancing testbed setup);
* :class:`StaticRouting` — explicit per-OD paths with arbitrary split
  weights (traffic-engineered tunnels).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..exceptions import ParameterError, TopologyError
from .topology import Topology

__all__ = [
    "RoutedPaths",
    "RoutingStrategy",
    "ShortestPathRouting",
    "ECMPRouting",
    "StaticRouting",
    "resolve_routing",
    "ecmp_salt",
    "flow_uniforms",
    "path_indices",
]


@dataclass(frozen=True)
class RoutedPaths:
    """The paths (node sequences) and split weights of one routed demand."""

    paths: tuple[tuple[str, ...], ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.paths:
            raise ParameterError("a routed demand needs at least one path")
        if len(self.paths) != len(self.weights):
            raise ParameterError("paths and weights must pair up")
        total = float(sum(self.weights))
        if total <= 0.0 or any(w < 0.0 for w in self.weights):
            raise ParameterError("split weights must be >= 0 with a positive sum")
        object.__setattr__(
            self,
            "paths",
            tuple(tuple(str(n) for n in path) for path in self.paths),
        )
        object.__setattr__(
            self, "weights", tuple(float(w) / total for w in self.weights)
        )
        for path in self.paths:
            if len(path) < 2:
                raise ParameterError(f"path {path!r} has no links")
            if len(set(path)) != len(path):
                raise ParameterError(f"path {path!r} has a loop")

    @property
    def n_paths(self) -> int:
        return len(self.paths)

    def links(self) -> set[tuple[str, str]]:
        """All directed links any of the paths crosses."""
        out: set[tuple[str, str]] = set()
        for path in self.paths:
            out.update(zip(path[:-1], path[1:]))
        return out

    def boundaries(self) -> np.ndarray:
        """Interior cumulative-weight cut points (``n_paths - 1`` values).

        A flow with hash uniform ``u`` takes path
        ``searchsorted(boundaries, u, side="right")``.
        """
        return np.cumsum(np.asarray(self.weights, dtype=np.float64))[:-1]

    def intervals_for_link(
        self, link: tuple[str, str]
    ) -> tuple[tuple[float, float], ...]:
        """Hash-uniform intervals ``[lo, hi)`` whose flows cross ``link``."""
        edges = np.concatenate(
            ([0.0], np.cumsum(np.asarray(self.weights, dtype=np.float64)))
        )
        edges[-1] = 1.0  # guard rounding: the last bucket must close [0, 1)
        out = []
        for j, path in enumerate(self.paths):
            if link in set(zip(path[:-1], path[1:])) and self.weights[j] > 0.0:
                out.append((float(edges[j]), float(edges[j + 1])))
        return tuple(out)


class RoutingStrategy(ABC):
    """Maps (topology, source, sink) to a :class:`RoutedPaths`."""

    #: Spec-facing identifier (``network.routing`` in scenario specs).
    name: str = ""

    @abstractmethod
    def route(
        self, topology: Topology, source: str, sink: str
    ) -> RoutedPaths: ...


def _no_route(source: str, sink: str) -> TopologyError:
    return TopologyError(f"no route from {source!r} to {sink!r}")


class ShortestPathRouting(RoutingStrategy):
    """Single IGP shortest path by the ``weight`` link attribute."""

    name = "shortest_path"

    def route(self, topology: Topology, source: str, sink: str) -> RoutedPaths:
        try:
            path = nx.shortest_path(
                topology.graph, str(source), str(sink), weight="weight"
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise _no_route(source, sink) from exc
        return RoutedPaths(paths=(tuple(path),), weights=(1.0,))


class ECMPRouting(RoutingStrategy):
    """All equal-cost shortest paths, flows split equally by hash.

    Paths are sorted lexicographically so the path order — and therefore
    the hash-bucket assignment — is deterministic regardless of graph
    iteration order.
    """

    name = "ecmp"

    def route(self, topology: Topology, source: str, sink: str) -> RoutedPaths:
        try:
            paths = sorted(
                tuple(p)
                for p in nx.all_shortest_paths(
                    topology.graph, str(source), str(sink), weight="weight"
                )
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise _no_route(source, sink) from exc
        return RoutedPaths(
            paths=tuple(paths), weights=(1.0,) * len(paths)
        )


class StaticRouting(RoutingStrategy):
    """Explicit weighted splits per OD pair (traffic-engineered routes).

    ``routes`` maps ``(source, sink)`` to a :class:`RoutedPaths` (or to a
    ``(paths, weights)`` pair).  Every path is validated against the
    topology at routing time, so a stale tunnel fails loudly.
    """

    name = "static"

    def __init__(self, routes: dict) -> None:
        self.routes: dict[tuple[str, str], RoutedPaths] = {}
        for od, value in routes.items():
            source, sink = (str(od[0]), str(od[1]))
            if not isinstance(value, RoutedPaths):
                paths, weights = value
                value = RoutedPaths(
                    paths=tuple(tuple(p) for p in paths),
                    weights=tuple(weights),
                )
            self.routes[(source, sink)] = value

    def route(self, topology: Topology, source: str, sink: str) -> RoutedPaths:
        od = (str(source), str(sink))
        if od not in self.routes:
            raise TopologyError(
                f"static routing has no entry for {source!r} -> {sink!r}"
            )
        routed = self.routes[od]
        for path in routed.paths:
            if path[0] != od[0] or path[-1] != od[1]:
                raise TopologyError(
                    f"static path {path!r} does not join {source!r} to {sink!r}"
                )
            for a, b in zip(path[:-1], path[1:]):
                if not topology.has_link(a, b):
                    raise TopologyError(
                        f"static path {path!r} uses missing link {a!r}->{b!r}"
                    )
        return routed


#: Spec-facing routing names (static routes carry data, so they are
#: constructed in code, not named in specs).
_NAMED_STRATEGIES = {
    ShortestPathRouting.name: ShortestPathRouting,
    ECMPRouting.name: ECMPRouting,
}


def resolve_routing(routing) -> RoutingStrategy:
    """A :class:`RoutingStrategy` from an instance or a spec name."""
    if isinstance(routing, RoutingStrategy):
        return routing
    name = str(routing)
    if name not in _NAMED_STRATEGIES:
        choices = ", ".join(sorted(_NAMED_STRATEGIES))
        raise ParameterError(
            f"unknown routing strategy {routing!r}; named strategies are "
            f"{choices} (use a StaticRouting instance for explicit paths)"
        )
    return _NAMED_STRATEGIES[name]()


# -- per-flow hashing ------------------------------------------------------

_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_MIX2 = np.uint64(0x94D049BB133111EB)


def ecmp_salt(seed) -> np.uint64:
    """The network-wide hash salt derived from the simulation seed.

    One salt per network (like a router vendor's hash seed): the flow →
    path assignment is a pure function of ``(five-tuple, salt)``, pinned
    by tests for a fixed seed.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    # a dedicated child so the salt never collides with synthesis streams
    child = np.random.SeedSequence(
        entropy=root.entropy, spawn_key=(0xEC4B,)
    )
    return np.uint64(child.generate_state(1, np.uint64)[0])


def flow_uniforms(packets: np.ndarray, salt: np.uint64) -> np.ndarray:
    """Deterministic per-packet uniforms from the flow five-tuple.

    All packets of a flow share the five-tuple, hence the uniform, hence
    the path — the ECMP flow-pinning property.  SplitMix64 finalizer over
    the two packed key words, salted.
    """
    from ..flows.keys import pack_packet_keys

    hi, lo = pack_packet_keys(packets, "five_tuple")
    with np.errstate(over="ignore"):
        x = hi + np.uint64(salt)
        x ^= x >> np.uint64(30)
        x *= _SM64_MIX1
        x += lo * _SM64_GAMMA
        x ^= x >> np.uint64(27)
        x *= _SM64_MIX2
        x ^= x >> np.uint64(31)
    return (x >> np.uint64(11)).astype(np.float64) * 2.0**-53


def path_indices(uniforms: np.ndarray, routed: RoutedPaths) -> np.ndarray:
    """Path index per packet given hash uniforms and split weights."""
    if routed.n_paths == 1:
        return np.zeros(np.asarray(uniforms).shape, dtype=np.int64)
    return np.searchsorted(
        routed.boundaries(), uniforms, side="right"
    ).astype(np.int64)
