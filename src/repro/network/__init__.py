"""Topology-wide flow simulation — the backbone as one object.

The single-link engines (generation, measurement, synthesis) reproduce
the paper on one monitored link; this package drives **every** link of a
backbone at once:

* :class:`Topology` — capacity/weight-annotated router graph, with
  presets (:func:`abilene`, :func:`parallel_paths`, :func:`line`);
* :class:`NetworkDemand` / :class:`DemandMatrix` — origin-destination
  flow populations (each a :class:`~repro.netsim.LinkWorkload`);
* routing strategies — :class:`ShortestPathRouting`,
  :class:`ECMPRouting` (deterministic per-flow hashing),
  :class:`StaticRouting` (weighted splits);
* events — :class:`LinkOutage` (mid-trace failure with reroute),
  :class:`FlashCrowd` (demand intensity scaling);
* :class:`NetworkEngine` — shards links over the generation-engine
  worker pool and streams each link's superposed packet population
  through the synthesis + measurement engines in bounded memory,
  producing a per-link model, utilisation, provisioning verdict and
  (optionally) anomaly events — serialized as a :class:`NetworkReport`;
* :func:`superpose_link_moments` — the analytic moment-sum path
  (sections VI-A/VII-A), which
  :class:`repro.applications.backbone.BackboneNetwork` now delegates to.

Quickstart::

    from repro.network import DemandMatrix, NetworkDemand, NetworkEngine, abilene
    from repro.netsim import table_i_workload

    topo = abilene()
    demands = DemandMatrix(
        NetworkDemand(a, b, table_i_workload(row, duration=60.0))
        for (a, b), row in [
            (("seattle", "newyork"), 4), (("losangeles", "atlanta"), 2),
        ]
    )
    simulation = NetworkEngine(workers=4).simulate(topo, demands, seed=0)
    print(simulation.report().to_dict())
"""

from .analytic import (
    AnalyticDemand,
    LinkMoments,
    superpose_link_moments,
    workload_flow_statistics,
)
from .demands import DemandMatrix, NetworkDemand, demand_address_space
from .engine import (
    LinkSimulation,
    NetworkEngine,
    NetworkLinkReport,
    NetworkReport,
    NetworkSimulation,
)
from .events import FlashCrowd, LinkOutage, RouteSegment, routing_timeline
from .routing import (
    ECMPRouting,
    RoutedPaths,
    RoutingStrategy,
    ShortestPathRouting,
    StaticRouting,
    ecmp_salt,
    flow_uniforms,
    path_indices,
    resolve_routing,
)
from .topology import Topology, abilene, line, parallel_paths

__all__ = [
    # topology
    "Topology",
    "abilene",
    "parallel_paths",
    "line",
    # demands
    "NetworkDemand",
    "DemandMatrix",
    "demand_address_space",
    # routing
    "RoutedPaths",
    "RoutingStrategy",
    "ShortestPathRouting",
    "ECMPRouting",
    "StaticRouting",
    "resolve_routing",
    "ecmp_salt",
    "flow_uniforms",
    "path_indices",
    # events
    "LinkOutage",
    "FlashCrowd",
    "RouteSegment",
    "routing_timeline",
    # engine
    "NetworkEngine",
    "NetworkSimulation",
    "LinkSimulation",
    "NetworkReport",
    "NetworkLinkReport",
    # analytic
    "AnalyticDemand",
    "LinkMoments",
    "superpose_link_moments",
    "workload_flow_statistics",
]
