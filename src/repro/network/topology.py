"""Capacity-annotated backbone topologies.

A :class:`Topology` is the graph the network engine simulates: routers
(nodes) connected by directed links carrying a ``capacity_bps`` and an
IGP ``weight``.  Links are bidirectional by default — a physical fibre
is two directed links with shared fate (an outage takes out both
directions).

Presets cover the shapes the tests, registry scenarios and benchmarks
use:

* :func:`abilene` — the classic 11-PoP Abilene research backbone (14
  bidirectional fibres, 28 directed links), the standard topology of the
  traffic-matrix literature;
* :func:`parallel_paths` — ``k`` equal-cost two-hop paths between one
  ingress/egress pair, the minimal ECMP load-balancing testbed;
* :func:`line` — a chain of routers, the minimal multi-hop case (and,
  with two nodes, the single-link degeneracy the engine must reproduce
  bit for bit).
"""

from __future__ import annotations

import networkx as nx

from .._util import check_positive
from ..exceptions import ParameterError, TopologyError

__all__ = ["Topology", "abilene", "parallel_paths", "line"]


class Topology:
    """A backbone graph: routers plus capacity/weight-annotated links."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        #: Physical fibres: maps each directed link to its reverse twin
        #: when the link was declared bidirectional (shared-fate outages).
        self._twins: dict[tuple[str, str], tuple[str, str]] = {}

    def __repr__(self) -> str:
        return (
            f"Topology(routers={self.graph.number_of_nodes()}, "
            f"links={self.graph.number_of_edges()})"
        )

    # -- construction ------------------------------------------------------

    def add_router(self, name: str) -> None:
        """Add a node (idempotent)."""
        self.graph.add_node(str(name))

    def add_link(
        self,
        a: str,
        b: str,
        *,
        capacity_bps: float,
        weight: float = 1.0,
        bidirectional: bool = True,
    ) -> None:
        """Add a link with capacity in bits/second and an IGP weight."""
        capacity_bps = check_positive("capacity_bps", capacity_bps)
        weight = check_positive("weight", weight)
        a, b = str(a), str(b)
        if a == b:
            raise TopologyError(f"link endpoints must differ, got {a!r}")
        self.graph.add_edge(a, b, capacity_bps=capacity_bps, weight=weight)
        if bidirectional:
            self.graph.add_edge(b, a, capacity_bps=capacity_bps, weight=weight)
            self._twins[(a, b)] = (b, a)
            self._twins[(b, a)] = (a, b)

    @classmethod
    def from_graph(cls, graph: nx.DiGraph) -> "Topology":
        """Wrap an existing annotated DiGraph (no copy; shared fate only
        where both directions exist)."""
        topo = cls.__new__(cls)
        topo.graph = graph
        topo._twins = {
            (a, b): (b, a) for a, b in graph.edges() if graph.has_edge(b, a)
        }
        return topo

    # -- queries -----------------------------------------------------------

    @property
    def routers(self) -> list[str]:
        return list(self.graph.nodes())

    @property
    def links(self) -> list[tuple[str, str]]:
        """All directed links, in insertion order."""
        return list(self.graph.edges())

    @property
    def n_links(self) -> int:
        return self.graph.number_of_edges()

    def has_router(self, name: str) -> bool:
        return str(name) in self.graph

    def has_link(self, a: str, b: str) -> bool:
        return self.graph.has_edge(str(a), str(b))

    def capacity_bps(self, a: str, b: str) -> float:
        self._require_link(a, b)
        return float(self.graph.edges[(str(a), str(b))]["capacity_bps"])

    def weight(self, a: str, b: str) -> float:
        self._require_link(a, b)
        return float(self.graph.edges[(str(a), str(b))]["weight"])

    def fate_group(self, a: str, b: str) -> tuple[tuple[str, str], ...]:
        """The directed links sharing the physical fibre of ``(a, b)``.

        An outage of a bidirectional fibre takes out both directions; a
        unidirectional link fails alone.
        """
        self._require_link(a, b)
        link = (str(a), str(b))
        twin = self._twins.get(link)
        return (link,) if twin is None else (link, twin)

    def without_links(self, failed) -> "Topology":
        """A copy of this topology with the given directed links removed.

        ``failed`` is an iterable of ``(a, b)`` pairs; each is expanded
        to its shared-fate group, so failing one direction of a
        bidirectional fibre fails both.
        """
        removed: set[tuple[str, str]] = set()
        for a, b in failed:
            removed.update(self.fate_group(a, b))
        reduced = Topology()
        reduced.graph.add_nodes_from(self.graph.nodes())
        for a, b in self.graph.edges():
            if (a, b) in removed:
                continue
            data = self.graph.edges[(a, b)]
            reduced.graph.add_edge(
                a, b,
                capacity_bps=data["capacity_bps"],
                weight=data["weight"],
            )
        reduced._twins = {
            link: twin
            for link, twin in self._twins.items()
            if link not in removed and twin not in removed
        }
        return reduced

    def _require_link(self, a: str, b: str) -> None:
        if not self.graph.has_edge(str(a), str(b)):
            raise TopologyError(f"no link {a!r} -> {b!r} in the topology")

    def require_router(self, name: str) -> None:
        if str(name) not in self.graph:
            raise TopologyError(f"unknown router {name!r}")

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe description (inverted exactly by :meth:`from_dict`).

        Bidirectional fibres are emitted once; unidirectional links carry
        ``"bidirectional": false``.
        """
        links = []
        seen: set[tuple[str, str]] = set()
        for a, b in self.graph.edges():
            if (a, b) in seen:
                continue
            data = self.graph.edges[(a, b)]
            twin = self._twins.get((a, b))
            entry = {
                "a": a,
                "b": b,
                "capacity_bps": float(data["capacity_bps"]),
                "weight": float(data["weight"]),
            }
            if twin is None:
                entry["bidirectional"] = False
            else:
                seen.add(twin)
            links.append(entry)
            seen.add((a, b))
        return {"routers": list(self.graph.nodes()), "links": links}

    @classmethod
    def from_dict(cls, data: dict) -> "Topology":
        topo = cls()
        for name in data.get("routers", ()):
            topo.add_router(name)
        for entry in data.get("links", ()):
            try:
                topo.add_link(
                    entry["a"],
                    entry["b"],
                    capacity_bps=entry["capacity_bps"],
                    weight=entry.get("weight", 1.0),
                    bidirectional=entry.get("bidirectional", True),
                )
            except KeyError as exc:
                raise ParameterError(
                    f"topology link entry {entry!r} is missing key {exc}"
                ) from None
        if not topo.graph.number_of_edges():
            raise ParameterError("topology must declare at least one link")
        return topo


# -- presets ---------------------------------------------------------------

#: The 14 Abilene fibres (11 PoPs).  All OC-48-class in the real network;
#: capacities here are parameters so scaled scenarios stay snappy.
_ABILENE_FIBRES: tuple[tuple[str, str], ...] = (
    ("seattle", "sunnyvale"),
    ("seattle", "denver"),
    ("sunnyvale", "losangeles"),
    ("sunnyvale", "denver"),
    ("losangeles", "houston"),
    ("denver", "kansascity"),
    ("kansascity", "houston"),
    ("kansascity", "indianapolis"),
    ("houston", "atlanta"),
    ("atlanta", "indianapolis"),
    ("atlanta", "washington"),
    ("indianapolis", "chicago"),
    ("chicago", "newyork"),
    ("washington", "newyork"),
)


def abilene(*, capacity_bps: float = 622e6 / 32.0) -> Topology:
    """The 11-PoP Abilene backbone (28 directed links, unit weights)."""
    topo = Topology()
    for a, b in _ABILENE_FIBRES:
        topo.add_link(a, b, capacity_bps=capacity_bps)
    return topo


def parallel_paths(
    k: int = 2, *, capacity_bps: float = 622e6 / 32.0
) -> Topology:
    """``k`` equal-cost two-hop paths ``src -> mid<i> -> dst`` (ECMP bed)."""
    k = int(k)
    if k < 1:
        raise ParameterError(f"parallel_paths needs k >= 1, got {k}")
    topo = Topology()
    for i in range(k):
        topo.add_link("src", f"mid{i}", capacity_bps=capacity_bps)
        topo.add_link(f"mid{i}", "dst", capacity_bps=capacity_bps)
    return topo


def line(n: int = 2, *, capacity_bps: float = 622e6 / 32.0) -> Topology:
    """A chain ``r0 - r1 - ... - r<n-1>`` (``n=2`` is the one-link case)."""
    n = int(n)
    if n < 2:
        raise ParameterError(f"line needs n >= 2 routers, got {n}")
    topo = Topology()
    for i in range(n - 1):
        topo.add_link(f"r{i}", f"r{i + 1}", capacity_bps=capacity_bps)
    return topo
