"""Internal helpers shared across the repro package.

Small, dependency-free utilities: argument validation, RNG normalisation
and cached Gauss-Legendre quadrature nodes.  Nothing in this module is part
of the public API.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

import numpy as np

from .exceptions import ParameterError

__all__ = [
    "as_rng",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_in_range",
    "as_1d_float_array",
    "leggauss_nodes",
    "broadcast_flows",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy Generator from a seed, a Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, strictly positive scalar."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ParameterError(f"{name} must be finite and > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite, non-negative scalar."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ParameterError(f"{name} must be finite and >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies strictly inside (0, 1)."""
    value = float(value)
    if not 0.0 < value < 1.0:
        raise ParameterError(f"{name} must lie in (0, 1), got {value!r}")
    return value


def check_in_range(
    name: str, value: float, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Validate that ``value`` lies in [low, high] (or (low, high))."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ParameterError(
            f"{name} must lie in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return value


def as_1d_float_array(name: str, values: Iterable[float]) -> np.ndarray:
    """Convert to a 1-D float64 array, rejecting empty or non-finite input."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    if arr.size == 0:
        raise ParameterError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ParameterError(f"{name} must contain only finite values")
    return arr


@lru_cache(maxsize=16)
def leggauss_nodes(order: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached Gauss-Legendre nodes/weights on [0, 1].

    Returns ``(x, w)`` such that ``sum(w * f(x)) ~= integral_0^1 f``.
    """
    if order < 1:
        raise ParameterError(f"quadrature order must be >= 1, got {order}")
    nodes, weights = np.polynomial.legendre.leggauss(order)
    return 0.5 * (nodes + 1.0), 0.5 * weights


def broadcast_flows(
    sizes: Iterable[float], durations: Iterable[float]
) -> tuple[np.ndarray, np.ndarray]:
    """Validate and broadcast per-flow size/duration arrays.

    Sizes must be > 0 (bytes or bits), durations must be > 0 (seconds):
    the paper discards single-packet flows precisely because their duration
    would be zero (section III).
    """
    s = as_1d_float_array("sizes", sizes)
    d = as_1d_float_array("durations", durations)
    if s.shape != d.shape:
        raise ParameterError(
            f"sizes and durations must have the same length, "
            f"got {s.size} and {d.size}"
        )
    if np.any(s <= 0):
        raise ParameterError("flow sizes must be strictly positive")
    if np.any(d <= 0):
        raise ParameterError(
            "flow durations must be strictly positive "
            "(single-packet flows must be discarded upstream)"
        )
    return s, d
