"""Command-line interface: ``python -m repro <command>``.

Operator-facing commands wrapping the library.  The scenario pipeline is
the canonical path:

* ``run``            — run a scenario end-to-end (synthesize → measure →
  fit → generate → validate) from a JSON spec file or a registry name,
  optionally writing the validation report as JSON;
* ``network``        — simulate a whole backbone (topology + demand
  matrix + routing + events) and report per-link models, utilisation,
  provisioning verdicts and anomalies;
* ``sweep``          — capacity-planning sweep over a base network
  scenario: growth factors x auto-enumerated fibre failures, closed-form
  pre-filter, marginal cells simulated, one ranked report;
* ``list-scenarios`` — show the built-in scenario registry, grouped by
  family (single-link vs network);
* ``synthesize``     — generate a scaled backbone capture to a trace file;
* ``measure``        — run the section VI measurement pipeline on an
  existing trace file (``--format`` accepts operator telemetry too:
  NetFlow v5, IPFIX and pcap archives stream through the same engine);
* ``import``         — fit the model to real operator telemetry: stream
  a NetFlow v5 / IPFIX / pcap archive through the measurement pipeline;
* ``calibrate``      — fit the flow-size families to a telemetry archive
  (or a scenario) out-of-core, select the best model, and emit a
  runnable fitted scenario spec, optionally closed-loop validated;
* ``export``         — re-export a capture (or any importable archive)
  as NetFlow v5, IPFIX or pcap for downstream tooling;
* ``generate``       — produce model-driven traffic (section VII-C)
  calibrated on an input trace, via the chunked generation engine;
* ``scenario``       — synthesize all seven Table I links in parallel.

Examples::

    python -m repro run medium --report report.json
    python -m repro run my-scenario.json
    python -m repro run real-trace-netflow5 --ingest-path router.nf5
    python -m repro network abilene-table-i --workers 4 --report net.json
    python -m repro sweep abilene-single-failure-2x --report sweep.json
    python -m repro list-scenarios
    python -m repro synthesize /tmp/link.rptr --preset medium --seed 7
    python -m repro measure /tmp/link.rptr --flow-kind five_tuple
    python -m repro measure /tmp/link.rptr --chunk 500000 --workers 4
    python -m repro measure router.nf5 --format netflow5
    python -m repro import router.nf5 --link-capacity 622e6
    python -m repro calibrate router.nf5 -o fitted-spec.json --validate
    python -m repro export /tmp/link.rptr /tmp/link.nf5 --format netflow5
    python -m repro generate /tmp/link.rptr /tmp/synthetic.rptr --chunk 30
    python -m repro scenario /tmp/links --workers 4 --seed 3
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

import numpy as np

from .core import PoissonShotNoiseModel
from .exceptions import (
    CheckpointError,
    ParameterError,
    ReproError,
    TraceFormatError,
)
from .execution import reset_run_health, run_health
from .generation import GenerationEngine, generate_packet_trace
from .measurement import MeasurementEngine
from .netsim import synthesize_scenario, table_i_workloads
from .pipeline import (
    CALIBRATION_FAMILIES,
    CalibrationSpec,
    EstimationSpec,
    ExecutionSpec,
    FlowAccountingSpec,
    INGEST_FORMATS,
    IngestSpec,
    MEASUREMENT_STAGES,
    MeasurementSpec,
    SELECTION_CRITERIA,
    ScenarioSpec,
    Synthesize,
    ValidationSpec,
    WorkloadSpec,
    apply_quick_mode,
    default_registry,
    run_scenario,
)
from .pipeline.stages import PipelineContext
from .trace import read_trace, write_trace


#: CLI exit codes: 2 = bad spec/parameters, 3 = runtime/engine failure,
#: 130 = interrupted (128 + SIGINT), with any checkpoints kept on disk.
EXIT_USAGE = 2
EXIT_RUNTIME = 3
EXIT_INTERRUPTED = 130


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return EXIT_USAGE


def _runtime_fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return EXIT_RUNTIME


#: Errors the operator can fix by changing arguments or inputs — exit 2.
#: Everything else a ReproError signals mid-run (a lost worker pool, a
#: failed fit, a routing dead end) is an engine failure — exit 3.
_USAGE_ERRORS = (ParameterError, TraceFormatError, CheckpointError)


def _fail_for(exc: ReproError, prefix: str = "") -> int:
    if isinstance(exc, _USAGE_ERRORS):
        return _fail(f"{prefix}{exc}")
    return _runtime_fail(f"{prefix}{exc}")


def _execution_parent() -> argparse.ArgumentParser:
    """The shared ``--chunk/--workers/--backend/--execution`` flags.

    One parent parser for every engine-backed command (``run``,
    ``network``, ``sweep``, ``synthesize``, ``measure``) so the flags
    are spelled, defaulted and documented exactly once.  ``generate``
    keeps its own ``--chunk`` — there it is a float time window in
    seconds, not a packet count.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group(
        "execution",
        "engine knobs: chunk bounds peak memory, workers bound "
        "parallelism — neither ever changes any result",
    )
    group.add_argument(
        "--chunk", type=int, default=None,
        help="packets per streamed engine block (0 forces the in-memory "
        "path; default: keep the spec's 'execution' section)",
    )
    group.add_argument(
        "--workers", type=int, default=None,
        help="engine worker threads (default: keep the spec's "
        "'execution' section)",
    )
    group.add_argument(
        "--backend", choices=("serial", "thread", "process"), default=None,
        help="engine pool flavour: 'thread' (default), 'process' "
        "(shared-memory worker processes; best for multi-core runs) or "
        "'serial' (in-line, for debugging)",
    )
    group.add_argument(
        "--execution", choices=("cli-wins", "spec-wins"),
        default="cli-wins",
        help="precedence between these flags and a spec file's "
        "'execution' section: 'cli-wins' (default) lets --chunk, "
        "--workers and --backend override the spec where explicitly "
        "given, flags left unset keep the spec's values; 'spec-wins' "
        "runs the spec exactly as written and ignores "
        "--chunk/--workers/--backend (commands without a spec file, "
        "such as measure/synthesize, always use the flags)",
    )
    return parent


def _check_execution_flags(args: argparse.Namespace) -> str | None:
    """Validate the shared flags; returns the error message, if any."""
    chunk = getattr(args, "chunk", None)
    workers = getattr(args, "workers", None)
    if chunk is not None and chunk < 0:
        return f"--chunk must be >= 0 (0 = in-memory path), got {chunk}"
    if workers is not None and workers < 1:
        return f"--workers must be >= 1, got {workers}"
    return None


def _cli_execution(args: argparse.Namespace) -> ExecutionSpec:
    """The flags alone — for commands with no spec file to defer to."""
    return ExecutionSpec(
        chunk=args.chunk or None,
        workers=1 if args.workers is None else args.workers,
        backend="thread" if args.backend is None else args.backend,
    )


def _resolve_execution(
    args: argparse.Namespace, execution: ExecutionSpec
) -> ExecutionSpec:
    """Combine a spec section's ``execution`` values with the CLI flags.

    ``--execution cli-wins`` (the default): a flag explicitly given
    overrides the spec's value, a flag left unset keeps it.
    ``--execution spec-wins``: the spec runs exactly as written.
    """
    if args.execution == "spec-wins":
        return execution
    return ExecutionSpec(
        chunk=(
            execution.chunk if args.chunk is None else (args.chunk or None)
        ),
        workers=(
            execution.workers if args.workers is None else args.workers
        ),
        backend=(
            execution.backend if args.backend is None else args.backend
        ),
        # there is no retry flag: the spec's policy always carries
        # through (dropping it here would silently disarm the watchdog)
        retry=execution.retry,
    )


def _cmd_synthesize(args: argparse.Namespace) -> int:
    error = _check_execution_flags(args)
    if error is not None:
        return _fail(error)
    execution = _cli_execution(args)
    workload_kwargs = dict(preset=args.preset, duration=args.duration)
    if args.scale is not None:
        workload_kwargs["scale"] = args.scale
    try:
        workload_spec = WorkloadSpec(**workload_kwargs)
        spec = ScenarioSpec(
            name=f"synthesize-{args.preset}",
            seed=args.seed,
            workload=workload_spec,
            generation=None,
        )
    except ParameterError as exc:
        return _fail(str(exc))
    if execution.uses_engine:
        return _cmd_synthesize_streaming(args, workload_spec, execution)
    context = PipelineContext(spec=spec)
    trace = Synthesize().run(context).trace
    write_trace(trace, args.output)
    print(f"wrote {trace} -> {args.output}")
    return 0


def _cmd_synthesize_streaming(
    args, workload_spec: WorkloadSpec, execution: ExecutionSpec
) -> int:
    """Out-of-core ``synthesize --chunk N``: cells stream to the writer.

    The capture never exists in memory — synthesis cells are merged into
    ``--chunk``-packet blocks and appended to the trace file as they
    complete, so a full-rate (``--scale 1``) OC-12 preset writes a
    10^7-packet capture in bounded memory.  The file contents are
    bit-for-bit what the in-memory path writes, for any chunk/workers.
    """
    workload = workload_spec.build()
    stream = workload.synthesize_chunks(
        seed=args.seed,
        chunk=execution.chunk or 1_000_000,
        workers=execution.workers,
        backend=execution.backend,
    )
    try:
        stream.write_trace(args.output)
    except ParameterError as exc:
        return _fail(str(exc))
    utilization = (
        8.0 * stream.total_bytes / stream.duration / stream.link_capacity
    )
    line = _trace_line(
        workload.name, stream.packet_count, stream.duration, utilization
    )
    print(f"wrote {line} -> {args.output}")
    return 0


def _measure_spec(
    args: argparse.Namespace,
    *,
    name: str,
    workers: int = 1,
    backend: str = "thread",
) -> ScenarioSpec:
    """Scenario spec equivalent of the measure-style CLI flags.

    ``measure --chunk N`` does not pass through here: the streaming path
    (:func:`_cmd_measure_streaming`) bypasses the pipeline so the trace
    file is never materialised.
    """
    return ScenarioSpec(
        name=name,
        workload=None,
        flows=FlowAccountingSpec(
            kind=args.flow_kind,
            timeout=args.timeout,
            prefix_length=args.prefix_length,
        ),
        measurement=MeasurementSpec(
            execution=ExecutionSpec(workers=workers, backend=backend)
        ),
        estimation=EstimationSpec(delta=args.delta),
        validation=ValidationSpec(epsilon=getattr(args, "epsilon", 0.01)),
        generation=None,
    )


def _trace_line(name, packet_count, duration, utilization) -> str:
    """The ``trace :`` report line, shared by both measure paths.

    One format string for the in-memory and streaming branches keeps the
    CLI outputs byte-identical by construction (pinned by the CLI tests)
    without tying the report to ``PacketTrace.__repr__``.
    """
    return (
        f"PacketTrace(name={name!r}, packets={packet_count}, "
        f"duration={duration:g}s, utilization={utilization:.1%})"
    )


def _print_measurement(
    args, trace_line, flows, stats, model, fit, series, fitted_cov,
    capacity_bps,
) -> None:
    """Shared section VI report printer (in-memory and streaming paths)."""
    print(f"trace      : {trace_line}")
    print(f"flows      : {len(flows)} ({args.flow_kind}, "
          f"timeout {args.timeout:g} s, {flows.discarded_packets} pkts "
          "discarded as single-packet flows)")
    print(f"parameters : lambda = {stats.arrival_rate:.2f}/s   "
          f"E[S] = {stats.mean_size:.0f} B   "
          f"E[S^2/D] = {stats.mean_square_size_over_duration:.4g} B^2/s")
    print(f"mean rate  : model {model.mean * 8 / 1e6:.3f} Mbps   "
          f"measured {series.mean * 8 / 1e6:.3f} Mbps")
    print(f"CoV        : measured {series.coefficient_of_variation:.2%}   "
          f"model(b={fit.power:.2f}) {fitted_cov:.2%}")
    print(f"shot fit   : b = {fit.power:.2f}  (kappa = {fit.kappa:.2f}"
          f"{', clipped' if fit.clipped else ''})")
    print(f"capacity   : {capacity_bps / 1e6:.3f} Mbps for "
          f"P(congestion) <= {args.epsilon:g}")


def _report_measured(args, trace_line, measured) -> None:
    """Fit + print a :class:`MeasurementResult` (streaming/import paths).

    Mirrors FitModel.run / Validate's required_capacity_bps; the CLI
    byte-equality test pins this against the in-memory pipeline branch.
    """
    flows = measured.flows
    stats = flows.statistics(measured.duration)
    model = PoissonShotNoiseModel.from_flows(
        flows.sizes, flows.durations, measured.duration
    )
    fit = model.fit_power(measured.series.variance)
    fitted = model.with_shot(fit.shot)
    _print_measurement(
        args, trace_line, flows, stats, model, fit, measured.series,
        fitted.coefficient_of_variation,
        8.0 * fitted.required_capacity(args.epsilon),
    )


def _cmd_measure_streaming(
    args: argparse.Namespace, execution: ExecutionSpec
) -> int:
    """Out-of-core ``measure --chunk N``: the capture never leaves disk.

    Packets stream through :meth:`MeasurementEngine.measure_file`, so
    peak memory is bounded by the chunk (plus the open-flow carry
    tables) — and the printed report is byte-identical to the in-memory
    path, which the CLI tests pin.
    """
    engine = MeasurementEngine(
        chunk=execution.chunk, workers=execution.workers,
        backend=execution.backend,
    )
    measured = engine.measure_file(
        args.trace,
        delta=args.delta,
        key=args.flow_kind,
        timeout=args.timeout,
        prefix_length=args.prefix_length,
    )
    _report_measured(
        args,
        _trace_line(
            Path(args.trace).stem, measured.packet_count,
            measured.duration, measured.utilization,
        ),
        measured,
    )
    return 0


def _ingest_line(summary: dict) -> str:
    """The archive description line shared by ``import`` and ``run``."""
    name = Path(summary["path"]).name
    skipped = summary.get("records_skipped", 0)
    line = (
        f"{summary['format']}:{name} — {summary['records']} records"
        + (f" ({skipped} malformed skipped)" if skipped else "")
        + f" -> {summary['packets']} packets over "
        f"{summary['duration_s']:g} s"
    )
    if summary["utilization"] is not None:
        line += f", util {summary['utilization']:.1%}"
    return line


def _cmd_measure_import(
    args: argparse.Namespace, execution: ExecutionSpec, fmt: str
) -> int:
    """``measure --format netflow5|ipfix|pcap``: operator telemetry.

    Flow archives are expanded back into packets and re-measured through
    the engine's idle-timeout carry tables, so the report means the same
    thing it does for a native capture.
    """
    from .interop import open_import_stream

    stream = open_import_stream(
        args.trace, format=fmt, chunk=execution.chunk,
        errors=getattr(args, "errors", "strict"),
    )
    engine = MeasurementEngine(
        chunk=execution.chunk, workers=execution.workers,
        backend=execution.backend,
    )
    measured = engine.measure_chunks(
        stream,
        delta=args.delta,
        key=args.flow_kind,
        timeout=args.timeout,
        prefix_length=args.prefix_length,
    )
    _report_measured(
        args,
        _trace_line(
            Path(args.trace).stem, measured.packet_count,
            measured.duration, measured.utilization,
        ),
        measured,
    )
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    error = _check_execution_flags(args)
    if error is not None:
        return _fail(error)
    execution = _cli_execution(args)
    fmt = getattr(args, "format", "rptr")
    if fmt == "auto":
        try:
            from .interop import detect_format

            fmt = detect_format(args.trace)
        except (ReproError, OSError):
            # let the native path own the error message for bad files
            fmt = "rptr"
    if fmt != "rptr":
        try:
            return _cmd_measure_import(args, execution, fmt)
        except ReproError as exc:
            return _fail_for(exc)
    if execution.chunk is not None:
        return _cmd_measure_streaming(args, execution)
    trace = read_trace(args.trace)
    spec = _measure_spec(
        args, name=Path(args.trace).stem, workers=execution.workers,
        backend=execution.backend,
    )
    result = run_scenario(spec, trace=trace, stages=MEASUREMENT_STAGES)
    report = result.validation
    _print_measurement(
        args,
        _trace_line(
            result.trace.name, len(result.trace), result.trace.duration,
            result.trace.utilization,
        ),
        result.accounting.flows,
        result.estimation.statistics,
        result.fit.model,
        result.fit.power_fit,
        result.estimation.series,
        report.fitted_cov,
        report.required_capacity_bps,
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = read_trace(args.trace)
    spec = _measure_spec(args, name=Path(args.trace).stem)
    # generate only needs the fit — skip the Validate stage's report work
    result = run_scenario(spec, trace=trace, stages=MEASUREMENT_STAGES[:-1])
    fit = result.fit.power_fit
    engine = GenerationEngine(
        chunk=args.chunk if args.chunk > 0 else None, workers=args.workers
    )
    generated = generate_packet_trace(
        result.fit.model.arrival_rate,
        result.fit.model.ensemble,
        fit.shot,
        duration=args.duration or trace.duration,
        link_capacity=trace.link_capacity,
        rng=args.seed,
        name="generated",
        engine=engine,
    )
    write_trace(generated, args.output)
    print(f"calibrated b = {fit.power:.2f}; wrote {generated} -> {args.output}")
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    """``import``: fit the paper's model to real operator telemetry.

    Runs the ingest pipeline (ImportFlows → AccountFlows → Estimate →
    FitModel → Validate) on a NetFlow v5 / IPFIX / pcap / ``.rptr``
    archive, streaming out-of-core, and prints the measure-style report.
    """
    error = _check_execution_flags(args)
    if error is not None:
        return _fail(error)
    execution = _cli_execution(args)
    try:
        spec = ScenarioSpec(
            name=Path(args.file).stem,
            flows=FlowAccountingSpec(
                kind=args.flow_kind,
                timeout=args.timeout,
                prefix_length=args.prefix_length,
            ),
            measurement=MeasurementSpec(execution=execution),
            estimation=EstimationSpec(delta=args.delta),
            validation=ValidationSpec(epsilon=args.epsilon),
            generation=None,
            ingest=IngestSpec(
                path=args.file,
                format=args.format,
                order=args.order,
                rebase=args.rebase,
                duration=args.duration,
                link_capacity_bps=args.link_capacity,
                errors=args.errors,
                execution=execution,
            ),
        )
    except ParameterError as exc:
        return _fail(str(exc))
    try:
        result = run_scenario(spec)
    except ReproError as exc:
        return _fail_for(exc)
    report = result.validation
    _print_measurement(
        args,
        _ingest_line(result.ingest.summary()),
        result.accounting.flows,
        result.estimation.statistics,
        result.fit.model,
        result.fit.power_fit,
        result.estimation.series,
        report.fitted_cov,
        report.required_capacity_bps,
    )
    if args.report:
        Path(args.report).write_text(
            json.dumps(result.report(), indent=2) + "\n"
        )
        print(f"report     : wrote {args.report}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    """``calibrate``: fit the size families to a trace, emit a runnable spec.

    The target is either a telemetry archive (NetFlow v5 / IPFIX / pcap /
    ``.rptr``, streamed out-of-core) or a scenario (spec file or registry
    name, run through the pipeline's ``Calibrate`` stage).  Prints the
    model-selection verdict, optionally writes the fitted
    :class:`ScenarioSpec` (``-o``) and the full report (``--report``),
    and with ``--validate`` runs the closed loop — synthesize from the
    fitted spec and compare λ, E[S], utilisation moments and tail
    quantiles; a failed comparison exits with status 3.
    """
    error = _check_execution_flags(args)
    if error is not None:
        return _fail(error)
    from .calibration import calibrate_archive, validate_fitted_spec

    families = CALIBRATION_FAMILIES
    if args.families:
        families = tuple(
            name.strip() for name in args.families.split(",") if name.strip()
        )
    target = Path(args.target)
    is_spec = target.suffix == ".json" or args.target in default_registry()
    closed = None
    try:
        if is_spec:
            spec = _load_spec(args.target)
            if spec.network is not None or spec.sweep is not None:
                return _fail(
                    f"scenario {spec.name!r} is a network/sweep scenario; "
                    "calibrate fits one link's flow population — pick a "
                    "single-link scenario or a telemetry archive"
                )
            section = spec.calibration or CalibrationSpec()
            section = dataclasses.replace(
                section,
                families=families if args.families else section.families,
                select=args.select or section.select,
                restarts=(
                    section.restarts if args.restarts is None
                    else args.restarts
                ),
                seed=section.seed if args.seed is None else args.seed,
                validate=bool(args.validate) or section.validate,
                validate_duration=(
                    args.validate_duration
                    if args.validate_duration is not None
                    else section.validate_duration
                ),
                execution=_resolve_execution(args, section.execution),
            )
            spec = dataclasses.replace(spec, calibration=section)
            result = run_scenario(spec)
            report = result.calibration.report
            closed = result.calibration.closed_loop
        else:
            execution = _cli_execution(args)
            report = calibrate_archive(
                args.target,
                format=args.format,
                duration=args.duration,
                link_capacity_bps=args.link_capacity,
                errors=args.errors,
                families=families,
                select=args.select or "bic",
                restarts=4 if args.restarts is None else args.restarts,
                seed=args.seed or 0,
                chunk=execution.chunk,
                workers=execution.workers,
                backend=execution.backend,
            )
            if args.validate:
                closed = validate_fitted_spec(
                    report,
                    seed=args.seed or 0,
                    duration=args.validate_duration,
                )
    except ReproError as exc:
        return _fail_for(exc)

    summary = report.summary()
    print(f"source     : {report.source}")
    print(
        f"flows      : {report.flow_count} over {report.duration:g} s "
        f"(lambda = {report.arrival_rate:g}/s)"
    )
    print(
        f"mean size  : {report.mean_size:.1f} B/flow "
        f"({report.mean_rate_bps / 1e6:.3f} Mbit/s)"
    )
    chosen = report.chosen
    print(
        f"family     : {report.family} ({report.selection}-selected; "
        f"ks = {chosen.ks_statistic:.4f})"
    )
    for name, value in sorted(report.params.items()):
        print(f"  {name:<12}: {value:g}")
    ranked = ", ".join(
        f"{name}={value:.1f}"
        for name, value in summary["candidates"].items()
    )
    print(f"candidates : {ranked} ({report.selection})")

    fitted = report.to_scenario_spec(
        name=args.name or f"{target.stem}-fitted"
    )
    if args.output:
        Path(args.output).write_text(fitted.to_json(indent=2) + "\n")
        print(f"fitted spec: wrote {args.output}")
    if args.report:
        payload = report.to_dict()
        if closed is not None:
            payload["closed_loop"] = closed.to_dict()
        Path(args.report).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report     : wrote {args.report}")
    if closed is not None:
        verdict = "PASS" if closed.passed else "FAIL"
        print(
            f"closed loop: {verdict} (lambda err {closed.lambda_rel_err:.2%}, "
            f"E[S] err {closed.mean_size_rel_err:.2%}, rate err "
            f"{closed.mean_rate_rel_err:.2%})"
        )
        for failure in closed.failures:
            print(f"  {failure}", file=sys.stderr)
        if not closed.passed:
            return _runtime_fail(
                "closed-loop validation failed: the synthesized trace "
                "does not reproduce the source within tolerances"
            )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """``export``: write a capture back out as operator telemetry.

    Any importable archive works as input (``.rptr``, NetFlow v5, IPFIX,
    pcap — auto-detected).  ``--format pcap`` streams packet chunks
    straight through with exact timestamps; the flow formats aggregate
    the stream into five-tuple flow records first.  Zero-duration
    (single-packet) flows carry no ``S^2/D`` mass and are never
    exported as flow records — the paper's model discards them on the
    measurement side too, so the fitted parameters round-trip.
    """
    error = _check_execution_flags(args)
    if error is not None:
        return _fail(error)
    execution = _cli_execution(args)
    from .interop import (
        PcapWriter,
        flow_records_from_flowset,
        open_import_stream,
        write_ipfix,
        write_netflow5,
    )

    try:
        stream = open_import_stream(
            args.input,
            format=args.input_format,
            chunk=execution.chunk,
            rebase=args.rebase,
            errors=args.errors,
        )
        if args.format == "pcap":
            with PcapWriter(args.output) as writer:
                for block in stream:
                    writer.write(block)
            print(f"wrote {writer.packet_count} packets "
                  f"({stream.format} -> pcap) -> {args.output}")
            return 0
        engine = MeasurementEngine(
            chunk=execution.chunk, workers=execution.workers,
            backend=execution.backend,
        )
        measured = engine.measure_chunks(
            stream,
            key="five_tuple",
            timeout=args.timeout,
            min_packets=args.min_packets,
        )
        records = flow_records_from_flowset(measured.flows)
        write = write_netflow5 if args.format == "netflow5" else write_ipfix
        count = write(records, args.output)
    except ReproError as exc:
        return _fail_for(exc)
    print(f"wrote {count} flow records "
          f"({stream.format} -> {args.format}) -> {args.output}")
    return 0


def _load_spec(target: str) -> ScenarioSpec:
    """A spec file path, or a registry scenario name.

    ``*.json`` (and any explicit path that is not a registry name) loads
    a spec file; bare registry names always win over same-named files in
    the working directory — write ``./medium`` to force the file.
    """
    path = Path(target)
    if path.suffix == ".json" or (
        path.is_file() and target not in default_registry()
    ):
        return ScenarioSpec.from_file(path)
    return default_registry().get(target)


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args.spec)
    except ReproError as exc:
        return _fail(str(exc))
    if spec.sweep is not None:
        # sweep/network scenarios share run's flags; route them to the
        # matching report printer instead of the single-link one
        return _cmd_sweep(args)
    if spec.network is not None:
        return _cmd_network(args)
    error = _check_execution_flags(args)
    if error is not None:
        return _fail(error)
    if args.seed is not None:
        spec = spec.with_overrides(seed=args.seed)
    if getattr(args, "ingest_path", None) is not None:
        if spec.ingest is None:
            return _fail(
                f"scenario {spec.name!r} has no 'ingest' section; "
                "--ingest-path only applies to real-trace-fit scenarios "
                "(see list-scenarios)"
            )
        spec = dataclasses.replace(
            spec,
            ingest=dataclasses.replace(spec.ingest, path=args.ingest_path),
        )
    # stream synthesize → measure when an engine is configured: the
    # trace is never materialised, and (chunk, workers) never change
    # the scenario's results; _resolve_execution applies the
    # --execution precedence rule between flags and spec values.
    if spec.ingest is not None:
        execution = _resolve_execution(args, spec.ingest.execution)
        if execution != spec.ingest.execution:
            spec = dataclasses.replace(
                spec, ingest=spec.ingest.with_execution(execution)
            )
    else:
        execution = _resolve_execution(args, spec.synthesis.execution)
        if execution != spec.synthesis.execution:
            spec = dataclasses.replace(
                spec, synthesis=spec.synthesis.with_execution(execution)
            )
    spec = apply_quick_mode(spec)
    reset_run_health()
    try:
        result = run_scenario(spec)
    except ReproError as exc:
        return _fail_for(exc, f"scenario {spec.name!r} failed: ")
    report = result.validation

    print(f"scenario   : {spec.name}"
          + (f" — {spec.description}" if spec.description else ""))
    if result.ingest is not None:
        print(f"import     : {_ingest_line(result.ingest.summary())}")
    elif result.trace is not None:
        print(f"trace      : {result.trace}")
    else:
        summary = result.synthesis.summary()
        print("trace      : "
              + _trace_line(
                  summary["name"], summary["packets"],
                  summary["duration_s"], summary["utilization"],
              )
              + "  [streamed]")
    print(f"flows      : {len(result.accounting.flows)} "
          f"({spec.flows.kind}, timeout {spec.flows.timeout:g} s)")
    stats = result.estimation.statistics
    print(f"parameters : lambda = {stats.arrival_rate:.2f}/s   "
          f"E[S] = {stats.mean_size:.0f} B   "
          f"E[S^2/D] = {stats.mean_square_size_over_duration:.4g} B^2/s")
    print(f"CoV        : measured {report.measured_cov:.2%}   "
          f"model(b={report.fitted_power:.2f}) {report.fitted_cov:.2%}   "
          f"{'within' if report.within_band else 'OUTSIDE'} "
          f"+-{report.cov_band:.0%} band")
    print(f"capacity   : {report.required_capacity_bps / 1e6:.3f} Mbps for "
          f"P(congestion) <= {report.epsilon:g}")
    if report.generated_cov is not None:
        print(f"generated  : CoV {report.generated_cov:.2%} "
              f"({report.generated_vs_measured_error:+.1%} vs measured)")
    if report.superposed_cov is not None:
        print(f"superposed : CoV {report.superposed_cov:.2%} "
              "(multi-class mix)")
    if report.anomaly_delta_s is not None:
        if report.anomalies:
            for event in report.anomalies:
                print(f"anomaly    : {event.kind} at "
                      f"{event.start_time(report.anomaly_delta_s):.1f} s "
                      f"for {event.n_samples * report.anomaly_delta_s:.1f} s "
                      f"(peak z = {event.peak_z:+.1f})")
        else:
            print("anomaly    : none detected")
    if args.report:
        Path(args.report).write_text(
            json.dumps(result.report(), indent=2) + "\n"
        )
        print(f"report     : wrote {args.report}")
    return 0


def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    registry = default_registry()
    width = max(len(name) for name in registry.names())
    first = True
    for family, entries in registry.families().items():
        if not first:
            print()
        first = False
        print(f"{family} scenarios:")
        for name, description in entries:
            print(f"  {name:<{width}}  {description}")
    return 0


def _cmd_network(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args.spec)
    except ReproError as exc:
        return _fail(str(exc))
    if spec.sweep is not None:
        # sweep scenarios carry a 'network' base section too; route
        # them to the sweep printer rather than simulating the base
        return _cmd_sweep(args)
    if spec.network is None:
        return _fail(
            f"scenario {spec.name!r} has no 'network' section; use "
            "'run' for single-link scenarios (see list-scenarios)"
        )
    error = _check_execution_flags(args)
    if error is not None:
        return _fail(error)
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    execution = _resolve_execution(args, spec.network.execution)
    if execution != spec.network.execution:
        overrides["network"] = spec.network.with_execution(execution)
    if overrides:
        spec = spec.with_overrides(**overrides)
    spec = apply_quick_mode(spec)
    reset_run_health()
    try:
        result = run_scenario(
            spec,
            checkpoint_dir=getattr(args, "checkpoint_dir", None),
            resume=bool(getattr(args, "resume", False)),
        )
    except ReproError as exc:
        return _fail_for(exc, f"scenario {spec.name!r} failed: ")
    report = result.network.report

    print(f"scenario   : {spec.name}"
          + (f" — {spec.description}" if spec.description else ""))
    print(f"topology   : {report.n_routers} routers, {report.n_links} "
          f"directed links ({report.routing} routing)")
    print(f"demands    : {report.n_demands} OD pairs over "
          f"{report.duration:g} s")
    carrying = [entry for entry in report.links if entry.n_demands > 0]
    print(f"links      : {len(carrying)} carrying traffic")
    label_width = max(
        (len(f"{a}->{b}") for a, b in (e.link for e in carrying)),
        default=0,
    )
    for entry in carrying:
        a, b = entry.link
        cov = (
            f"{entry.measured_cov:.1%}"
            if not np.isnan(entry.measured_cov)
            else "n/a"
        )
        verdict = "OVERLOADED" if entry.overloaded else "ok"
        print(f"  {f'{a}->{b}':<{label_width}} {entry.packets:>9} pkts  "
              f"util {entry.utilization:6.1%}  CoV {cov:>6}  "
              f"b={entry.fitted_power:5.2f}  "
              f"need {entry.required_capacity_bps / 1e6:8.3f} Mbps  "
              f"[{verdict}]")
        for anomaly in entry.anomalies:
            print(f"    anomaly: {anomaly['kind']} at "
                  f"{anomaly['start_s']:.1f} s for "
                  f"{anomaly['duration_s']:.1f} s "
                  f"(peak z = {anomaly['peak_z']:+.1f})")
    if report.overloaded_links:
        names = ", ".join(
            f"{a}->{b}" for a, b in
            (entry.link for entry in report.overloaded_links)
        )
        print(f"verdict    : {len(report.overloaded_links)} link(s) "
              f"under-provisioned: {names}")
    else:
        print("verdict    : all links meet the epsilon target")
    health = run_health()
    if not health.clean:
        print(f"health     : {len(health.retries)} retr"
              f"{'y' if len(health.retries) == 1 else 'ies'}, "
              f"{len(health.degradations)} degradation(s) — see the "
              "JSON report's 'health' section")
    if args.report:
        Path(args.report).write_text(
            json.dumps(result.report(), indent=2) + "\n"
        )
        print(f"report     : wrote {args.report}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args.spec)
    except ReproError as exc:
        return _fail(str(exc))
    if spec.sweep is None:
        return _fail(
            f"scenario {spec.name!r} has no 'sweep' section; use "
            "'network' or 'run' for plain scenarios (see list-scenarios)"
        )
    error = _check_execution_flags(args)
    if error is not None:
        return _fail(error)
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    execution = _resolve_execution(args, spec.sweep.execution)
    if execution != spec.sweep.execution:
        overrides["sweep"] = spec.sweep.with_execution(execution)
    if overrides:
        spec = spec.with_overrides(**overrides)
    if getattr(args, "resume", False) and not getattr(
        args, "checkpoint_dir", None
    ):
        return _fail("--resume needs --checkpoint-dir to resume from")
    spec = apply_quick_mode(spec)
    reset_run_health()
    try:
        result = run_scenario(
            spec,
            checkpoint_dir=getattr(args, "checkpoint_dir", None),
            resume=bool(getattr(args, "resume", False)),
        )
    except ReproError as exc:
        return _fail_for(exc, f"scenario {spec.name!r} failed: ")
    report = result.sweep.report

    print(f"scenario   : {spec.name}"
          + (f" — {spec.description}" if spec.description else ""))
    factors = ", ".join(f"x{factor:g}" for factor in report.demand_factors)
    print(f"axes       : demand {factors}; failures {report.failures}; "
          f"routing {', '.join(report.routing)}")
    print(f"band       : SLA {report.sla_utilization:g} x capacity, "
          f"+-{report.margin:.0%} analytic margin, "
          f"epsilon {report.epsilon:g}")
    print(report.table())
    for factor, headroom in report.headroom_per_factor().items():
        print(f"headroom   : x{factor:<5g} worst link at "
              f"{headroom:+.1%} SLA headroom")
    resumed = getattr(result.sweep.result, "resumed", ())
    if resumed:
        print(f"resumed    : {len(resumed)} cell(s) restored from "
              "checkpoints")
    health = run_health()
    if not health.clean:
        print(f"health     : {len(health.retries)} retr"
              f"{'y' if len(health.retries) == 1 else 'ies'}, "
              f"{len(health.degradations)} degradation(s) — see the "
              "JSON report's 'health' section")
    if args.report:
        Path(args.report).write_text(
            json.dumps(result.report(), indent=2) + "\n"
        )
        print(f"report     : wrote {args.report}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    outdir = Path(args.output_dir)
    outdir.mkdir(parents=True, exist_ok=True)
    workloads = table_i_workloads(duration=args.duration)
    syntheses = synthesize_scenario(
        workloads, seed=args.seed, workers=args.workers
    )
    for i, (workload, synthesis) in enumerate(zip(workloads, syntheses)):
        path = outdir / f"link{i}.rptr"
        write_trace(synthesis.trace, path)
        print(
            f"link {i} ({workload.name}): {len(synthesis.trace)} packets, "
            f"utilization {synthesis.trace.utilization:.1%} -> {path}"
        )
    return 0


def _add_measure_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("trace", help="input trace file (.rptr)")
    parser.add_argument(
        "--flow-kind", choices=["five_tuple", "prefix"], default="five_tuple"
    )
    parser.add_argument("--prefix-length", type=int, default=24)
    parser.add_argument(
        "--timeout", type=float, default=8.0,
        help="flow idle timeout in seconds (paper: 60 s at full scale)",
    )
    parser.add_argument(
        "--delta", type=float, default=0.2,
        help="rate averaging interval in seconds (paper: 200 ms)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Poisson shot-noise backbone traffic model "
        "(Barakat et al., IMC 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    execution = _execution_parent()

    run = sub.add_parser(
        "run", parents=[execution],
        help="run a scenario spec end-to-end (the pipeline API)",
    )
    run.add_argument(
        "spec",
        help="a scenario spec JSON file, or a registry name "
        "(see list-scenarios)",
    )
    run.add_argument(
        "--report", default=None,
        help="write the full pipeline report (spec + stage summaries + "
        "validation) to this JSON file",
    )
    run.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's seed",
    )
    run.add_argument(
        "--ingest-path", default=None,
        help="telemetry file for real-trace-fit scenarios: points the "
        "spec's 'ingest' section at a NetFlow v5 / IPFIX / pcap / .rptr "
        "archive",
    )
    run.set_defaults(func=_cmd_run)

    net = sub.add_parser(
        "network", parents=[execution],
        help="simulate a whole backbone (topology + demands + routing)",
    )
    net.add_argument(
        "spec",
        help="a scenario spec JSON file with a 'network' section, or a "
        "network registry name (see list-scenarios)",
    )
    net.add_argument(
        "--report", default=None,
        help="write the network report (per-link models, provisioning "
        "verdicts, anomalies) to this JSON file",
    )
    net.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's seed",
    )
    net.add_argument(
        "--checkpoint-dir", default=None,
        help="persist each simulated link's result to this directory as "
        "it completes, so an interrupted simulation can be resumed",
    )
    net.add_argument(
        "--resume", action="store_true",
        help="skip links already checkpointed in --checkpoint-dir and "
        "re-run only the remainder",
    )
    net.set_defaults(func=_cmd_network)

    swp = sub.add_parser(
        "sweep", parents=[execution],
        help="capacity sweep: growth x failures over a base network, "
        "closed-form pre-filter, marginal cells simulated",
    )
    swp.add_argument(
        "spec",
        help="a scenario spec JSON file with a 'sweep' section, or a "
        "sweep registry name (see list-scenarios)",
    )
    swp.add_argument(
        "--report", default=None,
        help="write the ranked sweep report (cells worst-first, worst "
        "link per failure, headroom per growth step) to this JSON file",
    )
    swp.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's seed",
    )
    swp.add_argument(
        "--checkpoint-dir", default=None,
        help="persist each simulated cell's outcome to this directory as "
        "it completes (atomic writes + a manifest pinning the run), so "
        "an interrupted sweep can be resumed",
    )
    swp.add_argument(
        "--resume", action="store_true",
        help="skip cells already checkpointed in --checkpoint-dir and "
        "re-run only the remainder; the resulting report is "
        "bitwise-equal to an uninterrupted run",
    )
    swp.set_defaults(func=_cmd_sweep)

    lst = sub.add_parser(
        "list-scenarios",
        help="list the built-in scenario registry, grouped by family",
    )
    lst.set_defaults(func=_cmd_list_scenarios)

    syn = sub.add_parser(
        "synthesize", parents=[execution],
        help="generate a synthetic capture",
    )
    syn.add_argument("output", help="output trace file (.rptr)")
    syn.add_argument(
        "--preset", default="medium",
        help="low | medium | high, or a Table I row index 0-6",
    )
    syn.add_argument("--duration", type=float, default=120.0)
    syn.add_argument("--seed", type=int, default=0)
    syn.add_argument(
        "--scale", type=float, default=None,
        help="rate scale relative to the paper's OC-12 links "
        "(default 1/32; --scale 1 synthesizes the full-rate link — "
        "combine with --chunk so the capture streams to disk)",
    )
    syn.set_defaults(func=_cmd_synthesize)

    meas = sub.add_parser(
        "measure", parents=[execution],
        help="model a capture (section VI)",
    )
    _add_measure_arguments(meas)
    meas.add_argument(
        "--epsilon", type=float, default=0.01,
        help="target congestion probability for provisioning",
    )
    meas.add_argument(
        "--format", choices=INGEST_FORMATS, default="auto",
        help="input format; non-native telemetry (netflow5, ipfix, pcap) "
        "streams through the import adapter (default: sniff the file, "
        "falling back to the native .rptr reader)",
    )
    meas.add_argument(
        "--errors", choices=("strict", "skip"), default="strict",
        help="malformed telemetry records: 'strict' (default) fails "
        "loudly naming the byte offset, 'skip' drops and counts them",
    )
    meas.set_defaults(func=_cmd_measure)

    imp = sub.add_parser(
        "import", parents=[execution],
        help="fit the model to operator telemetry "
        "(NetFlow v5 / IPFIX / pcap)",
    )
    imp.add_argument(
        "file", help="telemetry archive (NetFlow v5, IPFIX, pcap or .rptr)"
    )
    imp.add_argument(
        "--format", choices=INGEST_FORMATS, default="auto",
        help="wire format (default: sniff the file's magic bytes)",
    )
    imp.add_argument(
        "--order", choices=("auto", "start", "export"), default="auto",
        help="flow record ordering: 'start' streams records already "
        "sorted by start time, 'export' re-sorts the archive in memory "
        "(default: scan the archive and decide)",
    )
    imp.add_argument(
        "--rebase", choices=("auto", "always", "never"), default="auto",
        help="shift epoch timestamps so the capture starts at t=0 "
        "(default: rebase only when timestamps look like wall-clock)",
    )
    imp.add_argument(
        "--link-capacity", type=float, default=None,
        help="link capacity in bit/s for utilisation reporting "
        "(flow archives carry none)",
    )
    imp.add_argument(
        "--duration", type=float, default=None,
        help="capture duration in seconds (default: the archive's span)",
    )
    imp.add_argument(
        "--flow-kind", choices=["five_tuple", "prefix"],
        default="five_tuple",
    )
    imp.add_argument("--prefix-length", type=int, default=24)
    imp.add_argument(
        "--timeout", type=float, default=8.0,
        help="flow idle timeout in seconds, re-applied uniformly to the "
        "imported records (paper: 60 s at full scale)",
    )
    imp.add_argument(
        "--delta", type=float, default=0.2,
        help="rate averaging interval in seconds (paper: 200 ms)",
    )
    imp.add_argument(
        "--epsilon", type=float, default=0.01,
        help="target congestion probability for provisioning",
    )
    imp.add_argument(
        "--errors", choices=("strict", "skip"), default="strict",
        help="malformed telemetry records: 'strict' (default) fails "
        "loudly naming the byte offset, 'skip' drops and counts them "
        "(reported as 'records_skipped')",
    )
    imp.add_argument(
        "--report", default=None,
        help="write the full pipeline report (spec + stage summaries + "
        "validation) to this JSON file",
    )
    imp.set_defaults(func=_cmd_import)

    cal = sub.add_parser(
        "calibrate", parents=[execution],
        help="fit the flow-size families to a telemetry archive or "
        "scenario and emit a runnable fitted spec",
    )
    cal.add_argument(
        "target",
        help="telemetry archive (NetFlow v5, IPFIX, pcap or .rptr), a "
        "spec file, or a registry scenario name",
    )
    cal.add_argument(
        "-o", "--output", default=None,
        help="write the fitted ScenarioSpec to this JSON file "
        "(runnable with 'repro run')",
    )
    cal.add_argument(
        "--report", default=None,
        help="write the full CalibrationReport (candidates, diagnostics, "
        "diurnal profile, closed-loop verdict) to this JSON file",
    )
    cal.add_argument(
        "--name", default=None,
        help="name for the emitted fitted spec (default: <target>-fitted)",
    )
    cal.add_argument(
        "--format", choices=INGEST_FORMATS, default="auto",
        help="archive wire format (default: sniff the magic bytes; "
        "ignored for scenario targets)",
    )
    cal.add_argument(
        "--families", default=None,
        help="comma-separated size families to fit (default: "
        f"{','.join(CALIBRATION_FAMILIES)})",
    )
    cal.add_argument(
        "--select", choices=SELECTION_CRITERIA, default=None,
        help="model-selection criterion (default: bic)",
    )
    cal.add_argument(
        "--restarts", type=int, default=None,
        help="EM random restarts per mixture threshold (default: 4)",
    )
    cal.add_argument(
        "--seed", type=int, default=None,
        help="seed for the EM restarts and the closed-loop synthesis "
        "(default: 0, or the scenario's seed)",
    )
    cal.add_argument(
        "--duration", type=float, default=None,
        help="capture duration in seconds (default: the archive's span)",
    )
    cal.add_argument(
        "--link-capacity", type=float, default=None,
        help="link capacity in bit/s recorded in the fitted spec "
        "(default: 2x the fitted mean rate)",
    )
    cal.add_argument(
        "--errors", choices=("strict", "skip"), default="strict",
        help="malformed telemetry records: fail loudly or drop+count",
    )
    cal.add_argument(
        "--validate", action="store_true",
        help="run the closed loop: synthesize from the fitted spec and "
        "compare lambda, E[S], utilisation moments and tail quantiles "
        "(failures exit with status 3)",
    )
    cal.add_argument(
        "--validate-duration", type=float, default=None,
        help="synthesis window for the closed loop in seconds "
        "(default: the calibrated duration)",
    )
    cal.set_defaults(func=_cmd_calibrate)

    exp = sub.add_parser(
        "export", parents=[execution],
        help="re-export a capture as NetFlow v5 / IPFIX / pcap",
    )
    exp.add_argument(
        "input", help="input archive (.rptr, NetFlow v5, IPFIX or pcap)"
    )
    exp.add_argument("output", help="output file")
    exp.add_argument(
        "--format", choices=("netflow5", "ipfix", "pcap"), required=True,
        help="output wire format",
    )
    exp.add_argument(
        "--input-format", choices=INGEST_FORMATS, default="auto",
        help="input format (default: sniff the file's magic bytes)",
    )
    exp.add_argument(
        "--rebase", choices=("auto", "always", "never"), default="auto",
        help="shift epoch timestamps to t=0 before exporting (NetFlow v5 "
        "First/Last are 32-bit milliseconds, so wall-clock inputs must "
        "be rebased for that format)",
    )
    exp.add_argument(
        "--timeout", type=float, default=8.0,
        help="flow idle timeout in seconds used to aggregate packets "
        "into exported flow records",
    )
    exp.add_argument(
        "--min-packets", type=int, default=1,
        help="smallest flow exported (zero-duration single-packet flows "
        "are always dropped: the model's S^2/D is undefined for them)",
    )
    exp.add_argument(
        "--errors", choices=("strict", "skip"), default="strict",
        help="malformed input records: 'strict' (default) fails loudly, "
        "'skip' drops and counts them",
    )
    exp.set_defaults(func=_cmd_export)

    gen = sub.add_parser(
        "generate", help="generate model-driven traffic (section VII-C)"
    )
    _add_measure_arguments(gen)
    gen.add_argument("output", help="output trace file (.rptr)")
    gen.add_argument("--duration", type=float, default=None)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--chunk", type=float, default=0.0,
        help="engine chunk window in seconds (bounds peak memory; "
        "0 = whole horizon at once)",
    )
    gen.add_argument(
        "--workers", type=int, default=1,
        help="engine worker threads; packet generation itself is bound to "
        "one RNG stream and runs sequentially, so this only validates the "
        "engine config today (never changes the output)",
    )
    gen.set_defaults(func=_cmd_generate)

    scen = sub.add_parser(
        "scenario", help="synthesize all Table I links in parallel"
    )
    scen.add_argument("output_dir", help="directory for linkN.rptr files")
    scen.add_argument("--duration", type=float, default=120.0)
    scen.add_argument("--seed", type=int, default=0)
    scen.add_argument(
        "--workers", type=int, default=1,
        help="links synthesized concurrently (never changes the output)",
    )
    scen.set_defaults(func=_cmd_scenario)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        checkpoint_dir = getattr(args, "checkpoint_dir", None)
        if checkpoint_dir:
            print(
                f"interrupted — completed work is checkpointed in "
                f"{checkpoint_dir}; re-run with --resume to continue",
                file=sys.stderr,
            )
        else:
            print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        # commands classify their own errors; this is the backstop for
        # anything that escaped
        return _fail_for(exc)


if __name__ == "__main__":
    sys.exit(main())
