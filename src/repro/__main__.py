"""Command-line interface: ``python -m repro <command>``.

Operator-facing commands wrapping the library:

* ``synthesize`` — generate a scaled backbone capture to a trace file;
* ``measure``    — run the full section VI pipeline on a trace file:
  flow accounting, three-parameter summary, measured vs model CoV,
  fitted shot power, provisioning recommendation;
* ``generate``   — produce model-driven traffic (section VII-C) from the
  statistics of an input trace, routed through the chunked generation
  engine (``--chunk`` bounds peak memory);
* ``scenario``   — synthesize all seven Table I links in parallel
  (``--workers``).

Examples::

    python -m repro synthesize /tmp/link.rptr --preset medium --seed 7
    python -m repro measure /tmp/link.rptr --flow-kind five_tuple
    python -m repro generate /tmp/link.rptr /tmp/synthetic.rptr \\
        --chunk 30 --workers 4
    python -m repro scenario /tmp/links --workers 4 --seed 3
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import PoissonShotNoiseModel
from .flows import export_flows
from .generation import GenerationEngine, generate_packet_trace
from .netsim import (
    high_utilization_link,
    low_utilization_link,
    medium_utilization_link,
    synthesize_scenario,
    table_i_workload,
    table_i_workloads,
)
from .stats import RateSeries
from .trace import read_trace, write_trace

_PRESETS = {
    "low": low_utilization_link,
    "medium": medium_utilization_link,
    "high": high_utilization_link,
}


def _cmd_synthesize(args: argparse.Namespace) -> int:
    if args.preset in _PRESETS:
        workload = _PRESETS[args.preset](duration=args.duration)
    else:
        workload = table_i_workload(int(args.preset), duration=args.duration)
    trace = workload.synthesize(seed=args.seed).trace
    write_trace(trace, args.output)
    print(f"wrote {trace} -> {args.output}")
    return 0


def _measure(args: argparse.Namespace):
    trace = read_trace(args.trace)
    flows = export_flows(
        trace,
        key=args.flow_kind,
        timeout=args.timeout,
        prefix_length=args.prefix_length,
        keep_packet_map=True,
    )
    series = RateSeries.from_packets(
        trace, args.delta, packet_mask=flows.packet_flow_ids >= 0
    )
    model = PoissonShotNoiseModel.from_flows(
        flows.sizes, flows.durations, trace.duration
    )
    return trace, flows, series, model


def _cmd_measure(args: argparse.Namespace) -> int:
    trace, flows, series, model = _measure(args)
    stats = model.statistics()
    fit = model.fit_power(series.variance)
    fitted = model.with_shot(fit.shot)
    capacity = fitted.required_capacity(args.epsilon)

    print(f"trace      : {trace}")
    print(f"flows      : {len(flows)} ({args.flow_kind}, "
          f"timeout {args.timeout:g} s, {flows.discarded_packets} pkts "
          "discarded as single-packet flows)")
    print(f"parameters : lambda = {stats.arrival_rate:.2f}/s   "
          f"E[S] = {stats.mean_size:.0f} B   "
          f"E[S^2/D] = {stats.mean_square_size_over_duration:.4g} B^2/s")
    print(f"mean rate  : model {model.mean * 8 / 1e6:.3f} Mbps   "
          f"measured {series.mean * 8 / 1e6:.3f} Mbps")
    print(f"CoV        : measured {series.coefficient_of_variation:.2%}   "
          f"model(b={fit.power:.2f}) {fitted.coefficient_of_variation:.2%}")
    print(f"shot fit   : b = {fit.power:.2f}  (kappa = {fit.kappa:.2f}"
          f"{', clipped' if fit.clipped else ''})")
    print(f"capacity   : {8 * capacity / 1e6:.3f} Mbps for "
          f"P(congestion) <= {args.epsilon:g}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    trace, flows, series, model = _measure(args)
    fit = model.fit_power(series.variance)
    engine = GenerationEngine(
        chunk=args.chunk if args.chunk > 0 else None, workers=args.workers
    )
    generated = generate_packet_trace(
        model.arrival_rate,
        model.ensemble,
        fit.shot,
        duration=args.duration or trace.duration,
        link_capacity=trace.link_capacity,
        rng=args.seed,
        name="generated",
        engine=engine,
    )
    write_trace(generated, args.output)
    print(f"calibrated b = {fit.power:.2f}; wrote {generated} -> {args.output}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    outdir = Path(args.output_dir)
    outdir.mkdir(parents=True, exist_ok=True)
    workloads = table_i_workloads(duration=args.duration)
    syntheses = synthesize_scenario(
        workloads, seed=args.seed, workers=args.workers
    )
    for i, (workload, synthesis) in enumerate(zip(workloads, syntheses)):
        path = outdir / f"link{i}.rptr"
        write_trace(synthesis.trace, path)
        print(
            f"link {i} ({workload.name}): {len(synthesis.trace)} packets, "
            f"utilization {synthesis.trace.utilization:.1%} -> {path}"
        )
    return 0


def _add_measure_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("trace", help="input trace file (.rptr)")
    parser.add_argument(
        "--flow-kind", choices=["five_tuple", "prefix"], default="five_tuple"
    )
    parser.add_argument("--prefix-length", type=int, default=24)
    parser.add_argument(
        "--timeout", type=float, default=8.0,
        help="flow idle timeout in seconds (paper: 60 s at full scale)",
    )
    parser.add_argument(
        "--delta", type=float, default=0.2,
        help="rate averaging interval in seconds (paper: 200 ms)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Poisson shot-noise backbone traffic model "
        "(Barakat et al., IMC 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    syn = sub.add_parser("synthesize", help="generate a synthetic capture")
    syn.add_argument("output", help="output trace file (.rptr)")
    syn.add_argument(
        "--preset", default="medium",
        help="low | medium | high, or a Table I row index 0-6",
    )
    syn.add_argument("--duration", type=float, default=120.0)
    syn.add_argument("--seed", type=int, default=0)
    syn.set_defaults(func=_cmd_synthesize)

    meas = sub.add_parser("measure", help="model a capture (section VI)")
    _add_measure_arguments(meas)
    meas.add_argument(
        "--epsilon", type=float, default=0.01,
        help="target congestion probability for provisioning",
    )
    meas.set_defaults(func=_cmd_measure)

    gen = sub.add_parser(
        "generate", help="generate model-driven traffic (section VII-C)"
    )
    _add_measure_arguments(gen)
    gen.add_argument("output", help="output trace file (.rptr)")
    gen.add_argument("--duration", type=float, default=None)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--chunk", type=float, default=0.0,
        help="engine chunk window in seconds (bounds peak memory; "
        "0 = whole horizon at once)",
    )
    gen.add_argument(
        "--workers", type=int, default=1,
        help="engine worker threads; packet generation itself is bound to "
        "one RNG stream and runs sequentially, so this only validates the "
        "engine config today (never changes the output)",
    )
    gen.set_defaults(func=_cmd_generate)

    scen = sub.add_parser(
        "scenario", help="synthesize all Table I links in parallel"
    )
    scen.add_argument("output_dir", help="directory for linkN.rptr files")
    scen.add_argument("--duration", type=float, default=120.0)
    scen.add_argument("--seed", type=int, default=0)
    scen.add_argument(
        "--workers", type=int, default=1,
        help="links synthesized concurrently (never changes the output)",
    )
    scen.set_defaults(func=_cmd_scenario)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
