"""Binary on-disk trace format (our stand-in for the 44-byte DAG captures).

Layout::

    +--------+---------+------------+------------------+------------------+
    | magic  | version | reserved   | link_capacity    | duration         |
    | 4 B    | u16     | u16        | f64 (bits/s)     | f64 (seconds)    |
    +--------+---------+------------+------------------+------------------+
    | packet_count u64                                                    |
    +---------------------------------------------------------------------+
    | packet_count x 23-byte packed PACKET_DTYPE records                  |
    +---------------------------------------------------------------------+

Everything is little-endian.  Decoding validates the magic, version and
record count so truncated or corrupted files fail loudly with
:class:`~repro.exceptions.TraceFormatError`.
"""

from __future__ import annotations

import struct

import numpy as np

from ..exceptions import TraceFormatError
from .packet import PACKET_DTYPE, PacketTrace

__all__ = ["MAGIC", "FORMAT_VERSION", "HEADER_STRUCT", "encode_trace", "decode_trace"]

MAGIC = b"RPTR"
FORMAT_VERSION = 1
HEADER_STRUCT = struct.Struct("<4sHHddQ")


def encode_trace(trace: PacketTrace) -> bytes:
    """Serialise a :class:`PacketTrace` to the binary format."""
    header = HEADER_STRUCT.pack(
        MAGIC,
        FORMAT_VERSION,
        0,
        trace.link_capacity,
        trace.duration,
        len(trace),
    )
    return header + trace.packets.tobytes()


def decode_trace(data: bytes, *, name: str = "trace") -> PacketTrace:
    """Parse bytes produced by :func:`encode_trace`.

    Raises
    ------
    TraceFormatError
        On bad magic, unknown version, or a record count that does not
        match the payload length.
    """
    if len(data) < HEADER_STRUCT.size:
        raise TraceFormatError(
            f"truncated trace header at byte offset 0: got {len(data)} "
            f"bytes, expected {HEADER_STRUCT.size}"
        )
    magic, version, _reserved, capacity, duration, count = HEADER_STRUCT.unpack_from(
        data, 0
    )
    if magic != MAGIC:
        raise TraceFormatError(
            f"bad magic {magic!r} at byte offset 0, expected {MAGIC!r}"
        )
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace version {version} at byte offset 4, "
            f"expected {FORMAT_VERSION}"
        )
    payload = data[HEADER_STRUCT.size:]
    expected = count * PACKET_DTYPE.itemsize
    if len(payload) != expected:
        raise TraceFormatError(
            f"truncated trace payload at byte offset {HEADER_STRUCT.size}: "
            f"got {len(payload)} bytes, expected {expected} for {count} "
            f"packets of {PACKET_DTYPE.itemsize} bytes each"
        )
    packets = np.frombuffer(payload, dtype=PACKET_DTYPE).copy()
    return PacketTrace(
        packets, link_capacity=capacity, duration=duration, name=name
    )
