"""Trace file IO: streaming reader/writer and multi-trace merge.

The writer streams packet chunks to disk and back-patches the header on
close, so arbitrarily long synthetic captures never need to fit in memory
twice.  The reader supports whole-file loads and chunked iteration.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..exceptions import TraceFormatError
from .format import FORMAT_VERSION, HEADER_STRUCT, MAGIC
from .packet import PACKET_DTYPE, PacketTrace

__all__ = ["TraceWriter", "TraceReader", "write_trace", "read_trace", "merge_packets"]


class TraceWriter:
    """Streaming writer for the binary trace format (context manager).

    Example::

        with TraceWriter(path, link_capacity=622e6) as writer:
            for chunk in packet_chunks:
                writer.write(chunk)

    Chunks must arrive in time order (every timestamp at or after the
    latest already written) so the file is a valid capture — chunked
    readers and the streaming measurement engine rely on it.  An
    out-of-order chunk raises :class:`TraceFormatError`; pass
    ``allow_unsorted=True`` to deliberately write an unsorted capture
    (e.g. raw multi-source packets to be merged later).
    """

    def __init__(
        self,
        path,
        *,
        link_capacity: float,
        duration: float = 0.0,
        allow_unsorted: bool = False,
    ) -> None:
        self.path = Path(path)
        self.link_capacity = float(link_capacity)
        if self.link_capacity <= 0:
            # PacketTrace refuses such captures on read; fail at write time
            raise TraceFormatError(
                f"link_capacity must be > 0 bits/s, got {link_capacity!r}"
            )
        self.duration = float(duration)
        self.allow_unsorted = bool(allow_unsorted)
        self._count = 0
        self._max_timestamp = 0.0
        self._file = None

    def __enter__(self) -> "TraceWriter":
        self._file = open(self.path, "wb")
        self._write_header()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(abort=exc_type is not None)

    def _write_header(self) -> None:
        header = HEADER_STRUCT.pack(
            MAGIC, FORMAT_VERSION, 0, self.link_capacity, self.duration, self._count
        )
        self._file.write(header)

    def write(self, packets: np.ndarray) -> None:
        """Append a chunk of PACKET_DTYPE records (must be time-ordered
        relative to previously written chunks for a valid capture)."""
        if self._file is None:
            raise TraceFormatError("writer is not open")
        packets = np.asarray(packets)
        if packets.dtype != PACKET_DTYPE:
            raise TraceFormatError(f"chunk dtype {packets.dtype} != PACKET_DTYPE")
        if packets.size:
            timestamps = packets["timestamp"]
            if not self.allow_unsorted:
                first = float(timestamps[0])
                if self._count > 0 and first < self._max_timestamp:
                    raise TraceFormatError(
                        f"out-of-order chunk: packet at {first:g}s after "
                        f"the writer already saw {self._max_timestamp:g}s; "
                        "write chunks in time order, or pass "
                        "allow_unsorted=True for an intentionally "
                        "unsorted capture"
                    )
                if not bool(np.all(timestamps[1:] >= timestamps[:-1])):
                    raise TraceFormatError(
                        "chunk is not internally time-ordered; sort it "
                        "first, or pass allow_unsorted=True for an "
                        "intentionally unsorted capture"
                    )
            self._max_timestamp = max(
                self._max_timestamp, float(timestamps.max())
            )
            self._file.write(packets.tobytes())
            self._count += packets.size

    def close(self, *, abort: bool = False) -> None:
        """Back-patch the header with the final count/duration and close."""
        if self._file is None:
            return
        if not abort:
            if self.duration < self._max_timestamp:
                self.duration = self._max_timestamp
            self._file.seek(0)
            self._write_header()
        self._file.close()
        self._file = None


class TraceReader:
    """Reader for the binary trace format.

    ``read()`` loads the whole trace; ``chunks(n)`` iterates blocks of at
    most ``n`` packets for bounded-memory processing.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as fh:
            raw = fh.read(HEADER_STRUCT.size)
        if len(raw) < HEADER_STRUCT.size:
            raise TraceFormatError(
                f"{self.path}: truncated trace header at byte offset 0: "
                f"got {len(raw)} bytes, expected {HEADER_STRUCT.size}"
            )
        magic, version, _r, capacity, duration, count = HEADER_STRUCT.unpack(raw)
        if magic != MAGIC:
            raise TraceFormatError(
                f"{self.path}: bad magic {magic!r} at byte offset 0, "
                f"expected {MAGIC!r}"
            )
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"{self.path}: unsupported version {version} at byte "
                f"offset 4, expected {FORMAT_VERSION}"
            )
        self.link_capacity = float(capacity)
        self.duration = float(duration)
        self.packet_count = int(count)
        expected = HEADER_STRUCT.size + self.packet_count * PACKET_DTYPE.itemsize
        actual = os.path.getsize(self.path)
        if actual != expected:
            raise TraceFormatError(
                f"{self.path}: truncated file: {actual} bytes on disk, "
                f"expected {expected} ({HEADER_STRUCT.size}-byte header + "
                f"{self.packet_count} packets of {PACKET_DTYPE.itemsize} "
                "bytes each)"
            )

    def read(self) -> PacketTrace:
        """Load the full trace into memory."""
        with open(self.path, "rb") as fh:
            fh.seek(HEADER_STRUCT.size)
            packets = np.fromfile(fh, dtype=PACKET_DTYPE, count=self.packet_count)
        return PacketTrace(
            packets,
            link_capacity=self.link_capacity,
            duration=self.duration,
            name=self.path.stem,
        )

    def chunks(self, chunk_size: int = 1_000_000):
        """Yield consecutive PACKET_DTYPE blocks of at most ``chunk_size``."""
        if chunk_size < 1:
            raise TraceFormatError(f"chunk_size must be >= 1, got {chunk_size}")
        remaining = self.packet_count
        with open(self.path, "rb") as fh:
            fh.seek(HEADER_STRUCT.size)
            while remaining > 0:
                take = min(chunk_size, remaining)
                offset = HEADER_STRUCT.size + (
                    (self.packet_count - remaining) * PACKET_DTYPE.itemsize
                )
                block = np.fromfile(fh, dtype=PACKET_DTYPE, count=take)
                if block.size != take:
                    raise TraceFormatError(
                        f"{self.path}: truncated trace at byte offset "
                        f"{offset}: got {block.size} packets, expected "
                        f"{take} ({take * PACKET_DTYPE.itemsize} bytes)"
                    )
                remaining -= take
                yield block


def write_trace(trace: PacketTrace, path) -> None:
    """Write a whole :class:`PacketTrace` to ``path``."""
    with TraceWriter(
        path, link_capacity=trace.link_capacity, duration=trace.duration
    ) as writer:
        writer.write(trace.packets)


def read_trace(path) -> PacketTrace:
    """Load a trace file written by :class:`TraceWriter`."""
    return TraceReader(path).read()


def merge_packets(*packet_arrays: np.ndarray) -> np.ndarray:
    """Merge several packet arrays into one timestamp-ordered capture.

    Used when multiplexing traffic from several sources onto one link.
    """
    arrays = [np.asarray(a) for a in packet_arrays if np.asarray(a).size]
    if not arrays:
        return np.zeros(0, dtype=PACKET_DTYPE)
    for a in arrays:
        if a.dtype != PACKET_DTYPE:
            raise TraceFormatError(f"cannot merge array with dtype {a.dtype}")
    merged = np.concatenate(arrays)
    order = np.argsort(merged["timestamp"], kind="stable")
    return merged[order]
