"""Packet-trace substrate: records, binary format, streaming IO.

Stand-in for the paper's passive monitoring infrastructure (44-byte packet
captures on Sprint OC-12 links).
"""

from .format import FORMAT_VERSION, MAGIC, decode_trace, encode_trace
from .io import TraceReader, TraceWriter, merge_packets, read_trace, write_trace
from .packet import PACKET_DTYPE, PacketRecord, PacketTrace, packets_from_columns

__all__ = [
    "PACKET_DTYPE",
    "PacketRecord",
    "PacketTrace",
    "packets_from_columns",
    "MAGIC",
    "FORMAT_VERSION",
    "encode_trace",
    "decode_trace",
    "TraceWriter",
    "TraceReader",
    "write_trace",
    "read_trace",
    "merge_packets",
]
