"""Packet records and packet traces.

The paper's measurement infrastructure taps OC-12 links and records, for
every packet, a timestamp plus the first 44 bytes (enough for the IP and
transport headers).  Our equivalent keeps exactly the fields the paper's
analysis consumes: timestamp, the 5-tuple, and the wire size.

Packets are stored as a numpy structured array (:data:`PACKET_DTYPE`) so a
multi-million-packet trace is a single contiguous buffer; the scalar
:class:`PacketRecord` view exists for ergonomic access and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError

__all__ = ["PACKET_DTYPE", "PacketRecord", "PacketTrace", "packets_from_columns"]

#: On-disk / in-memory packet layout (little-endian, packed: 23 bytes).
PACKET_DTYPE = np.dtype(
    [
        ("timestamp", "<f8"),  # seconds since trace start
        ("src_addr", "<u4"),  # IPv4 source address
        ("dst_addr", "<u4"),  # IPv4 destination address
        ("src_port", "<u2"),
        ("dst_port", "<u2"),
        ("protocol", "u1"),  # IP protocol number (6 TCP, 17 UDP, ...)
        ("size", "<u2"),  # wire size in bytes (<= 65535)
    ]
)


@dataclass(frozen=True)
class PacketRecord:
    """A single captured packet (scalar view of one :data:`PACKET_DTYPE` row)."""

    timestamp: float
    src_addr: int
    dst_addr: int
    src_port: int
    dst_port: int
    protocol: int
    size: int

    @classmethod
    def from_row(cls, row) -> "PacketRecord":
        """Build from one element of a :data:`PACKET_DTYPE` array."""
        return cls(
            timestamp=float(row["timestamp"]),
            src_addr=int(row["src_addr"]),
            dst_addr=int(row["dst_addr"]),
            src_port=int(row["src_port"]),
            dst_port=int(row["dst_port"]),
            protocol=int(row["protocol"]),
            size=int(row["size"]),
        )

    def to_row(self) -> np.ndarray:
        """Return a length-1 :data:`PACKET_DTYPE` array holding this packet."""
        row = np.zeros(1, dtype=PACKET_DTYPE)
        row["timestamp"] = self.timestamp
        row["src_addr"] = self.src_addr
        row["dst_addr"] = self.dst_addr
        row["src_port"] = self.src_port
        row["dst_port"] = self.dst_port
        row["protocol"] = self.protocol
        row["size"] = self.size
        return row


def packets_from_columns(
    timestamps,
    src_addrs,
    dst_addrs,
    src_ports,
    dst_ports,
    protocols,
    sizes,
) -> np.ndarray:
    """Assemble a packet array from per-field columns (bulk constructor)."""
    timestamps = np.asarray(timestamps, dtype=np.float64)
    n = timestamps.size
    packets = np.zeros(n, dtype=PACKET_DTYPE)
    packets["timestamp"] = timestamps
    packets["src_addr"] = np.asarray(src_addrs, dtype=np.uint32)
    packets["dst_addr"] = np.asarray(dst_addrs, dtype=np.uint32)
    packets["src_port"] = np.asarray(src_ports, dtype=np.uint16)
    packets["dst_port"] = np.asarray(dst_ports, dtype=np.uint16)
    packets["protocol"] = np.asarray(protocols, dtype=np.uint8)
    packets["size"] = np.asarray(sizes, dtype=np.uint16)
    return packets


class PacketTrace:
    """A captured (or synthesised) packet trace on one link.

    Wraps the packet array with link metadata, mirroring one row of the
    paper's Table I: a link has a capacity, the trace covers a duration,
    and the headline statistic is the average utilisation.
    """

    def __init__(
        self,
        packets: np.ndarray,
        *,
        link_capacity: float,
        duration: float | None = None,
        name: str = "trace",
    ) -> None:
        packets = np.asarray(packets)
        if packets.dtype != PACKET_DTYPE:
            raise ParameterError(
                f"packets must have PACKET_DTYPE, got {packets.dtype}"
            )
        if link_capacity <= 0:
            raise ParameterError("link_capacity must be > 0 (bits/second)")
        self.packets = packets
        self.link_capacity = float(link_capacity)
        self.name = str(name)
        if duration is None:
            duration = float(packets["timestamp"][-1]) if packets.size else 0.0
        if packets.size and duration < float(packets["timestamp"].max()):
            raise ParameterError(
                "duration is shorter than the last packet timestamp"
            )
        self.duration = float(duration)

    def __len__(self) -> int:
        return int(self.packets.size)

    def __repr__(self) -> str:
        return (
            f"PacketTrace(name={self.name!r}, packets={len(self)}, "
            f"duration={self.duration:g}s, "
            f"utilization={self.utilization:.1%})"
        )

    @property
    def total_bytes(self) -> int:
        return int(self.packets["size"].sum(dtype=np.int64))

    @property
    def mean_rate_bps(self) -> float:
        """Average link throughput in bits/second (the Table I column)."""
        if self.duration == 0.0:
            return 0.0
        return 8.0 * self.total_bytes / self.duration

    @property
    def utilization(self) -> float:
        """Mean rate over capacity — the paper's links stay below 50%."""
        return self.mean_rate_bps / self.link_capacity

    def is_sorted(self) -> bool:
        ts = self.packets["timestamp"]
        return bool(np.all(ts[1:] >= ts[:-1]))

    def sorted(self) -> "PacketTrace":
        """Return a timestamp-ordered copy (taps always emit in order)."""
        order = np.argsort(self.packets["timestamp"], kind="stable")
        return PacketTrace(
            self.packets[order],
            link_capacity=self.link_capacity,
            duration=self.duration,
            name=self.name,
        )

    def window(self, start: float, end: float, *, rebase: bool = False) -> "PacketTrace":
        """Packets with ``start <= t < end``; optionally rebase time to 0.

        This is how the paper cuts its long traces into 30-minute analysis
        intervals (section III).
        """
        if end <= start:
            raise ParameterError(f"empty window [{start}, {end})")
        ts = self.packets["timestamp"]
        mask = (ts >= start) & (ts < end)
        packets = self.packets[mask].copy()
        if rebase:
            packets["timestamp"] -= start
            duration = end - start
        else:
            # absolute timestamps kept: the duration must cover them, so
            # rate/utilization of a non-rebased window refer to [0, end)
            duration = end
        return PacketTrace(
            packets,
            link_capacity=self.link_capacity,
            duration=duration,
            name=f"{self.name}[{start:g},{end:g})",
        )
