"""repro — full reproduction of Barakat et al., "A flow-based model for
Internet backbone traffic" (IMC 2002).

The package models the aggregate rate of an uncongested IP backbone link as
a Poisson shot-noise process driven by flow-level statistics, and rebuilds
every substrate the paper's evaluation depends on: a synthetic backbone
packet-trace generator, NetFlow-style flow accounting, rate measurement,
linear prediction and network-engineering applications.

Quickstart::

    import repro

    trace = repro.netsim.workloads.medium_utilization_link(seed=1).synthesize()
    flows = repro.flows.export_five_tuple_flows(trace.packets)
    model = repro.PoissonShotNoiseModel.from_flows(
        [f.size_bytes for f in flows], [f.duration for f in flows],
        interval_length=trace.duration, shot=repro.ParabolicShot(),
    )
    print(model.mean, model.coefficient_of_variation)

Subpackages
-----------
pipeline
    The declarative scenario pipeline: specs, stages, runner, registry —
    the canonical public API (``repro.run_scenario``).
core
    The shot-noise model: Theorems 1-3, Corollaries 1-3, fitting, Gaussian
    approximation (the paper's primary contribution).
trace
    Binary packet-record format + reader/writer (the measurement substrate).
flows
    Flow classification and NetFlow-like accounting (5-tuple, /24 prefix).
netsim
    Synthetic backbone-link workload generator (the Sprint-trace stand-in).
stats
    Rate time series, autocorrelations, qq-plots, heavy tails, EWMA.
prediction
    Section VII-B linear (moving-average) rate predictors.
generation
    Section VII-C shot-noise traffic generation (the generation engine).
measurement
    Streaming, sharded measurement engine: out-of-core flow accounting
    and rate measurement, chunk/worker invariant.
applications
    Section VII-A dimensioning, anomaly detection, edge+routing monitoring.
baselines
    Related-work comparison models ([3] M/G/infinity, ON/OFF, Poisson pkt).
"""

from . import (
    applications,
    baselines,
    core,
    experiments,
    flows,
    generation,
    measurement,
    netsim,
    network,
    pipeline,
    prediction,
    stats,
    synthesis,
    trace,
)
from .core import (
    EmpiricalEnsemble,
    FlowStatistics,
    GaussianApproximation,
    GenericShot,
    MGInfinityModel,
    MonteCarloEnsemble,
    ParabolicShot,
    PoissonShotNoiseModel,
    PowerFit,
    PowerShot,
    RectangularShot,
    SizeRateEnsemble,
    SuperposedModel,
    ThreeParameterModel,
    TriangularShot,
    fit_power_averaged,
    fit_power_from_cov,
    fit_power_from_variance,
    normal_quantile,
    solve_power,
    variance_shape_factor,
)
from .pipeline import (
    ScenarioRegistry,
    ScenarioResult,
    ScenarioSpec,
    default_registry,
    run_scenario,
    run_scenarios,
)
from .exceptions import (
    FittingError,
    FlowExportError,
    ModelError,
    ParameterError,
    PredictionError,
    ReproError,
    TopologyError,
    TraceFormatError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "core",
    "trace",
    "flows",
    "netsim",
    "stats",
    "prediction",
    "generation",
    "measurement",
    "network",
    "synthesis",
    "applications",
    "baselines",
    "experiments",
    "pipeline",
    # re-exported pipeline API
    "ScenarioSpec",
    "ScenarioResult",
    "ScenarioRegistry",
    "default_registry",
    "run_scenario",
    "run_scenarios",
    # re-exported core API
    "PoissonShotNoiseModel",
    "ThreeParameterModel",
    "SuperposedModel",
    "FlowStatistics",
    "GaussianApproximation",
    "MGInfinityModel",
    "EmpiricalEnsemble",
    "MonteCarloEnsemble",
    "SizeRateEnsemble",
    "PowerShot",
    "RectangularShot",
    "TriangularShot",
    "ParabolicShot",
    "GenericShot",
    "PowerFit",
    "variance_shape_factor",
    "solve_power",
    "fit_power_from_variance",
    "fit_power_from_cov",
    "fit_power_averaged",
    "normal_quantile",
    # exceptions
    "ReproError",
    "ParameterError",
    "FittingError",
    "TraceFormatError",
    "FlowExportError",
    "ModelError",
    "PredictionError",
    "TopologyError",
]
