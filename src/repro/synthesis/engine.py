"""Streaming, time-sharded synthesis engine — paper-scale traces end to end.

The synthesis-side twin of :class:`repro.generation.GenerationEngine`
(PR 1, traffic *generation*) and :class:`repro.measurement.MeasurementEngine`
(PR 3, trace *measurement*): where the legacy
:func:`~repro.synthesis.reference.reference_synthesize_link_trace`
materialises the whole capture in one process before a global argsort,
the :class:`SynthesisEngine` partitions the arrival timeline into fixed
cells with per-cell ``SeedSequence`` children
(:mod:`repro.synthesis.cells`), synthesizes cells independently — over a
thread pool when ``workers > 1`` — and k-way-merges the per-cell packet
blocks into globally time-ordered ``PACKET_DTYPE`` chunks:

* **Chunking** (``chunk`` packets): :meth:`SynthesisEngine.synthesize_chunks`
  returns a :class:`StreamingSynthesis` iterator yielding consecutive
  time-sorted blocks of at most ``chunk`` packets.  Peak memory is
  bounded by the active-flow population plus one emission window, never
  the trace: a cell's packets are dropped as soon as the merge has
  emitted past them.
* **Sharding** (``workers``): cells are independent given their seed
  child, so groups of ``workers`` cells run concurrently on a persistent
  worker pool (pass ``pool=`` — anything with ``map_ordered`` — to
  supply it externally, e.g. a ``GenerationEngine``).
* **Determinism**: the output depends only on ``(seed, cell)`` and the
  workload — never on ``chunk`` or ``workers``.  The canonical packet
  order is: per-cell blocks sorted by timestamp, merged by one *stable*
  sort keyed on timestamp with ties broken by cell index, then within-
  cell position; every emission is a contiguous prefix of that global
  order, so concatenating the chunks of any configuration reproduces
  :func:`repro.netsim.link.synthesize_link_trace` bit for bit.

The carry rule mirrors the ``warmup`` semantics of the whole-trace path:
flows are synthesized in full by their arrival cell (their packet
schedule is a pure function of the cell's draws) and carried by the
merge until the stream has advanced past their last packet, so split
flows cross cell boundaries exactly as they cross the capture's warm-up
boundary.

Arrival processes advertise per-cell sampling via
:attr:`~repro.netsim.arrivals.ArrivalProcess.cellable` (Poisson,
non-homogeneous/diurnal and session arrivals are cellable).  A
non-cellable process (e.g. the sequential-state MMPP) is pre-sampled
once from a reserved seed child and served to cells as time slices —
still deterministic and chunk/worker-invariant, at O(total flows)
arrival memory (flow metadata only; packets still stream).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import ParameterError
from ..execution import check_backend, make_pool, stage_timer
from ..netsim.link import LinkSynthesis
from ..trace.io import TraceWriter
from ..trace.packet import PacketTrace, packets_from_columns
from .cells import (
    DEFAULT_SYNTHESIS_CELL,
    CellBlock,
    CellPlan,
    default_warmup,
    synthesize_cell,
    unpack_payload,
)

__all__ = [
    "DEFAULT_SYNTHESIS_CELL",
    "SynthesisConfig",
    "SynthesisEngine",
    "StreamingSynthesis",
]


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs of the synthesis engine.

    Parameters
    ----------
    chunk:
        Packets per emitted block; ``None`` yields one block per merge
        emission (the natural cell-group granularity).  Output content
        never depends on it.
    workers:
        Cells synthesized concurrently on the worker pool.  Output never
        depends on it.
    backend:
        Pool flavour: ``"serial"``, ``"thread"`` (default) or
        ``"process"`` (fork-based shared-memory pool, see
        :mod:`repro.execution`).  Output never depends on it.
    cell:
        Arrival-cell width in seconds — the seeding contract knob (see
        :data:`DEFAULT_SYNTHESIS_CELL`).  Changing it changes the trace.
    """

    chunk: int | None = None
    workers: int = 1
    backend: str = "thread"
    cell: float = DEFAULT_SYNTHESIS_CELL
    retry: object | None = None  # RetryPolicy; process-backend watchdog

    def __post_init__(self) -> None:
        if self.chunk is not None:
            chunk = int(self.chunk)
            if chunk != self.chunk or chunk < 1:
                raise ParameterError(
                    f"synthesis chunk must be an integer >= 1 packet, "
                    f"got {self.chunk!r}"
                )
            object.__setattr__(self, "chunk", chunk)
        workers = int(self.workers)
        if workers != self.workers or workers < 1:
            raise ParameterError(
                f"workers must be an integer >= 1, got {self.workers!r}"
            )
        object.__setattr__(self, "workers", workers)
        check_backend("backend", self.backend)
        if not np.isfinite(self.cell) or self.cell <= 0.0:
            raise ParameterError(
                f"cell must be finite and > 0 seconds, got {self.cell!r}"
            )


def _synthesize_cell_task(task):
    """Picklable cell-synthesis adapter for the pool's single-arg map."""
    return synthesize_cell(*task)


def _as_seed_sequence(seed) -> np.random.SeedSequence:
    """Normalise ``seed`` to the engine's root ``SeedSequence``."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return seed.bit_generator.seed_seq
    return np.random.SeedSequence(seed)


class _PendingBlock:
    """A synthesized cell whose packets are not fully emitted yet."""

    __slots__ = ("timestamps", "payload_hi", "payload_lo", "offset")

    def __init__(self, block: CellBlock) -> None:
        self.timestamps = block.timestamps
        self.payload_hi = block.payload_hi
        self.payload_lo = block.payload_lo
        self.offset = 0

    def take_before(self, t_end: float):
        """Slice off (and consume) this block's packets before ``t_end``."""
        cut = (
            self.timestamps.size
            if t_end == np.inf
            else int(np.searchsorted(self.timestamps, t_end, side="left"))
        )
        if cut <= self.offset:
            return None
        part = (
            self.timestamps[self.offset: cut],
            self.payload_hi[self.offset: cut],
            self.payload_lo[self.offset: cut],
        )
        self.offset = cut
        return part

    @property
    def exhausted(self) -> bool:
        return self.offset >= self.timestamps.size


class StreamingSynthesis:
    """Single-use iterator of globally time-ordered ``PACKET_DTYPE`` chunks.

    Obtained from :meth:`SynthesisEngine.synthesize_chunks`.  Exposes the
    trace metadata a consumer needs before the stream is drained
    (``duration``, ``link_capacity``, ``name``) and live counters that
    are complete once iteration ends (``packet_count``, ``total_bytes``,
    ``total_flows``).  With ``keep_ground_truth=True`` the per-flow
    ground truth arrays are accumulated and available from
    :meth:`ground_truth` after the stream is drained.

    Raises :class:`~repro.exceptions.ParameterError` at the end of
    iteration if the whole workload produced zero flows (empty *cells*
    are legal; an empty *workload* mirrors the whole-trace path's error).
    """

    def __init__(
        self,
        plan: CellPlan,
        config: SynthesisConfig,
        seed=None,
        *,
        keep_ground_truth: bool = False,
        pool=None,
    ) -> None:
        self.plan = plan
        self.config = config
        self.keep_ground_truth = keep_ground_truth
        self._pool = pool
        self._owned_pool = None
        root = _as_seed_sequence(seed)
        children = root.spawn(plan.n_cells + 1)
        self._presample_seed = children[0]
        self._cell_seeds = children[1:]
        self.packet_count = 0
        self.total_bytes = 0.0
        self.total_flows = 0
        self._truth: list[tuple] = []
        self._iterator = None

    # -- metadata ---------------------------------------------------------

    @property
    def duration(self) -> float:
        return self.plan.duration

    @property
    def link_capacity(self) -> float:
        return self.plan.link_capacity

    @property
    def name(self) -> str:
        return self.plan.name

    def ground_truth(self):
        """``(flow_starts, flow_sizes, flow_protocols)`` in cell order.

        Only populated when the stream was created with
        ``keep_ground_truth=True`` and has been fully drained.
        """
        if not self.keep_ground_truth:
            raise ParameterError(
                "this stream was created with keep_ground_truth=False; "
                "ground truth was not accumulated"
            )
        if not self._truth:
            return np.zeros(0), np.zeros(0), np.zeros(0, dtype=np.uint8)
        starts, sizes, protocols = zip(*self._truth)
        return (
            np.concatenate(starts),
            np.concatenate(sizes),
            np.concatenate(protocols),
        )

    # -- worker pool ------------------------------------------------------

    def _run_cells(self, tasks):
        with stage_timer("synthesis.cells"):
            if len(tasks) <= 1 or self.config.workers <= 1:
                return [synthesize_cell(*task) for task in tasks]
            if self._pool is not None:
                return self._pool.map_ordered(_synthesize_cell_task, tasks)
            if self._owned_pool is None:
                # one pool for the whole stream, not one per cell group
                self._owned_pool = make_pool(
                    self.config.backend, self.config.workers,
                    retry=self.config.retry,
                )
            return self._owned_pool.map_ordered(
                _synthesize_cell_task, tasks
            )

    def close(self) -> None:
        """Release the worker pool (idempotent; exhaustion calls it)."""
        if self._owned_pool is not None:
            self._owned_pool.close()
            self._owned_pool = None

    def write_trace(self, path) -> int:
        """Drain this stream straight into a ``.rptr`` file.

        Only one emission window (plus the active-cell carry) is ever in
        memory.  A zero-flow workload raises
        :class:`~repro.exceptions.ParameterError` and removes the
        partial file, like the in-memory path which raises before
        producing any output.  Returns the number of packets written.
        """
        try:
            with TraceWriter(
                path,
                link_capacity=self.link_capacity,
                duration=self.duration,
            ) as writer:
                for block in self:
                    writer.write(block)
        except ParameterError:
            from pathlib import Path

            Path(path).unlink(missing_ok=True)
            raise
        return self.packet_count

    # -- iteration --------------------------------------------------------

    def __iter__(self):
        if self._iterator is None:
            self._iterator = self._chunks()
        return self._iterator

    def __next__(self):
        return next(iter(self))

    def _presampled_times(self):
        """Whole-horizon arrival times for non-cellable processes."""
        rng = np.random.default_rng(self._presample_seed)
        times = np.asarray(
            self.plan.arrivals.times(self.plan.horizon, rng), dtype=np.float64
        )
        return np.sort(times)

    def _emissions(self):
        """Yield ``(timestamps, hi, lo)`` column emissions in time order."""
        plan = self.plan
        presampled = None
        if not plan.arrivals.cellable:
            presampled = self._presampled_times()
        pending: list[_PendingBlock] = []
        group = self.config.workers
        try:
            for g0 in range(0, plan.n_cells, group):
                g1 = min(g0 + group, plan.n_cells)
                tasks = []
                for k in range(g0, g1):
                    times = None
                    if presampled is not None:
                        t0, t1 = plan.cell_bounds(k)
                        lo = np.searchsorted(presampled, t0, side="left")
                        hi = np.searchsorted(presampled, t1, side="left")
                        times = presampled[lo:hi]
                    tasks.append((plan, k, self._cell_seeds[k], times))
                for block in self._run_cells(tasks):
                    if block is None:
                        continue
                    self.total_flows += block.n_flows
                    if self.keep_ground_truth:
                        self._truth.append(
                            (block.flow_starts, block.flow_sizes,
                             block.flow_protocols)
                        )
                    if block.n_packets:
                        pending.append(_PendingBlock(block))
                safe = plan.cell_floor(g1)
                with stage_timer("synthesis.merge"):
                    parts = []
                    for blk in pending:
                        part = blk.take_before(safe)
                        if part is not None:
                            parts.append(part)
                    pending = [blk for blk in pending if not blk.exhausted]
                    if not parts:
                        continue
                    if len(parts) == 1:
                        merged = parts[0]
                    else:
                        ts = np.concatenate([p[0] for p in parts])
                        hi = np.concatenate([p[1] for p in parts])
                        lo = np.concatenate([p[2] for p in parts])
                        # stable sort over sorted runs: timsort merges
                        # them and breaks timestamp ties by cell order —
                        # the canonical global order for any emission
                        # boundaries
                        order = np.argsort(ts, kind="stable")
                        merged = ts[order], hi[order], lo[order]
                # the yield sits outside the timed block so consumer
                # time is not booked against the merge stage
                yield merged
            if self.total_flows == 0:
                raise ParameterError(
                    "arrival process produced zero flows; increase rate "
                    "or duration"
                )
        finally:
            self.close()

    def _chunks(self):
        """Assemble emissions into PACKET_DTYPE blocks of ``chunk``."""
        chunk = self.config.chunk
        held: list[np.ndarray] = []
        held_count = 0
        for ts, hi, lo in self._emissions():
            packets = packets_from_columns(ts, *unpack_payload(hi, lo))
            if chunk is None:
                self.packet_count += packets.size
                self.total_bytes += float(packets["size"].sum(dtype=np.int64))
                yield packets
                continue
            held.append(packets)
            held_count += packets.size
            while held_count >= chunk:
                out, held, held_count = _take_exactly(held, held_count, chunk)
                self.packet_count += out.size
                self.total_bytes += float(out["size"].sum(dtype=np.int64))
                yield out
        if chunk is not None and held_count:
            out = held[0] if len(held) == 1 else np.concatenate(held)
            self.packet_count += out.size
            self.total_bytes += float(out["size"].sum(dtype=np.int64))
            yield out


def _take_exactly(held, held_count, chunk):
    """Split the held block list into one exact-``chunk`` array + rest."""
    out_parts, need = [], chunk
    rest: list[np.ndarray] = []
    for part in held:
        if need == 0:
            rest.append(part)
        elif part.size <= need:
            out_parts.append(part)
            need -= part.size
        else:
            out_parts.append(part[:need])
            rest.append(part[need:])
            need = 0
    out = out_parts[0] if len(out_parts) == 1 else np.concatenate(out_parts)
    return out, rest, held_count - chunk


class SynthesisEngine:
    """Scalable backbone-link trace synthesis (see module docs)."""

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        *,
        chunk: int | None = None,
        workers: int | None = None,
        backend: str | None = None,
        cell: float | None = None,
    ) -> None:
        if config is None:
            config = SynthesisConfig()
        overrides = {
            k: v
            for k, v in {
                "chunk": chunk, "workers": workers,
                "backend": backend, "cell": cell,
            }.items()
            if v is not None
        }
        if overrides:
            config = replace(config, **overrides)
        self.config = config

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.config
        return (
            f"SynthesisEngine(chunk={c.chunk}, workers={c.workers}, "
            f"cell={c.cell:g})"
        )

    # -- plan construction -------------------------------------------------

    def plan(
        self,
        *,
        arrivals,
        size_dist,
        duration: float,
        link_capacity: float,
        address_space=None,
        tcp_params=None,
        rtt_dist=None,
        cbr_rate_dist=None,
        warmup: float | None = None,
        name: str = "synthetic",
    ) -> CellPlan:
        """Build the cell plan for one link (defaults mirror the legacy
        whole-trace path: warm-up of half the capture, capped at 90 s)."""
        from ..netsim.addresses import AddressSpace
        from ..netsim.tcp import TcpParameters

        if address_space is None:
            address_space = AddressSpace()
        if tcp_params is None:
            tcp_params = TcpParameters()
        if warmup is None:
            warmup = default_warmup(duration)
        return CellPlan(
            arrivals=arrivals,
            size_dist=size_dist,
            duration=float(duration),
            warmup=max(float(warmup), 0.0),
            link_capacity=float(link_capacity),
            address_space=address_space,
            tcp_params=tcp_params,
            rtt_dist=rtt_dist,
            cbr_rate_dist=cbr_rate_dist,
            name=str(name),
            cell=self.config.cell,
        )

    # -- entry points ------------------------------------------------------

    def synthesize_chunks(
        self, seed=None, *, keep_ground_truth: bool = False, pool=None,
        **plan_kwargs,
    ) -> StreamingSynthesis:
        """Stream a synthesized capture as time-ordered packet chunks."""
        plan = self.plan(**plan_kwargs)
        return StreamingSynthesis(
            plan,
            self.config,
            seed,
            keep_ground_truth=keep_ground_truth,
            pool=pool,
        )

    def synthesize(self, seed=None, *, pool=None, **plan_kwargs) -> LinkSynthesis:
        """Materialise a full :class:`~repro.netsim.link.LinkSynthesis`.

        Drains the engine's own stream, so the result is bit-for-bit the
        concatenation of :meth:`synthesize_chunks` for any ``chunk`` and
        ``workers`` — this *is* the canonical
        :func:`~repro.netsim.link.synthesize_link_trace` output.
        """
        stream = self.synthesize_chunks(
            seed, keep_ground_truth=True, pool=pool, **plan_kwargs
        )
        blocks = list(stream)
        packets = (
            blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        ) if blocks else packets_from_columns(*([[]] * 7))
        starts, sizes, protocols = stream.ground_truth()
        trace = PacketTrace(
            packets,
            link_capacity=stream.link_capacity,
            duration=stream.duration,
            name=stream.name,
        )
        return LinkSynthesis(
            trace=trace,
            flow_start_times=starts,
            flow_sizes=sizes,
            flow_protocols=protocols,
        )

    def write_trace(self, path, seed=None, *, pool=None, **plan_kwargs) -> int:
        """Stream a synthesized capture straight to a ``.rptr`` file.

        See :meth:`StreamingSynthesis.write_trace`; returns the number
        of packets written.
        """
        stream = self.synthesize_chunks(seed, pool=pool, **plan_kwargs)
        return stream.write_trace(path)
