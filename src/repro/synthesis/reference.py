"""Frozen legacy whole-trace synthesis — the engine's racing baseline.

``reference_synthesize_link_trace`` is the pre-engine implementation of
:func:`repro.netsim.link.synthesize_link_trace`, kept verbatim (including
its private copy of the round-synchronous TCP loop and its original
per-packet round expansion) as the performance baseline the synthesis
benchmarks race against — the same role
:func:`repro.generation.reference_rate_series` and
:func:`repro.measurement.reference_export_flows` play for the generation
and measurement engines.

It samples every flow from **one** sequential RNG stream, so for a given
seed its trace differs draw-for-draw from the cell-seeded engine output;
the two are equal in distribution (same arrival, size, endpoint, RTT and
rate laws; same round-model dynamics), not bitwise.  Use it when an
independent realisation of the legacy sampling scheme is wanted, or as
the memory/throughput baseline; use
:func:`~repro.netsim.link.synthesize_link_trace` (engine-backed) for
everything else.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive
from ..core.shots import RectangularShot
from ..exceptions import ParameterError
from ..flows.keys import PROTO_TCP
from ..netsim.addresses import AddressSpace
from ..netsim.packetize import packetize_shots
from ..netsim.tcp import PacketSchedule, TcpParameters, _packet_counts
from ..trace.packet import PacketTrace, packets_from_columns

__all__ = ["reference_synthesize_link_trace"]


def _reference_simulate_tcp_flows(
    sizes, rtts, params: TcpParameters, rng
) -> PacketSchedule:
    """The original round-loop TCP simulator with its original expansion.

    Byte-identical to the pre-engine ``simulate_tcp_flows`` (whose live
    version now uses a buffer-reusing expansion): the full-width
    ``arange``/``repeat`` temporaries are retained here on purpose so the
    benchmark's peak-memory baseline stays honest.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    rtts = np.asarray(rtts, dtype=np.float64)
    n = sizes.size
    remaining = _packet_counts(sizes, params.mss)
    total_packets = remaining.copy()
    window = np.full(n, params.initial_window, dtype=np.int64)
    clock = np.zeros(n, dtype=np.float64)
    sent = np.zeros(n, dtype=np.int64)

    flow_chunks, start_chunks, count_chunks = [], [], []
    length_chunks, sent_before_chunks = [], []

    active = remaining > 0
    while np.any(active):
        idx = np.flatnonzero(active)
        send = np.minimum(window[idx], remaining[idx])
        if params.rtt_jitter > 0.0:
            jitter = rng.lognormal(0.0, params.rtt_jitter, idx.size)
        else:
            jitter = np.ones(idx.size)
        round_length = rtts[idx] * jitter

        flow_chunks.append(idx)
        start_chunks.append(clock[idx].copy())
        count_chunks.append(send)
        length_chunks.append(round_length)
        sent_before_chunks.append(sent[idx].copy())

        remaining[idx] -= send
        sent[idx] += send
        clock[idx] += round_length
        in_slow_start = window[idx] < params.ssthresh
        window[idx] = np.where(
            in_slow_start,
            np.minimum(window[idx] * 2, params.max_window),
            np.minimum(window[idx] + 1, params.max_window),
        )
        active = remaining > 0

    round_flow = np.concatenate(flow_chunks)
    round_start = np.concatenate(start_chunks)
    round_count = np.concatenate(count_chunks)
    round_length = np.concatenate(length_chunks)
    round_sent_before = np.concatenate(sent_before_chunks)

    # the original expansion: one full-trace-size temporary per step
    total = int(round_count.sum())
    pkt_flow = np.repeat(round_flow, round_count)
    first_of_round = np.concatenate([[0], np.cumsum(round_count)[:-1]])
    within_round = np.arange(total) - np.repeat(first_of_round, round_count)
    pace = np.repeat(round_length / round_count, round_count)
    pkt_offset = np.repeat(round_start, round_count) + within_round * pace

    within_flow = np.repeat(round_sent_before, round_count) + within_round
    is_last = within_flow == total_packets[pkt_flow] - 1
    last_payload = sizes - (total_packets - 1) * params.mss
    payload = np.where(is_last, last_payload[pkt_flow], float(params.mss))
    wire = np.minimum(payload + params.header_bytes, 65535.0)

    return PacketSchedule(
        flow_index=pkt_flow.astype(np.int64),
        offset=pkt_offset,
        wire_size=wire.astype(np.uint16),
    )


def reference_synthesize_link_trace(
    *,
    arrivals,
    size_dist,
    duration: float,
    link_capacity: float,
    address_space: AddressSpace | None = None,
    tcp_params: TcpParameters = TcpParameters(),
    rtt_dist=None,
    cbr_rate_dist=None,
    warmup: float | None = None,
    name: str = "synthetic",
    seed=None,
):
    """Whole-trace, single-stream synthesis (legacy path, frozen).

    Signature and semantics of the pre-engine
    ``synthesize_link_trace``; see
    :func:`repro.netsim.link.synthesize_link_trace` for the parameter
    documentation.  Returns a :class:`~repro.netsim.link.LinkSynthesis`.
    """
    from ..netsim.link import LinkSynthesis

    duration = check_positive("duration", duration)
    check_positive("link_capacity", link_capacity)
    rng = as_rng(seed)
    if address_space is None:
        address_space = AddressSpace()
    if warmup is None:
        warmup = min(duration / 2.0, 90.0)
    warmup = max(float(warmup), 0.0)

    start_times = arrivals.times(duration + warmup, rng) - warmup
    n = start_times.size
    if n == 0:
        raise ParameterError(
            "arrival process produced zero flows; increase rate or duration"
        )

    sizes = np.asarray(size_dist.rvs(size=n, random_state=rng), dtype=np.float64)
    sizes = np.maximum(sizes, 40.0)
    src_addr, dst_addr, src_port, dst_port, protocol = (
        address_space.sample_endpoints(n, rng)
    )

    is_tcp = protocol == PROTO_TCP
    schedules = []

    if np.any(is_tcp):
        tcp_idx = np.flatnonzero(is_tcp)
        if rtt_dist is None:
            rtts = rng.lognormal(np.log(0.5), 0.4, tcp_idx.size)
        else:
            rtts = np.asarray(
                rtt_dist.rvs(size=tcp_idx.size, random_state=rng),
                dtype=np.float64,
            )
        sched = _reference_simulate_tcp_flows(
            sizes[tcp_idx], rtts, tcp_params, rng
        )
        sched.flow_index = tcp_idx[sched.flow_index]
        schedules.append(sched)

    if np.any(~is_tcp):
        udp_idx = np.flatnonzero(~is_tcp)
        if cbr_rate_dist is None:
            rates = rng.lognormal(np.log(20e3), 0.5, udp_idx.size)
        else:
            rates = np.asarray(
                cbr_rate_dist.rvs(size=udp_idx.size, random_state=rng),
                dtype=np.float64,
            )
        udp_durations = np.maximum(sizes[udp_idx] / rates, 1e-3)
        sched = packetize_shots(
            sizes[udp_idx],
            udp_durations,
            RectangularShot(),
            mss=tcp_params.mss,
            header_bytes=tcp_params.header_bytes,
            jitter=0.5,
            rng=rng,
        )
        sched.flow_index = udp_idx[sched.flow_index]
        schedules.append(sched)

    schedule = PacketSchedule.concatenate(schedules)
    timestamps = start_times[schedule.flow_index] + schedule.offset

    keep = (timestamps >= 0.0) & (timestamps < duration)
    timestamps = timestamps[keep]
    flow_of_packet = schedule.flow_index[keep]
    wire_sizes = schedule.wire_size[keep]

    packets = packets_from_columns(
        timestamps,
        src_addr[flow_of_packet],
        dst_addr[flow_of_packet],
        src_port[flow_of_packet],
        dst_port[flow_of_packet],
        protocol[flow_of_packet],
        wire_sizes,
    )
    order = np.argsort(packets["timestamp"], kind="stable")
    trace = PacketTrace(
        packets[order],
        link_capacity=link_capacity,
        duration=duration,
        name=name,
    )
    return LinkSynthesis(
        trace=trace,
        flow_start_times=start_times,
        flow_sizes=sizes,
        flow_protocols=protocol,
    )
