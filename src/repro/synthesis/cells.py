"""Per-cell flow synthesis — the unit of work of the synthesis engine.

The arrival timeline ``[-warmup, duration)`` is partitioned into fixed
cells of :data:`~repro.synthesis.engine.DEFAULT_SYNTHESIS_CELL` seconds.
Each cell owns every random draw for the flows arriving in it — start
times, sizes, endpoints, TCP round-trip times and per-round jitter, CBR
rates and packetization dither — taken from one dedicated
``numpy.random.SeedSequence`` child in a fixed, documented order.  Any
consumer replaying the cells therefore obtains the same flows and the
same packets, which is what makes the engine's output independent of
``chunk`` and ``workers`` (they only change *when* cells are evaluated,
never *what* a cell contains).

TCP flows use a closed-form round table instead of the round-synchronous
loop of :func:`repro.netsim.tcp.simulate_tcp_flows`: the window sequence
``w_r`` of the round model is the same deterministic sequence for every
flow (slow-start doubling to ``ssthresh``, then +1 per round, capped at
``max_window``), so each flow's number of rounds and per-round packet
counts follow from one ``searchsorted`` against the cumulative window
curve, and the per-round RTT jitter is drawn as a single vectorized
lognormal block.  Rounds that fall entirely outside the capture window
are pruned *before* the per-packet expansion, so warm-up lead-ins and
end-of-capture truncation cost round-table work, not packet work.

A cell block carries its packets as three parallel, time-sorted columns:
``timestamp`` (float64) plus two packed ``uint64`` payload words
(``src << 32 | dst`` and ``sport << 48 | dport << 32 | proto << 16 |
wire``).  Packing keeps the k-way merge down to three gathers per packet
instead of seven and avoids numpy's slow element-wise copy path for the
23-byte ``PACKET_DTYPE`` records until the final assembly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from .._util import check_positive
from ..exceptions import ParameterError
from ..flows.keys import PROTO_TCP
from ..netsim.addresses import AddressSpace
from ..netsim.arrivals import ArrivalProcess
from ..netsim.packetize import packetize_shots
from ..netsim.tcp import TcpParameters, _packet_counts

__all__ = [
    "DEFAULT_SYNTHESIS_CELL",
    "CellPlan",
    "CellBlock",
    "default_warmup",
    "synthesize_cell",
    "unpack_payload",
]


def default_warmup(duration: float) -> float:
    """The default synthesis lead-in: half the capture, capped at 90 s.

    The one home of the value (:meth:`SynthesisEngine.plan` and anything
    that needs to map capture time onto the ``[0, warmup + duration)``
    arrival horizon — e.g. network flash-crowd windows — share it; the
    frozen legacy path in :mod:`repro.synthesis.reference` keeps its
    verbatim copy by design).
    """
    return min(float(duration) / 2.0, 90.0)

#: Width (seconds) of one arrival cell.  Part of the seeding contract —
#: cell ``k`` draws from ``SeedSequence`` child ``k``, so changing the
#: width changes the trace (``chunk``/``workers`` never do).  15 s keeps a
#: full-rate OC-12 cell's flow tables cache-resident, which is where most
#: of the engine's single-core speedup over the whole-trace path comes
#: from.
DEFAULT_SYNTHESIS_CELL = 15.0

#: Serialises ``dist.rvs(..., random_state=...)`` calls across worker
#: threads.  scipy frozen distributions save/overwrite/restore their own
#: ``_random_state`` around every ``rvs`` call, so two cells drawing
#: concurrently on a *shared* distribution object could consume each
#: other's per-cell Generator and break worker invariance; the draws are
#: a small fraction of a cell's work, so serialising them is cheap.
#: (The repo's own size/rate laws are stateless, but the parameters are
#: public API documented with scipy's ``rvs`` protocol.)
_DIST_LOCK = threading.Lock()


def _draw(dist, n: int, rng) -> np.ndarray:
    """Thread-safe ``dist.rvs(size=n, random_state=rng)`` as float64."""
    with _DIST_LOCK:
        values = dist.rvs(size=n, random_state=rng)
    return np.asarray(values, dtype=np.float64)


#: Rectangular shot instance shared by every CBR packetization call.
_RECT_SHOT = None


def _rect_shot():
    global _RECT_SHOT
    if _RECT_SHOT is None:
        from ..core.shots import RectangularShot

        _RECT_SHOT = RectangularShot()
    return _RECT_SHOT


@dataclass(frozen=True)
class CellPlan:
    """Frozen description of one link synthesis, cut into arrival cells.

    The cell width is part of the seeding contract: cell ``k`` covers
    ``[-warmup + k * cell, -warmup + (k+1) * cell)`` of the arrival
    timeline and draws from ``SeedSequence`` child ``k``; changing
    ``cell`` changes which child a flow is sampled from and therefore
    the trace.  ``chunk``/``workers`` by contrast never appear here.
    """

    arrivals: ArrivalProcess
    size_dist: object
    duration: float
    warmup: float
    link_capacity: float
    address_space: AddressSpace = field(default_factory=AddressSpace)
    tcp_params: TcpParameters = field(default_factory=TcpParameters)
    rtt_dist: object | None = None
    cbr_rate_dist: object | None = None
    name: str = "synthetic"
    cell: float = DEFAULT_SYNTHESIS_CELL

    def __post_init__(self) -> None:
        check_positive("duration", self.duration)
        check_positive("link_capacity", self.link_capacity)
        check_positive("cell", self.cell)
        if self.warmup < 0.0:
            raise ParameterError(f"warmup must be >= 0, got {self.warmup!r}")

    @property
    def horizon(self) -> float:
        """Arrival horizon in unshifted time: ``duration + warmup``."""
        return self.duration + self.warmup

    @property
    def n_cells(self) -> int:
        return max(1, int(np.ceil(self.horizon / self.cell)))

    def cell_bounds(self, k: int) -> tuple[float, float]:
        """Unshifted arrival bounds ``[t0, t1)`` of cell ``k``."""
        t0 = k * self.cell
        return t0, min(t0 + self.cell, self.horizon)

    def cell_floor(self, k: int) -> float:
        """Capture-time lower bound of any packet from cells ``>= k``.

        Flow starts are at or after their cell's (shifted) left edge and
        packet offsets are non-negative, so once cells ``0..k-1`` are
        synthesized every packet before this time is final — the carry
        rule that lets the merge emit while later cells are still
        unsampled.
        """
        if k >= self.n_cells:
            return np.inf
        return max(0.0, -self.warmup + k * self.cell)


@dataclass
class CellBlock:
    """One cell's packets (time-sorted columns) and flow ground truth."""

    timestamps: np.ndarray  # float64, sorted ascending
    payload_hi: np.ndarray  # uint64: src_addr << 32 | dst_addr
    payload_lo: np.ndarray  # uint64: sport << 48 | dport << 32 | proto << 16 | wire
    flow_starts: np.ndarray  # float64, capture time (may precede 0)
    flow_sizes: np.ndarray  # float64 payload bytes
    flow_protocols: np.ndarray  # uint8

    @property
    def n_packets(self) -> int:
        return int(self.timestamps.size)

    @property
    def n_flows(self) -> int:
        return int(self.flow_starts.size)


def unpack_payload(hi: np.ndarray, lo: np.ndarray):
    """Invert the cell packing into the seven ``PACKET_DTYPE`` columns."""
    src = (hi >> np.uint64(32)).astype(np.uint32)
    dst = (hi & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    sport = (lo >> np.uint64(48)).astype(np.uint16)
    dport = ((lo >> np.uint64(32)) & np.uint64(0xFFFF)).astype(np.uint16)
    proto = ((lo >> np.uint64(16)) & np.uint64(0xFF)).astype(np.uint8)
    wire = (lo & np.uint64(0xFFFF)).astype(np.uint16)
    return src, dst, sport, dport, proto, wire


def _window_table(params: TcpParameters, max_packets: int):
    """Deterministic per-round window sequence and its cumulative sum.

    Identical for every flow: doubling while below ``ssthresh``
    (slow start), then +1 per round (congestion avoidance), capped at
    ``max_window`` — exactly the update rule of
    :func:`~repro.netsim.tcp.simulate_tcp_flows`.
    """
    seq = [params.initial_window]
    total = params.initial_window
    while total < max_packets:
        prev = seq[-1]
        grown = prev * 2 if prev < params.ssthresh else prev + 1
        nxt = min(grown, params.max_window)
        seq.append(nxt)
        total += nxt
    windows = np.asarray(seq, dtype=np.int64)
    return windows, np.cumsum(windows)


def _tcp_cell_packets(plan: CellPlan, starts, sizes, rtts, rng):
    """Packets of the cell's TCP flows, filtered to ``[0, duration)``.

    Returns ``(timestamps, flow_index, wire)`` with ``flow_index`` local
    to the ``starts`` array; unsorted (the caller sorts the whole cell).
    """
    params = plan.tcp_params
    duration = plan.duration
    counts = _packet_counts(sizes, params.mss)
    windows, cum_windows = _window_table(params, int(counts.max()))
    n_rounds = np.searchsorted(cum_windows, counts, side="left") + 1
    total_rounds = int(n_rounds.sum())

    # flow-major round table
    round_flow = np.repeat(np.arange(sizes.size), n_rounds)
    first = np.concatenate(([0], np.cumsum(n_rounds)[:-1]))
    round_idx = np.arange(total_rounds)
    round_idx -= np.repeat(first, n_rounds)
    sent_before = np.where(round_idx > 0, cum_windows[np.maximum(round_idx - 1, 0)], 0)
    round_count = np.minimum(windows[round_idx], counts[round_flow] - sent_before)
    jitter = rng.lognormal(0.0, params.rtt_jitter, total_rounds) \
        if params.rtt_jitter > 0.0 else np.ones(total_rounds)
    round_length = rtts[round_flow] * jitter
    # per-flow cumulative clock via one global cumsum minus each flow's base
    clock = np.cumsum(round_length)
    base = np.repeat(clock[first] - round_length[first], n_rounds)
    round_start = starts[round_flow] + (clock - round_length - base)
    # time of the round's last packet (pacing spreads `count` packets over
    # the round at gaps of length/count, the first leaving at round start).
    # Bitwise the expansion's `round_start + within * pace` for the last
    # packet, so the clean/live classification below can never disagree
    # with the per-packet filter by a rounding ulp at the window edges.
    round_last = round_start + (round_count - 1.0) * (round_length / round_count)

    live = (round_start < duration) & (round_last >= 0.0)
    is_last_round = np.zeros(total_rounds, dtype=bool)
    is_last_round[first + n_rounds - 1] = True
    # rounds fully inside the capture skip the per-packet window filter
    clean = live & (round_start >= 0.0) & (round_last < duration)
    last_wire = np.minimum(
        (sizes - (counts - 1) * params.mss) + params.header_bytes, 65535.0
    )
    full_wire = min(params.mss + params.header_bytes, 65535)

    ts_parts, flow_parts, wire_parts = [], [], []
    for mask, needs_filter in ((clean, False), (live & ~clean, True)):
        counts_m = round_count[mask]
        total = int(counts_m.sum())
        if total == 0:
            continue
        pkt_round = np.repeat(np.arange(counts_m.size), counts_m)
        pkt_first = np.concatenate(([0], np.cumsum(counts_m)[:-1]))
        within = np.arange(total)
        within -= np.repeat(pkt_first, counts_m)
        pace = round_length[mask] / counts_m
        ts = round_start[mask][pkt_round] + within * pace[pkt_round]
        wire = np.full(total, full_wire, dtype=np.uint16)
        sel_last = is_last_round[mask]
        last_pos = pkt_first[sel_last] + counts_m[sel_last] - 1
        wire[last_pos] = last_wire[round_flow[mask][sel_last]].astype(np.uint16)
        flow = round_flow[mask][pkt_round]
        if needs_filter:
            keep = (ts >= 0.0) & (ts < duration)
            ts, flow, wire = ts[keep], flow[keep], wire[keep]
        ts_parts.append(ts)
        flow_parts.append(flow)
        wire_parts.append(wire)
    if not ts_parts:
        empty = np.zeros(0)
        return empty, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.uint16)
    return (
        np.concatenate(ts_parts),
        np.concatenate(flow_parts),
        np.concatenate(wire_parts),
    )


def synthesize_cell(plan: CellPlan, k: int, seed, times=None) -> CellBlock | None:
    """Synthesize every flow arriving in cell ``k`` of the plan.

    ``seed`` is the cell's ``SeedSequence`` child (or anything
    ``numpy.random.default_rng`` accepts).  ``times`` overrides arrival
    sampling with pre-sampled unshifted start times for processes that
    cannot be sampled per cell (see
    :attr:`~repro.netsim.arrivals.ArrivalProcess.cellable`).

    The canonical draw order is: arrival times, sizes, endpoints, TCP
    RTTs, TCP round jitter, CBR rates, CBR packetization dither.
    Returns ``None`` for a cell with no flows — empty cells are legal;
    only a whole workload with zero flows is an error, which the engine
    raises after the last cell.
    """
    rng = np.random.default_rng(seed)
    t0, t1 = plan.cell_bounds(k)
    if times is None:
        times = plan.arrivals.cell_times(t0, t1, plan.horizon, rng)
    times = np.asarray(times, dtype=np.float64)
    n = times.size
    if n == 0:
        return None
    starts = times - plan.warmup  # capture time; warm-up flows are negative

    sizes = np.maximum(_draw(plan.size_dist, n, rng), 40.0)
    src, dst, sport, dport, proto = plan.address_space.sample_endpoints(n, rng)

    is_tcp = proto == PROTO_TCP
    tcp_idx = np.flatnonzero(is_tcp)
    ts_parts, flow_parts, wire_parts = [], [], []
    if tcp_idx.size:
        if plan.rtt_dist is None:
            rtts = rng.lognormal(np.log(0.5), 0.4, tcp_idx.size)
        else:
            rtts = _draw(plan.rtt_dist, tcp_idx.size, rng)
        ts, flow, wire = _tcp_cell_packets(
            plan, starts[tcp_idx], sizes[tcp_idx], rtts, rng
        )
        ts_parts.append(ts)
        flow_parts.append(tcp_idx[flow])
        wire_parts.append(wire)

    udp_idx = np.flatnonzero(~is_tcp)
    if udp_idx.size:
        if plan.cbr_rate_dist is None:
            rates = rng.lognormal(np.log(20e3), 0.5, udp_idx.size)
        else:
            rates = _draw(plan.cbr_rate_dist, udp_idx.size, rng)
        udp_durations = np.maximum(sizes[udp_idx] / rates, 1e-3)
        schedule = packetize_shots(
            sizes[udp_idx],
            udp_durations,
            _rect_shot(),
            mss=plan.tcp_params.mss,
            header_bytes=plan.tcp_params.header_bytes,
            jitter=0.5,
            rng=rng,
        )
        ts = starts[udp_idx][schedule.flow_index] + schedule.offset
        keep = (ts >= 0.0) & (ts < plan.duration)
        ts_parts.append(ts[keep])
        flow_parts.append(udp_idx[schedule.flow_index[keep]])
        wire_parts.append(schedule.wire_size[keep])

    timestamps = np.concatenate(ts_parts) if ts_parts else np.zeros(0)
    if timestamps.size == 0:
        # all packets fell outside the capture window; the flows still
        # count as ground truth (e.g. warm-up mice ending before t=0)
        return CellBlock(
            timestamps,
            np.zeros(0, dtype=np.uint64),
            np.zeros(0, dtype=np.uint64),
            starts,
            sizes,
            proto,
        )
    flow_of_packet = np.concatenate(flow_parts)
    wire = np.concatenate(wire_parts)

    order = np.argsort(timestamps)  # introsort: ~5x faster than stable here
    flow_sorted = flow_of_packet[order]
    hi = (src[flow_sorted].astype(np.uint64) << np.uint64(32)) | dst[flow_sorted]
    lo = (
        (sport[flow_sorted].astype(np.uint64) << np.uint64(48))
        | (dport[flow_sorted].astype(np.uint64) << np.uint64(32))
        | (proto[flow_sorted].astype(np.uint64) << np.uint64(16))
        | wire[order]
    )
    return CellBlock(timestamps[order], hi, lo, starts, sizes, proto)
