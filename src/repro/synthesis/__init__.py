"""Streaming, time-sharded trace synthesis — the synthesis-side engine.

The third engine of the pipeline, mirroring :mod:`repro.generation`
(PR 1) and :mod:`repro.measurement` (PR 3): the arrival timeline is cut
into seed-owning cells, cells are synthesized independently over a
worker pool, and per-cell packet blocks are k-way-merged into globally
time-ordered ``PACKET_DTYPE`` chunks in bounded memory — bit-for-bit
identical to :func:`repro.netsim.link.synthesize_link_trace` for any
``chunk`` and ``workers``.  The pre-engine whole-trace path survives as
:func:`reference_synthesize_link_trace`.

Quickstart::

    from repro.netsim import table_i_workload
    from repro.measurement import MeasurementEngine

    workload = table_i_workload(2, scale=1.0, duration=120.0)
    stream = workload.synthesize_chunks(seed=7, chunk=1_000_000, workers=4)
    result = MeasurementEngine(workers=4).measure_chunks(
        stream, duration=workload.duration, delta=0.2, timeout=60.0
    )
"""

from .cells import (
    CellBlock,
    CellPlan,
    default_warmup,
    synthesize_cell,
    unpack_payload,
)
from .engine import (
    DEFAULT_SYNTHESIS_CELL,
    StreamingSynthesis,
    SynthesisConfig,
    SynthesisEngine,
)
from .reference import reference_synthesize_link_trace

__all__ = [
    "DEFAULT_SYNTHESIS_CELL",
    "CellBlock",
    "CellPlan",
    "StreamingSynthesis",
    "SynthesisConfig",
    "SynthesisEngine",
    "default_warmup",
    "synthesize_cell",
    "unpack_payload",
    "reference_synthesize_link_trace",
]
