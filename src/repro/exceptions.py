"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised on purpose by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of numpy, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "FittingError",
    "TraceFormatError",
    "FlowExportError",
    "ModelError",
    "PredictionError",
    "TopologyError",
    "WorkerFailure",
    "FaultInjectedError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A model or workload parameter is out of its valid domain."""


class FittingError(ReproError):
    """A fitting routine could not produce a valid estimate."""


class TraceFormatError(ReproError):
    """A packet-trace file is malformed or truncated."""


class FlowExportError(ReproError):
    """Flow accounting received inconsistent packet input."""


class ModelError(ReproError):
    """The shot-noise model was asked for a quantity it cannot compute."""


class PredictionError(ReproError):
    """Linear prediction failed (singular normal equations, bad order...)."""


class TopologyError(ReproError):
    """A backbone topology operation failed (unknown node, no route...)."""


class WorkerFailure(ReproError):
    """A pool worker was lost (crash or hang) and retries ran out."""


class FaultInjectedError(ReproError):
    """Raised only by the fault-injection harness (:mod:`repro.faults`)."""


class CheckpointError(ReproError):
    """A checkpoint directory is unusable or belongs to a different run."""
