"""Execution backends: serial / thread / shared-memory process pools.

See :mod:`repro.execution.pool` for the abstraction every engine routes
through, and :mod:`repro.execution.shm` for the zero-pickle array
transport behind the ``process`` backend.
"""

from .pool import (
    BACKENDS,
    SerialPool,
    SharedMemoryPool,
    ThreadPool,
    check_backend,
    make_pool,
    process_backend_available,
)
from .shm import SHM_PREFIX, ShmRef, ShmTransport
from .timing import reset_stage_timings, stage_timer, stage_timings

__all__ = [
    "BACKENDS",
    "SHM_PREFIX",
    "SerialPool",
    "SharedMemoryPool",
    "ShmRef",
    "ShmTransport",
    "ThreadPool",
    "check_backend",
    "make_pool",
    "process_backend_available",
    "reset_stage_timings",
    "stage_timer",
    "stage_timings",
]
