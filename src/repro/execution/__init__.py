"""Execution backends: serial / thread / shared-memory process pools.

See :mod:`repro.execution.pool` for the abstraction every engine routes
through, :mod:`repro.execution.shm` for the zero-pickle array transport
behind the ``process`` backend, and :mod:`repro.execution.health` for
the retry/degradation accounting of the resilience layer.
"""

from .health import (
    HealthEvent,
    RunHealth,
    record_degradation,
    record_retry,
    reset_run_health,
    run_health,
)
from .pool import (
    BACKENDS,
    RetryPolicy,
    SerialPool,
    SharedMemoryPool,
    ThreadPool,
    check_backend,
    make_pool,
    process_backend_available,
)
from .shm import SHM_PREFIX, ShmRef, ShmTransport
from .timing import reset_stage_timings, stage_timer, stage_timings

__all__ = [
    "BACKENDS",
    "SHM_PREFIX",
    "HealthEvent",
    "RetryPolicy",
    "RunHealth",
    "SerialPool",
    "SharedMemoryPool",
    "ShmRef",
    "ShmTransport",
    "ThreadPool",
    "check_backend",
    "make_pool",
    "process_backend_available",
    "record_degradation",
    "record_retry",
    "reset_run_health",
    "reset_stage_timings",
    "run_health",
    "stage_timer",
    "stage_timings",
]
