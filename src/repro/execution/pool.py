"""One pool abstraction behind every engine's ``workers`` knob.

Three interchangeable backends::

    serial   inline execution, no pool at all (the bitwise ground truth)
    thread   a lazy persistent ThreadPoolExecutor (the legacy behaviour)
    process  a fork-based multiprocessing.Pool whose large arrays travel
             through shared-memory ring buffers (see :mod:`.shm`)

All three expose the same tiny surface — ``map_ordered(fn, items)``,
``close()``, context management, ``.backend`` / ``.workers`` — so the
generation, synthesis, measurement and network engines route through a
single :func:`make_pool` call and stay bit-for-bit identical across
backends (every engine's chunk/worker invariance contract extends to
the backend axis).

The process backend requires ``fn`` and the items to be picklable
(module-level functions, plain data).  Two guards keep it safe to
request anywhere:

* ``workers <= 1`` or a single item degrade to serial execution, so a
  one-core host never pays fork overhead;
* inside a daemonic pool worker (which may not spawn children —
  e.g. per-link tasks of the network engine running a measurement
  engine) ``process`` silently downgrades to ``thread``.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory

from ..exceptions import ParameterError
from .shm import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_THRESHOLD,
    ShmTransport,
    new_segment_name,
)

__all__ = [
    "BACKENDS",
    "SerialPool",
    "ThreadPool",
    "SharedMemoryPool",
    "make_pool",
    "check_backend",
    "process_backend_available",
]

#: Accepted values of every ``backend`` knob, CLI flag and spec field.
BACKENDS = ("serial", "thread", "process")


def check_backend(name: str, value) -> str:
    if value not in BACKENDS:
        raise ParameterError(
            f"{name} must be one of {BACKENDS}, got {value!r}"
        )
    return str(value)


def process_backend_available() -> bool:
    """True when a fork-based process pool may be created here."""
    if multiprocessing.current_process().daemon:
        return False
    return "fork" in multiprocessing.get_all_start_methods()


class SerialPool:
    """Inline execution; defines the semantics the others must match."""

    backend = "serial"
    workers = 1

    def map_ordered(self, fn, items):
        return [fn(item) for item in items]

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class ThreadPool:
    """Persistent lazily-started thread pool (the legacy backend)."""

    backend = "thread"

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._executor: ThreadPoolExecutor | None = None

    def map_ordered(self, fn, items):
        items = list(items)
        if len(items) <= 1 or self.workers <= 1:
            return [fn(item) for item in items]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return list(self._executor.map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# -- process backend ---------------------------------------------------

# Worker-global transport, installed by the fork-inherited initializer.
_WORKER_TRANSPORT: ShmTransport | None = None


def _worker_init(free_slots, slot_names, threshold, slot_bytes):
    global _WORKER_TRANSPORT
    slots = [shared_memory.SharedMemory(name=n) for n in slot_names]
    _WORKER_TRANSPORT = ShmTransport(free_slots, slots, threshold, slot_bytes)


def _worker_run(payload):
    """Unstage inputs, run, stage outputs.

    Inputs are unstaged (and their slots recycled / one-shots unlinked)
    *before* ``fn`` runs, so a failing task never strands a segment.
    """
    fn, staged = payload
    item = _WORKER_TRANSPORT.unstage(staged)
    result = fn(item)
    return _WORKER_TRANSPORT.stage(result)


class SharedMemoryPool:
    """Fork-based process pool with zero-pickle array hand-off.

    The parent owns ``2 * workers + 2`` reusable shared-memory ring
    slots; the free-slot queue and the attached segments are inherited
    by the workers at fork time (``multiprocessing.Pool`` passes
    initargs through the ``Process`` constructor, so the queue is
    never pickled).  ``map_ordered`` stages each item, streams results
    back through an ordered ``imap`` and unstages them promptly, which
    keeps slots cycling; when the ring is momentarily dry either side
    falls back to a one-shot segment, so progress never blocks on the
    ring.
    """

    backend = "process"

    def __init__(
        self,
        workers: int,
        *,
        slots: int | None = None,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        threshold: int = DEFAULT_THRESHOLD,
    ):
        self.workers = max(1, int(workers))
        n_slots = int(slots) if slots is not None else 2 * self.workers + 2
        ctx = multiprocessing.get_context("fork")
        self._segments = [
            shared_memory.SharedMemory(
                name=new_segment_name(), create=True, size=int(slot_bytes)
            )
            for _ in range(n_slots)
        ]
        self._free = ctx.Queue()
        for i in range(n_slots):
            self._free.put(i)
        self._transport = ShmTransport(
            self._free, self._segments, threshold, slot_bytes
        )
        self._pool = ctx.Pool(
            self.workers,
            initializer=_worker_init,
            initargs=(
                self._free,
                [seg.name for seg in self._segments],
                int(threshold),
                int(slot_bytes),
            ),
        )
        self._closed = False

    def map_ordered(self, fn, items):
        if self._closed:
            raise ParameterError("pool is closed")
        items = list(items)
        if not items:
            return []
        if len(items) == 1:
            return [fn(items[0])]
        payloads = [(fn, self._transport.stage(item)) for item in items]
        out = []
        it = self._pool.imap(_worker_run, payloads, chunksize=1)
        try:
            for staged in it:
                out.append(self._transport.unstage(staged))
        except BaseException:
            self._drain_after_error(it)
            raise
        return out

    def _drain_after_error(self, it) -> None:
        """Consume whatever the workers still deliver after a failure so
        their staged results do not strand segments."""
        while True:
            try:
                staged = it.next(timeout=60)
            except StopIteration:
                return
            except multiprocessing.TimeoutError:
                return
            except Exception:
                continue
            try:
                self._transport.discard(staged)
            except Exception:
                pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._pool.terminate()
            self._pool.join()
        finally:
            for seg in self._segments:
                try:
                    seg.close()
                    seg.unlink()
                except FileNotFoundError:
                    pass
            self._segments = []

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


def make_pool(backend: str = "thread", workers: int = 1, **kwargs):
    """Build the pool implementing ``backend`` with ``workers`` lanes.

    ``workers <= 1`` and ``backend="serial"`` return the inline pool;
    ``backend="process"`` downgrades to threads wherever a fork-based
    pool cannot be created (daemonic workers, exotic platforms), so
    requesting it is always safe.
    """
    check_backend("backend", backend)
    if workers <= 1 or backend == "serial":
        return SerialPool()
    if backend == "process":
        if not process_backend_available():
            return ThreadPool(workers)
        return SharedMemoryPool(workers, **kwargs)
    return ThreadPool(workers)
