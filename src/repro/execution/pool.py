"""One pool abstraction behind every engine's ``workers`` knob.

Three interchangeable backends::

    serial   inline execution, no pool at all (the bitwise ground truth)
    thread   a lazy persistent ThreadPoolExecutor (the legacy behaviour)
    process  a fork-based multiprocessing.Pool whose large arrays travel
             through shared-memory ring buffers (see :mod:`.shm`)

All three expose the same tiny surface — ``map_ordered(fn, items)``,
``close()``, context management, ``.backend`` / ``.workers`` — so the
generation, synthesis, measurement and network engines route through a
single :func:`make_pool` call and stay bit-for-bit identical across
backends (every engine's chunk/worker invariance contract extends to
the backend axis).

The process backend requires ``fn`` and the items to be picklable
(module-level functions, plain data).  Two guards keep it safe to
request anywhere:

* ``workers <= 1`` or a single item degrade to serial execution, so a
  one-core host never pays fork overhead;
* inside a daemonic pool worker (which may not spawn children —
  e.g. per-link tasks of the network engine running a measurement
  engine) ``process`` silently downgrades to ``thread``.

Fault tolerance: pass a :class:`RetryPolicy` to :func:`make_pool` (or
set ``execution.retry`` in a spec) and the process backend arms a
watchdog — each result is awaited under a per-task deadline, and a
missed deadline (worker crashed, fork wedged, task hung) respawns the
pool and deterministically re-executes every not-yet-delivered task.
Because all tasks are ``SeedSequence``-seeded the re-run is
bitwise-identical; the recovery is recorded in
:mod:`~repro.execution.health` rather than hidden.  Deterministic task
exceptions are *not* retried — they would fail identically — and
propagate immediately.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory

from ..exceptions import ParameterError, WorkerFailure
from ..faults import active_plan, fire_task_fault
from .health import record_degradation, record_retry, take_worker_events
from .shm import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_THRESHOLD,
    ShmTransport,
    new_segment_name,
)

__all__ = [
    "BACKENDS",
    "RetryPolicy",
    "SerialPool",
    "ThreadPool",
    "SharedMemoryPool",
    "make_pool",
    "check_backend",
    "process_backend_available",
]

#: Accepted values of every ``backend`` knob, CLI flag and spec field.
BACKENDS = ("serial", "thread", "process")


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Watchdog + retry knobs for the process backend.

    ``timeout_s`` is the per-task delivery deadline; a result that does
    not arrive in time means the worker crashed or hung, and the pool
    respawns and re-executes the lost work (up to ``max_retries``
    times, sleeping ``backoff * attempt`` seconds between rounds).
    Serial and thread backends ignore the policy: they cannot lose
    work to a dead process, and a hung thread cannot be killed.
    """

    max_retries: int = 2
    timeout_s: float = 300.0
    backoff: float = 0.0

    def __post_init__(self):
        if int(self.max_retries) < 0:
            raise ParameterError(
                f"retry.max_retries must be >= 0, got {self.max_retries!r}"
            )
        if float(self.timeout_s) <= 0:
            raise ParameterError(
                f"retry.timeout_s must be > 0, got {self.timeout_s!r}"
            )
        if float(self.backoff) < 0:
            raise ParameterError(
                f"retry.backoff must be >= 0, got {self.backoff!r}"
            )


def check_backend(name: str, value) -> str:
    if value not in BACKENDS:
        raise ParameterError(
            f"{name} must be one of {BACKENDS}, got {value!r}"
        )
    return str(value)


def process_backend_available() -> bool:
    """True when a fork-based process pool may be created here."""
    if multiprocessing.current_process().daemon:
        return False
    return "fork" in multiprocessing.get_all_start_methods()


class SerialPool:
    """Inline execution; defines the semantics the others must match."""

    backend = "serial"
    workers = 1

    def map_ordered(self, fn, items):
        return [fn(item) for item in items]

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class ThreadPool:
    """Persistent lazily-started thread pool (the legacy backend)."""

    backend = "thread"

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._executor: ThreadPoolExecutor | None = None

    def map_ordered(self, fn, items):
        items = list(items)
        if len(items) <= 1 or self.workers <= 1:
            return [fn(item) for item in items]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return list(self._executor.map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# -- process backend ---------------------------------------------------

# Worker-global transport, installed by the fork-inherited initializer.
_WORKER_TRANSPORT: ShmTransport | None = None

# Every live SharedMemoryPool, so the signal handlers can close them all
# (terminating workers and unlinking every /dev/shm segment) before an
# interrupt unwinds the process.
_LIVE_POOLS: "weakref.WeakSet[SharedMemoryPool]" = weakref.WeakSet()
_HANDLED_SIGNALS = (signal.SIGINT, signal.SIGTERM)
_SIGNALS_INSTALLED = False


def _close_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass


def _install_signal_handlers() -> None:
    """Chain SIGINT/SIGTERM through pool cleanup, once, best-effort.

    Only possible from the main thread of the main interpreter; pools
    created elsewhere simply rely on context-manager / ``__del__``
    cleanup.  The previous handler (or default behaviour) is preserved,
    so ``Ctrl-C`` still raises ``KeyboardInterrupt`` and ``SIGTERM``
    still terminates — just with zero segments left behind.
    """
    global _SIGNALS_INSTALLED
    if _SIGNALS_INSTALLED:
        return
    if threading.current_thread() is not threading.main_thread():
        return
    for sig in _HANDLED_SIGNALS:
        previous = signal.getsignal(sig)

        def _handler(signum, frame, _previous=previous):
            _close_live_pools()
            if callable(_previous):
                _previous(signum, frame)
            else:
                signal.signal(signum, signal.SIG_DFL)
                os.kill(os.getpid(), signum)

        try:
            signal.signal(sig, _handler)
        except (ValueError, OSError):
            return
    _SIGNALS_INSTALLED = True


def _worker_init(free_slots, slot_names, threshold, slot_bytes):
    global _WORKER_TRANSPORT
    slots = [shared_memory.SharedMemory(name=n) for n in slot_names]
    _WORKER_TRANSPORT = ShmTransport(free_slots, slots, threshold, slot_bytes)


def _worker_run(payload):
    """Unstage inputs, run, stage outputs.

    Inputs are unstaged (and their slots recycled / one-shots unlinked)
    *before* ``fn`` runs, so a failing task never strands a segment.
    Worker-side health events (e.g. a shm allocation falling back to
    pickle) ride back with the result so the parent can re-record them.
    """
    fn, staged, index, attempt, plan = payload
    item = _WORKER_TRANSPORT.unstage(staged)
    if plan is not None:
        fire_task_fault(index, attempt, plan)
    result = fn(item)
    return _WORKER_TRANSPORT.stage(result), take_worker_events()


class SharedMemoryPool:
    """Fork-based process pool with zero-pickle array hand-off.

    The parent owns ``2 * workers + 2`` reusable shared-memory ring
    slots; the free-slot queue and the attached segments are inherited
    by the workers at fork time (``multiprocessing.Pool`` passes
    initargs through the ``Process`` constructor, so the queue is
    never pickled).  ``map_ordered`` stages each item, streams results
    back through an ordered ``imap`` and unstages them promptly, which
    keeps slots cycling; when the ring is momentarily dry either side
    falls back to a one-shot segment, so progress never blocks on the
    ring.

    With a :class:`RetryPolicy`, each result is awaited under
    ``timeout_s``; a missed deadline tears the whole pool down (workers,
    ring, free queue), rebuilds it fresh and re-dispatches every task
    whose result had not yet been delivered.  Ordered delivery makes
    the unfinished set exactly the suffix of the task list, so the
    recovered run is a plain re-execution — bitwise-identical because
    every task is seeded.
    """

    backend = "process"

    def __init__(
        self,
        workers: int,
        *,
        slots: int | None = None,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        threshold: int = DEFAULT_THRESHOLD,
        retry: RetryPolicy | None = None,
    ):
        self.workers = max(1, int(workers))
        self.retry = retry
        self._n_slots = (
            int(slots) if slots is not None else 2 * self.workers + 2
        )
        self._slot_bytes = int(slot_bytes)
        self._threshold = int(threshold)
        self._closed = False
        self._segments: list = []
        self._spawn()
        _LIVE_POOLS.add(self)
        _install_signal_handlers()

    def _spawn(self) -> None:
        ctx = multiprocessing.get_context("fork")
        self._segments = [
            shared_memory.SharedMemory(
                name=new_segment_name(), create=True, size=self._slot_bytes
            )
            for _ in range(self._n_slots)
        ]
        self._free = ctx.Queue()
        for i in range(self._n_slots):
            self._free.put(i)
        self._transport = ShmTransport(
            self._free, self._segments, self._threshold, self._slot_bytes
        )
        self._pool = ctx.Pool(
            self.workers,
            initializer=_worker_init,
            initargs=(
                self._free,
                [seg.name for seg in self._segments],
                self._threshold,
                self._slot_bytes,
            ),
        )

    def _teardown(self) -> None:
        try:
            self._pool.terminate()
            self._pool.join()
        finally:
            for seg in self._segments:
                try:
                    seg.close()
                    seg.unlink()
                except FileNotFoundError:
                    pass
            self._segments = []

    def map_ordered(self, fn, items):
        if self._closed:
            raise ParameterError("pool is closed")
        items = list(items)
        if not items:
            return []
        if len(items) == 1:
            return [fn(items[0])]
        policy = self.retry
        timeout = float(policy.timeout_s) if policy is not None else None
        retries_left = int(policy.max_retries) if policy is not None else 0
        n = len(items)
        out: list = [None] * n
        start = 0  # first task whose result has not been delivered
        attempt = 0
        # Resolve the fault plan here, in the parent: workers may have
        # been forked while a (since-cleared) plan was armed, so the
        # plan travels with each payload instead of via fork state.
        plan = active_plan()
        while True:
            payloads = [
                (fn, self._transport.stage(items[i]), i, attempt, plan)
                for i in range(start, n)
            ]
            it = self._pool.imap(_worker_run, payloads, chunksize=1)
            i = start
            try:
                while i < n:
                    staged, events = it.next(timeout)
                    for kind, detail in events:
                        record_degradation(kind, detail)
                    out[i] = self._transport.unstage(staged)
                    i += 1
            except multiprocessing.TimeoutError:
                detail = (
                    f"task {i}/{n} missed its {timeout:g}s deadline "
                    f"(worker crashed or hung) on attempt {attempt}"
                )
                for payload in payloads[i - start:]:
                    try:
                        self._transport.discard(payload[1])
                    except Exception:
                        pass
                if retries_left <= 0:
                    self._teardown()
                    self._spawn()
                    raise WorkerFailure(
                        f"{detail}; retries exhausted "
                        f"(max_retries={policy.max_retries})"
                    ) from None
                retries_left -= 1
                attempt += 1
                record_retry(
                    "worker-lost",
                    f"{detail}; respawned pool, re-executing tasks "
                    f"{i}..{n - 1}",
                )
                self._teardown()
                if policy.backoff:
                    time.sleep(float(policy.backoff) * attempt)
                self._spawn()
                start = i
                continue
            except BaseException:
                self._drain_after_error(it)
                raise
            return out

    def _drain_after_error(self, it) -> None:
        """Consume whatever the workers still deliver after a failure so
        their staged results do not strand segments."""
        if self._closed:
            return
        while True:
            try:
                staged = it.next(timeout=60)
            except StopIteration:
                return
            except multiprocessing.TimeoutError:
                return
            except Exception:
                continue
            try:
                self._transport.discard(staged)
            except Exception:
                pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._teardown()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


def make_pool(
    backend: str = "thread",
    workers: int = 1,
    *,
    retry: RetryPolicy | None = None,
    **kwargs,
):
    """Build the pool implementing ``backend`` with ``workers`` lanes.

    ``workers <= 1`` and ``backend="serial"`` return the inline pool;
    ``backend="process"`` downgrades to threads wherever a fork-based
    pool cannot be created, so requesting it is always safe.  The
    routine downgrade inside a daemonic pool worker (nested engines)
    stays silent — it is by design — while a platform with no ``fork``
    start method records a structured ``backend-downgrade`` degradation
    in :mod:`~repro.execution.health`.

    ``retry`` arms the process backend's watchdog; the serial and
    thread backends accept and ignore it (they cannot lose work to a
    dead process).
    """
    check_backend("backend", backend)
    if workers <= 1 or backend == "serial":
        return SerialPool()
    if backend == "process":
        if not process_backend_available():
            if not multiprocessing.current_process().daemon:
                record_degradation(
                    "backend-downgrade",
                    "process backend unavailable (no fork start method); "
                    f"running {workers} workers on the thread backend",
                )
            return ThreadPool(workers)
        return SharedMemoryPool(workers, retry=retry, **kwargs)
    return ThreadPool(workers)
