"""Shared-memory transport for large numpy arrays between processes.

The process backend moves ``PACKET_DTYPE`` chunks (and any other large
array) between the parent and its workers through POSIX shared memory
instead of pickling them over the pool's pipes.  Two kinds of segment
are used:

* **ring slots** — a fixed set of reusable segments created by the pool
  parent.  A free-slot index queue is inherited by the workers at fork
  time; whoever wants to ship an array pops a slot *without blocking*
  (``get_nowait``), copies the array in, and sends a tiny :class:`ShmRef`
  instead of the data.  The receiver copies the array out and pushes the
  slot index back.  Because nobody ever blocks on the queue there is no
  slot-exhaustion deadlock — exhaustion just falls through to:
* **one-shot segments** — created on demand for arrays that exceed the
  slot size or when the ring is momentarily empty.  The consumer unlinks
  the segment after copying out, so one-shots never outlive a single
  hand-off.

All segments carry a recognisable name prefix (:data:`SHM_PREFIX`) so
tests can assert nothing leaks into ``/dev/shm``.  The staging walker
only rewrites *bare ndarrays* found inside tuples / lists / dicts /
dataclasses; anything else rides the normal pickle path (fine — flow
tables and specs are small next to packet chunks).
"""

from __future__ import annotations

import dataclasses
import errno
import os
import queue
from multiprocessing import shared_memory

import numpy as np

from ..faults import consume_shm_fault
from .health import record_degradation

__all__ = ["SHM_PREFIX", "ShmRef", "ShmTransport", "new_segment_name"]

#: Name prefix of every segment this module creates (leak tests scan
#: ``/dev/shm`` for it).
SHM_PREFIX = "repro_shm_"

#: Arrays smaller than this ride the pickle path; staging them would
#: cost more in slot traffic than the copy saves.
DEFAULT_THRESHOLD = 64 << 10

#: Default ring-slot payload capacity (fits a ~1.4M-packet
#: ``PACKET_DTYPE`` chunk).  Pages are only backed once written.
DEFAULT_SLOT_BYTES = 32 << 20


def new_segment_name() -> str:
    """A fresh, collision-safe segment name carrying :data:`SHM_PREFIX`."""
    return f"{SHM_PREFIX}{os.getpid():x}_{os.urandom(6).hex()}"


@dataclasses.dataclass(frozen=True)
class ShmRef:
    """Pickle-size stand-in for an ndarray parked in shared memory."""

    kind: str  # "slot" | "oneshot"
    name: str  # segment name (oneshot) or slot segment name
    slot: int  # ring index, -1 for one-shots
    dtype: np.dtype
    shape: tuple


class ShmTransport:
    """Stage/unstage arrays through a shared slot ring.

    One instance lives in the pool parent and one (over the same
    segments, attached by name after fork) in every worker.  The
    free-slot queue is a ``multiprocessing.Queue`` shared by all of
    them.
    """

    def __init__(self, free_slots, slots, threshold, slot_bytes):
        self._free = free_slots
        self._slots = list(slots)
        self._threshold = int(threshold)
        self._slot_bytes = int(slot_bytes)

    # -- staging -------------------------------------------------------

    def stage(self, obj):
        """Deep-copy ``obj`` replacing large ndarrays with ShmRefs."""
        if isinstance(obj, np.ndarray):
            if obj.nbytes >= self._threshold:
                return self._park(obj)
            return obj
        if isinstance(obj, tuple):
            return tuple(self.stage(o) for o in obj)
        if isinstance(obj, list):
            return [self.stage(o) for o in obj]
        if isinstance(obj, dict):
            return {k: self.stage(v) for k, v in obj.items()}
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return self._rebuild(obj, self.stage)
        return obj

    def unstage(self, obj):
        """Inverse of :meth:`stage`: materialise refs, recycle slots."""
        if isinstance(obj, ShmRef):
            return self._fetch(obj)
        if isinstance(obj, tuple):
            return tuple(self.unstage(o) for o in obj)
        if isinstance(obj, list):
            return [self.unstage(o) for o in obj]
        if isinstance(obj, dict):
            return {k: self.unstage(v) for k, v in obj.items()}
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return self._rebuild(obj, self.unstage)
        return obj

    def discard(self, obj):
        """Release every segment referenced by a staged object without
        materialising the arrays (error-path cleanup)."""
        if isinstance(obj, ShmRef):
            if obj.kind == "slot":
                self._free.put(obj.slot)
            else:
                _unlink_if_exists(obj.name)
            return
        if isinstance(obj, (tuple, list)):
            for o in obj:
                self.discard(o)
        elif isinstance(obj, dict):
            for o in obj.values():
                self.discard(o)
        elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            for f in dataclasses.fields(obj):
                self.discard(getattr(obj, f.name))

    # -- internals -----------------------------------------------------

    @staticmethod
    def _rebuild(obj, visit):
        cls = type(obj)
        new = object.__new__(cls)
        changed = False
        for f in dataclasses.fields(obj):
            old = getattr(obj, f.name)
            val = visit(old)
            changed = changed or val is not old
            object.__setattr__(new, f.name, val)
        if not changed:
            return obj
        vars_ = getattr(obj, "__dict__", None)
        if vars_:
            for k, v in vars_.items():
                if not hasattr(new, k):
                    object.__setattr__(new, k, v)
        return new

    def _park(self, arr: np.ndarray) -> "ShmRef | np.ndarray":
        arr = np.ascontiguousarray(arr)
        if arr.nbytes <= self._slot_bytes:
            try:
                idx = self._free.get_nowait()
            except queue.Empty:
                idx = None
            if idx is not None:
                seg = self._slots[idx]
                self._write(seg, arr)
                return ShmRef("slot", seg.name, idx, arr.dtype, arr.shape)
        name = new_segment_name()
        try:
            if consume_shm_fault():
                raise OSError(
                    errno.ENOSPC, "No space left on device (injected)"
                )
            seg = shared_memory.SharedMemory(
                name=name, create=True, size=max(arr.nbytes, 1)
            )
        except OSError as exc:
            if exc.errno not in (errno.ENOSPC, errno.ENOMEM):
                raise
            # /dev/shm is full: degrade gracefully to the pickle path.
            record_degradation(
                "shm-exhausted",
                f"one-shot allocation of {arr.nbytes} bytes failed "
                f"({exc.strerror or 'out of shared memory'}); "
                "array sent via pickle instead",
            )
            return arr
        try:
            self._write(seg, arr)
        finally:
            seg.close()
        return ShmRef("oneshot", name, -1, arr.dtype, arr.shape)

    def _fetch(self, ref: ShmRef) -> np.ndarray:
        if ref.kind == "slot":
            seg = self._slots[ref.slot]
            out = self._read(seg, ref)
            self._free.put(ref.slot)
            return out
        seg = shared_memory.SharedMemory(name=ref.name)
        try:
            out = self._read(seg, ref)
        finally:
            seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        return out

    @staticmethod
    def _write(seg, arr):
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        del view

    @staticmethod
    def _read(seg, ref):
        view = np.ndarray(ref.shape, dtype=ref.dtype, buffer=seg.buf)
        out = view.copy()
        del view
        return out


def _unlink_if_exists(name: str) -> None:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
