"""Run-health accounting: retries and degradations, named and counted.

The resilience layer never recovers silently.  Every time the pool
re-executes a lost task, the shared-memory transport falls back to
pickles, or a requested backend is downgraded, the event is recorded
here — a process-local registry in the style of
:mod:`repro.execution.timing` — and :func:`run_health` snapshots it
into the frozen :class:`RunHealth` report that engines attach to their
result JSON.

Because every task in this codebase is ``SeedSequence``-seeded and
bitwise-deterministic, a recovery changes *nothing* about the output;
the health report exists so an operator can still see that the run was
bumpy (and e.g. investigate a flaky host) without diffing artifacts.

Worker processes keep their own registries; events that happen on the
worker side of the process backend (one-shot allocation falling back to
pickle) are piggybacked onto the task result by the pool and re-recorded
in the parent, so a single parent-side snapshot covers the whole run.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "HealthEvent",
    "RunHealth",
    "record_degradation",
    "record_retry",
    "reset_run_health",
    "run_health",
    "take_worker_events",
]


@dataclasses.dataclass(frozen=True)
class HealthEvent:
    """One named recovery or degradation."""

    kind: str  # e.g. "worker-lost", "shm-exhausted", "backend-downgrade"
    detail: str  # human-readable cause, named loudly

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail}


@dataclasses.dataclass(frozen=True)
class RunHealth:
    """Snapshot of every retry and degradation since the last reset."""

    retries: tuple
    degradations: tuple

    @property
    def clean(self) -> bool:
        return not self.retries and not self.degradations

    def to_dict(self) -> dict:
        return {
            "retries": [e.to_dict() for e in self.retries],
            "degradations": [e.to_dict() for e in self.degradations],
            "n_retries": len(self.retries),
            "n_degradations": len(self.degradations),
        }


# Process-local event logs (parent side unless inside a pool worker).
_RETRIES: list[HealthEvent] = []
_DEGRADATIONS: list[HealthEvent] = []


def record_retry(kind: str, detail: str) -> None:
    """Record one re-execution of lost work (watchdog fired)."""
    _RETRIES.append(HealthEvent(str(kind), str(detail)))


def record_degradation(kind: str, detail: str) -> None:
    """Record one graceful downgrade (transport or backend)."""
    _DEGRADATIONS.append(HealthEvent(str(kind), str(detail)))


def reset_run_health() -> None:
    """Zero both logs (benchmarks and engines call this up front)."""
    _RETRIES.clear()
    _DEGRADATIONS.clear()


def run_health() -> RunHealth:
    """A frozen snapshot of everything recorded since the last reset."""
    return RunHealth(tuple(_RETRIES), tuple(_DEGRADATIONS))


def take_worker_events() -> list:
    """Drain this process's degradation log as picklable tuples.

    Pool workers call this after each task; the parent re-records the
    drained events so worker-side fallbacks show up in the parent's
    :func:`run_health` snapshot.
    """
    events = [(e.kind, e.detail) for e in _DEGRADATIONS]
    _DEGRADATIONS.clear()
    return events
