"""Parent-side stage timing for the execution benchmarks.

Engines wrap their coarse phases (cell fan-out, run merging, shard
apply, routing setup, ...) in :func:`stage_timer` blocks.  The timers
accumulate wall-clock seconds into a process-local registry that the
scaling benchmarks reset before a run and read afterwards, giving the
per-stage breakdown recorded in the ``BENCH_*.json`` artifacts.

All timing happens in the *parent* process around the ``map_ordered``
call sites, so the breakdown is valid for every backend — under the
process backend a fan-out stage measures the full dispatch + shared
-memory transport + compute wall time, which is exactly the quantity
the speedup gates reason about.  The overhead per block is one
``perf_counter`` pair and a dict update, cheap enough to leave enabled
unconditionally.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

#: Accumulated wall-clock seconds per stage label (process-local).
_STAGES: dict[str, float] = {}


@contextmanager
def stage_timer(name: str):
    """Accumulate the wall time of the enclosed block under ``name``."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - t0
        _STAGES[name] = _STAGES.get(name, 0.0) + elapsed


def reset_stage_timings() -> None:
    """Zero the registry (benchmarks call this before a timed run)."""
    _STAGES.clear()


def stage_timings() -> dict[str, float]:
    """A snapshot of accumulated seconds per stage label."""
    return dict(_STAGES)
