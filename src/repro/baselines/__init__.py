"""Related-work baseline models the paper positions itself against."""

from .mginfty import ConstantRateFlowModel
from .onoff import OnOffAggregate, OnOffSource, estimate_hurst, variance_time_curve
from .packet_poisson import PoissonPacketModel

__all__ = [
    "ConstantRateFlowModel",
    "OnOffSource",
    "OnOffAggregate",
    "variance_time_curve",
    "estimate_hurst",
    "PoissonPacketModel",
]
