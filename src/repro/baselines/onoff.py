"""Baseline: ON/OFF sources with heavy-tailed periods (reference [19]).

Leland et al. explain LAN self-similarity by multiplexing ON/OFF sources
whose ON and/or OFF periods are heavy-tailed.  This baseline implements
that generator so the benchmarks can contrast:

* its long-range-dependent aggregate (variance decaying slower than 1/m
  under aggregation, Hurst > 0.5), versus
* the shot-noise model's short-range correlation (Theorem 2's
  autocovariance vanishes beyond the flow durations).

The aggregate-variance ("variance-time") analysis used to estimate the
Hurst parameter is included.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_rng, check_positive
from ..exceptions import ParameterError
from ..stats.timeseries import RateSeries

__all__ = ["OnOffSource", "OnOffAggregate", "variance_time_curve", "estimate_hurst"]


def _pareto(rng, alpha: float, mean: float, size: int) -> np.ndarray:
    """Pareto samples with the requested mean (alpha > 1)."""
    xm = mean * (alpha - 1.0) / alpha
    return xm / rng.random(size) ** (1.0 / alpha)


@dataclass(frozen=True)
class OnOffSource:
    """One ON/OFF source: rate ``peak_rate`` when ON, silent when OFF.

    Periods are Pareto with tail indices ``alpha_on`` / ``alpha_off``;
    indices below 2 give infinite-variance periods, the self-similarity
    regime of [19].
    """

    peak_rate: float  # bytes/second while ON
    mean_on: float  # seconds
    mean_off: float  # seconds
    alpha_on: float = 1.5
    alpha_off: float = 1.5

    def __post_init__(self) -> None:
        check_positive("peak_rate", self.peak_rate)
        check_positive("mean_on", self.mean_on)
        check_positive("mean_off", self.mean_off)
        if self.alpha_on <= 1.0 or self.alpha_off <= 1.0:
            raise ParameterError(
                "alpha_on/alpha_off must be > 1 so the mean period exists"
            )

    @property
    def duty_cycle(self) -> float:
        return self.mean_on / (self.mean_on + self.mean_off)

    @property
    def mean_rate(self) -> float:
        return self.peak_rate * self.duty_cycle


class OnOffAggregate:
    """Superposition of ``n_sources`` iid ON/OFF sources.

    ``mean`` and ``variance`` give the stationary two-state moments
    (binomially many sources ON); :meth:`generate` simulates the
    alternating renewal processes and bins the aggregate into a
    :class:`RateSeries` comparable to measured traffic.
    """

    def __init__(self, source: OnOffSource, n_sources: int) -> None:
        if n_sources < 1:
            raise ParameterError("n_sources must be >= 1")
        self.source = source
        self.n_sources = int(n_sources)

    @property
    def mean(self) -> float:
        return self.n_sources * self.source.mean_rate

    @property
    def variance(self) -> float:
        p = self.source.duty_cycle
        return self.n_sources * self.source.peak_rate**2 * p * (1.0 - p)

    @property
    def coefficient_of_variation(self) -> float:
        return float(np.sqrt(self.variance)) / self.mean

    def generate(
        self, duration: float, delta: float, *, rng=None, warmup: float | None = None
    ) -> RateSeries:
        """Simulate the aggregate and average it into Delta bins."""
        duration = check_positive("duration", duration)
        delta = check_positive("delta", delta)
        rng = as_rng(rng)
        if warmup is None:
            warmup = 5.0 * (self.source.mean_on + self.source.mean_off)
        horizon = duration + warmup
        n_bins = int(np.floor(duration / delta))
        if n_bins < 1:
            raise ParameterError("duration shorter than one bin")
        edges = warmup + delta * np.arange(n_bins + 1)
        volumes = np.zeros(n_bins)
        src = self.source
        for _ in range(self.n_sources):
            # alternating Pareto renewals; random initial phase
            t = 0.0
            on = rng.random() < src.duty_cycle
            # draw generously sized batches of periods
            batch = max(16, int(3 * horizon / (src.mean_on + src.mean_off)) * 2)
            ons = _pareto(rng, src.alpha_on, src.mean_on, batch)
            offs = _pareto(rng, src.alpha_off, src.mean_off, batch)
            i = j = 0
            while t < horizon:
                if on:
                    if i >= ons.size:
                        ons = _pareto(rng, src.alpha_on, src.mean_on, batch)
                        i = 0
                    length = ons[i]
                    i += 1
                    start, end = t, min(t + length, horizon)
                    lo = np.searchsorted(edges, start, side="right") - 1
                    hi = np.searchsorted(edges, end, side="left")
                    if hi > 0 and lo < n_bins:
                        lo_c = max(lo, 0)
                        hi_c = min(hi, n_bins)
                        for b in range(lo_c, hi_c):
                            overlap = min(end, edges[b + 1]) - max(start, edges[b])
                            if overlap > 0:
                                volumes[b] += src.peak_rate * overlap
                else:
                    if j >= offs.size:
                        offs = _pareto(rng, src.alpha_off, src.mean_off, batch)
                        j = 0
                    length = offs[j]
                    j += 1
                t += length
                on = not on
        return RateSeries(volumes / delta, delta)


def variance_time_curve(series: RateSeries, factors=None):
    """Aggregate-variance curve: ``(m, Var[X^(m)] / Var[X])``.

    For short-range-dependent traffic the normalised variance decays like
    ``1/m``; slower decay (slope ``2H - 2`` in log-log) signals long-range
    dependence with Hurst parameter ``H > 0.5``.
    """
    if factors is None:
        max_factor = max(2, len(series) // 16)
        factors = np.unique(
            np.round(np.geomspace(1, max_factor, num=12)).astype(int)
        )
    base_var = series.variance
    if base_var <= 0:
        raise ParameterError("series has zero variance")
    ms, ratios = [], []
    for m in factors:
        m = int(m)
        if len(series) // m < 4:
            continue
        ms.append(m)
        ratios.append(series.resample(m).variance / base_var)
    return np.asarray(ms), np.asarray(ratios)


def estimate_hurst(series: RateSeries, factors=None) -> float:
    """Hurst estimate from the variance-time slope: ``H = 1 + slope/2``."""
    ms, ratios = variance_time_curve(series, factors)
    if ms.size < 3:
        raise ParameterError("not enough aggregation levels for a slope")
    slope = np.polyfit(np.log(ms), np.log(ratios), 1)[0]
    return float(1.0 + slope / 2.0)
