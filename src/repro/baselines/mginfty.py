"""Baseline: constant-rate-flow M/G/infinity model (reference [3]).

Ben Fredj et al. propose an M/G/infinity model for the *number* of active
flows on an uncongested backbone link; turning counts into rate requires
assuming every flow transmits at the same rate ``r``.  The paper notes
this "coincides with a very particular case of our model where all flows
would have exactly the same rate".

Under that assumption the total rate is ``R = r * N(t)`` with ``N``
Poisson(``lambda E[D]``), giving

* ``E[R]   = r * lambda * E[D]``
* ``Var(R) = r^2 * lambda * E[D]``.

Compared against the shot-noise model with per-flow rates ``S/D``, the
equal-rate collapse mis-estimates the variance whenever flow rates are
heterogeneous — the ablation quantified in the benchmarks.
"""

from __future__ import annotations

import numpy as np

from .._util import check_positive
from ..core.ensemble import EmpiricalEnsemble

__all__ = ["ConstantRateFlowModel"]


class ConstantRateFlowModel:
    """All flows share one transmission rate ``r`` (the [3] reduction).

    Parameters
    ----------
    arrival_rate:
        Flow arrival rate ``lambda`` (flows/second).
    mean_duration:
        ``E[D]`` (seconds).
    flow_rate:
        Common per-flow rate ``r`` (bytes/second).  The natural calibration
        from measurements is ``r = E[S] / E[D]`` (so the mean total rate
        matches Corollary 1 only when sizes and durations are
        proportional).
    """

    def __init__(
        self, arrival_rate: float, mean_duration: float, flow_rate: float
    ) -> None:
        self.arrival_rate = check_positive("arrival_rate", arrival_rate)
        self.mean_duration = check_positive("mean_duration", mean_duration)
        self.flow_rate = check_positive("flow_rate", flow_rate)

    @classmethod
    def from_flows(
        cls, sizes, durations, interval_length: float
    ) -> "ConstantRateFlowModel":
        """Calibrate from measured flows: ``r = E[S]/E[D]``."""
        ensemble = EmpiricalEnsemble(sizes, durations)
        interval_length = check_positive("interval_length", interval_length)
        return cls(
            arrival_rate=len(ensemble) / interval_length,
            mean_duration=ensemble.mean_duration,
            flow_rate=ensemble.mean_size / ensemble.mean_duration,
        )

    def __repr__(self) -> str:
        return (
            f"ConstantRateFlowModel(lambda={self.arrival_rate:g}, "
            f"E[D]={self.mean_duration:g}, r={self.flow_rate:g})"
        )

    @property
    def mean_active_flows(self) -> float:
        return self.arrival_rate * self.mean_duration

    @property
    def mean(self) -> float:
        """``r * lambda * E[D]`` bytes/second."""
        return self.flow_rate * self.mean_active_flows

    @property
    def variance(self) -> float:
        """``r^2 * lambda * E[D]`` — Poisson counts scaled by r^2."""
        return self.flow_rate**2 * self.mean_active_flows

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def coefficient_of_variation(self) -> float:
        """``1 / sqrt(lambda E[D])`` — depends only on the active count."""
        return self.std / self.mean
