"""Baseline: memoryless packet-level (compound Poisson) model.

The classical Markovian approach the paper's related-work section warns
about: packets arrive as a Poisson process with iid sizes, ignoring flow
structure entirely.  The Delta-averaged rate then has variance
``lambda_p E[P^2] / Delta`` — *independent samples* across bins — which
badly under-estimates burstiness at flow timescales because all the
correlation induced by flow durations (Theorem 2) is missing.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive
from ..stats.timeseries import RateSeries
from ..trace.packet import PacketTrace

__all__ = ["PoissonPacketModel"]


class PoissonPacketModel:
    """Poisson packet arrivals, iid packet sizes.

    Parameters
    ----------
    packet_rate:
        Packets per second.
    mean_size / mean_square_size:
        First two moments of the packet size (bytes).
    """

    def __init__(
        self, packet_rate: float, mean_size: float, mean_square_size: float
    ) -> None:
        self.packet_rate = check_positive("packet_rate", packet_rate)
        self.mean_size = check_positive("mean_size", mean_size)
        self.mean_square_size = check_positive("mean_square_size", mean_square_size)

    @classmethod
    def from_trace(cls, trace: PacketTrace) -> "PoissonPacketModel":
        """Calibrate on a packet trace (rate + size moments)."""
        sizes = trace.packets["size"].astype(np.float64)
        return cls(
            packet_rate=len(trace) / trace.duration,
            mean_size=float(sizes.mean()),
            mean_square_size=float(np.mean(sizes**2)),
        )

    def __repr__(self) -> str:
        return (
            f"PoissonPacketModel(rate={self.packet_rate:g} pkt/s, "
            f"E[P]={self.mean_size:g} B)"
        )

    @property
    def mean(self) -> float:
        """Mean rate in bytes/second."""
        return self.packet_rate * self.mean_size

    def variance(self, delta: float) -> float:
        """Variance of the Delta-averaged rate: ``lambda_p E[P^2]/Delta``."""
        delta = check_positive("delta", delta)
        return self.packet_rate * self.mean_square_size / delta

    def coefficient_of_variation(self, delta: float) -> float:
        return float(np.sqrt(self.variance(delta))) / self.mean

    def autocorrelation(self, n_lags: int) -> np.ndarray:
        """Zero at every positive lag: bins are independent."""
        return np.zeros(int(n_lags))

    def generate(self, duration: float, delta: float, *, rng=None) -> RateSeries:
        """Simulate the binned rate directly (normal bin volumes are not
        needed — bins are independent compound-Poisson sums)."""
        duration = check_positive("duration", duration)
        delta = check_positive("delta", delta)
        rng = as_rng(rng)
        n_bins = int(np.floor(duration / delta))
        counts = rng.poisson(self.packet_rate * delta, n_bins)
        # sample sizes bin by bin via normal approximation when large
        volumes = np.empty(n_bins)
        var_size = max(self.mean_square_size - self.mean_size**2, 0.0)
        big = counts > 256
        volumes[big] = counts[big] * self.mean_size + rng.normal(
            0.0, np.sqrt(np.maximum(counts[big] * var_size, 1e-12))
        )
        for i in np.flatnonzero(~big):
            k = int(counts[i])
            if k == 0:
                volumes[i] = 0.0
            else:
                # lognormal-ish positive sizes with matching two moments
                sigma2 = np.log(
                    max(self.mean_square_size / self.mean_size**2, 1.0 + 1e-9)
                )
                mu = np.log(self.mean_size) - sigma2 / 2.0
                volumes[i] = float(
                    np.sum(rng.lognormal(mu, np.sqrt(sigma2), k))
                )
        return RateSeries(np.maximum(volumes, 0.0) / delta, delta)
