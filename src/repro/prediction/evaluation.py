"""Predictor evaluation — the error metric and protocol of Table II.

The paper reports, per prediction interval ``theta``, the normalised RMS
one-step error

.. math::  e = \\sqrt{E[(\\hat R_k - R_k)^2]} \\,/\\, E[R]

for (i) the Moving Average predictor trained on the measured samples and
(ii) the predictor derived from the model's autocovariance, together with
the selected order ``M``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import PredictionError
from ..stats.timeseries import RateSeries
from .predictor import EmpiricalPredictor, LinearPredictor, ModelBasedPredictor

__all__ = [
    "prediction_error",
    "PredictionReport",
    "evaluate_predictor",
    "select_order_by_validation",
    "Table2Row",
    "compare_predictors",
]


def prediction_error(predictor: LinearPredictor, series: RateSeries) -> float:
    """Normalised RMS one-step error of ``predictor`` on ``series``."""
    predictions = predictor.predict_series(series.values)
    actual = series.values[predictor.order:]
    mse = float(np.mean((predictions - actual) ** 2))
    mean = series.mean
    if mean <= 0:
        raise PredictionError("series mean must be positive")
    return float(np.sqrt(mse)) / mean


@dataclass(frozen=True)
class PredictionReport:
    """Evaluation result for one predictor on one series."""

    order: int
    error: float
    sample_interval: float
    kind: str


def evaluate_predictor(
    predictor: LinearPredictor, series: RateSeries, kind: str = "linear"
) -> PredictionReport:
    """Package :func:`prediction_error` with the predictor's metadata."""
    return PredictionReport(
        order=predictor.order,
        error=prediction_error(predictor, series),
        sample_interval=predictor.sample_interval,
        kind=kind,
    )


def select_order_by_validation(
    make_predictor, series: RateSeries, max_order: int = 12
) -> tuple[int, float]:
    """The paper's order rule applied to realised errors.

    ``make_predictor(order)`` must return a predictor of that order.
    Orders grow from 1; the first order whose realised error exceeds its
    predecessor's stops the search, and the predecessor wins.
    """
    max_order = int(max_order)
    if max_order < 1:
        raise PredictionError("max_order must be >= 1")
    best_order, best_error = 0, np.inf
    for order in range(1, max_order + 1):
        if len(series) <= order + 1:
            break
        try:
            error = prediction_error(make_predictor(order), series)
        except PredictionError:
            break
        if error >= best_error:
            break
        best_order, best_error = order, error
    if best_order == 0:
        raise PredictionError("could not evaluate any predictor order")
    return best_order, best_error


@dataclass(frozen=True)
class Table2Row:
    """One column of the paper's Table II for one prediction interval."""

    sample_interval: float
    empirical_order: int
    empirical_error: float
    model_order: int
    model_error: float


def compare_predictors(
    series_by_interval: dict[float, RateSeries],
    model,
    *,
    max_order: int = 12,
) -> list[Table2Row]:
    """Build Table II: empirical vs model-based predictors per interval.

    ``series_by_interval`` maps each prediction interval ``theta`` to the
    rate series sampled at that interval (e.g. via
    :meth:`RateSeries.resample`); ``model`` provides the Theorem 2
    autocovariance.
    """
    rows = []
    for theta in sorted(series_by_interval):
        series = series_by_interval[theta]
        emp_order, emp_error = select_order_by_validation(
            lambda order: EmpiricalPredictor(series, order=order),
            series,
            max_order,
        )
        model_order, model_error = select_order_by_validation(
            lambda order: ModelBasedPredictor(model, theta, order=order),
            series,
            max_order,
        )
        rows.append(
            Table2Row(
                sample_interval=float(theta),
                empirical_order=emp_order,
                empirical_error=emp_error,
                model_order=model_order,
                model_error=model_error,
            )
        )
    return rows
