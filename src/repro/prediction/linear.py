"""Linear MMSE prediction machinery — section VII-B of the paper.

The paper predicts the next sample of the (sampled, averaged) total rate
as a linear combination of the last ``M`` samples.  The optimal
coefficients solve the *normal equations* of linear prediction theory
([14] in the paper):

.. math::

   \\sum_{j=0}^{M-1} a_j\\, \\rho(|i - j|) = \\rho(i + 1),
   \\qquad i = 0, \\dots, M-1,

where ``rho`` is the lag autocorrelation of the sampled process.  The
system is Toeplitz, so we also provide the Levinson-Durbin recursion,
which yields the coefficients *and* the theoretical mean-square error for
every order up to ``M`` in O(M^2) — handy for the paper's order-selection
rule (grow ``M`` until the error stops improving).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg

from .._util import as_1d_float_array
from ..exceptions import PredictionError

__all__ = [
    "normal_equations",
    "levinson_durbin",
    "LevinsonResult",
    "theoretical_mse",
]


def normal_equations(rho, order: int) -> np.ndarray:
    """Solve the normal equations for prediction coefficients.

    Parameters
    ----------
    rho:
        Autocorrelation sequence ``rho[0..K]`` with ``rho[0] == 1`` and
        ``K >= order`` (lags in units of the sampling interval).
    order:
        Number of past samples ``M`` used by the predictor.

    Returns
    -------
    Coefficients ``a[0..M-1]``; the prediction is
    ``sum_i a[i] * (x[k-i] - mean) + mean``.
    """
    rho = as_1d_float_array("rho", rho)
    order = int(order)
    if order < 1:
        raise PredictionError(f"order must be >= 1, got {order}")
    if rho.size < order + 1:
        raise PredictionError(
            f"need rho up to lag {order}, got only {rho.size - 1}"
        )
    if not np.isclose(rho[0], 1.0):
        raise PredictionError(f"rho[0] must be 1, got {rho[0]}")
    first_column = rho[:order]
    rhs = rho[1: order + 1]
    try:
        return linalg.solve_toeplitz(first_column, rhs)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - rare
        raise PredictionError(f"singular normal equations: {exc}") from exc


@dataclass(frozen=True)
class LevinsonResult:
    """Levinson-Durbin output for all orders ``1..M``.

    ``coefficients[m]`` are the order-(m+1) predictor coefficients and
    ``error_power[m]`` the corresponding theoretical one-step MSE divided
    by the process variance (so 1.0 means no predictability).
    """

    coefficients: list[np.ndarray]
    error_power: np.ndarray

    @property
    def max_order(self) -> int:
        return len(self.coefficients)

    def best_order(self, rel_tol: float = 1e-9) -> int:
        """The paper's rule: the lowest order preceding an error increase.

        An improvement smaller than ``rel_tol`` (relative) counts as no
        improvement, so numerically flat errors stop the search.  If the
        error keeps decreasing, the largest order wins.
        """
        errors = self.error_power
        for m in range(1, errors.size):
            if errors[m] >= errors[m - 1] * (1.0 - rel_tol):
                return m  # orders are 1-based: errors[m-1] is order m
        return int(errors.size)


def levinson_durbin(rho, max_order: int) -> LevinsonResult:
    """Levinson-Durbin recursion on an autocorrelation sequence."""
    rho = as_1d_float_array("rho", rho)
    max_order = int(max_order)
    if max_order < 1:
        raise PredictionError(f"max_order must be >= 1, got {max_order}")
    if rho.size < max_order + 1:
        raise PredictionError(
            f"need rho up to lag {max_order}, got {rho.size - 1}"
        )
    if not np.isclose(rho[0], 1.0):
        raise PredictionError(f"rho[0] must be 1, got {rho[0]}")

    coefficients: list[np.ndarray] = []
    errors = np.empty(max_order)
    a = np.zeros(0)
    err = 1.0
    for m in range(1, max_order + 1):
        if err <= 0:
            # process perfectly predictable at a lower order; freeze
            coefficients.append(coefficients[-1].copy())
            errors[m - 1] = 0.0
            continue
        acc = rho[m] - (np.dot(a, rho[m - 1: 0: -1]) if a.size else 0.0)
        k = acc / err
        new_a = np.empty(m)
        new_a[: m - 1] = a - k * a[::-1]
        new_a[m - 1] = k
        a = new_a
        err = err * (1.0 - k * k)
        coefficients.append(a.copy())
        errors[m - 1] = max(err, 0.0)
    return LevinsonResult(coefficients=coefficients, error_power=errors)


def theoretical_mse(rho, coefficients, variance: float = 1.0) -> float:
    """One-step MSE of a linear predictor with the given coefficients.

    ``E[(x_hat - x)^2] = sigma^2 (1 - 2 a.r + a.T R a)`` where ``r`` is
    ``rho[1..M]`` and ``R`` the Toeplitz autocorrelation matrix.
    """
    rho = as_1d_float_array("rho", rho)
    a = as_1d_float_array("coefficients", coefficients)
    m = a.size
    if rho.size < m + 1:
        raise PredictionError(f"need rho up to lag {m}")
    r = rho[1: m + 1]
    big_r = linalg.toeplitz(rho[:m])
    mse_ratio = 1.0 - 2.0 * float(a @ r) + float(a @ big_r @ a)
    return float(variance) * max(mse_ratio, 0.0)
