"""Section VII-B: linear prediction of the total rate."""

from .evaluation import (
    PredictionReport,
    Table2Row,
    compare_predictors,
    evaluate_predictor,
    prediction_error,
    select_order_by_validation,
)
from .linear import LevinsonResult, levinson_durbin, normal_equations, theoretical_mse
from .predictor import EmpiricalPredictor, LinearPredictor, ModelBasedPredictor

__all__ = [
    "normal_equations",
    "levinson_durbin",
    "LevinsonResult",
    "theoretical_mse",
    "LinearPredictor",
    "ModelBasedPredictor",
    "EmpiricalPredictor",
    "prediction_error",
    "PredictionReport",
    "evaluate_predictor",
    "select_order_by_validation",
    "Table2Row",
    "compare_predictors",
]
