"""Rate predictors: model-driven and measurement-driven (section VII-B).

Two ways to obtain the autocorrelation the normal equations need:

* :class:`ModelBasedPredictor` computes it from Theorem 2 — i.e. from flow
  statistics only.  The paper's selling point: flow samples are plentiful,
  so the autocorrelation (hence the predictor) stays accurate even for
  long prediction intervals where rate samples are scarce.
* :class:`EmpiricalPredictor` estimates it from past rate samples — the
  natural baseline the paper compares against (Table II).

Predictions are computed on centred samples:
``x_hat[k+1] = mean + sum_i a[i] (x[k-i] - mean)``.
"""

from __future__ import annotations

import numpy as np

from .._util import as_1d_float_array, check_positive
from ..exceptions import PredictionError
from ..stats.correlation import autocovariance_series
from ..stats.timeseries import RateSeries
from .linear import levinson_durbin, normal_equations

__all__ = ["LinearPredictor", "ModelBasedPredictor", "EmpiricalPredictor"]


class LinearPredictor:
    """One-step linear predictor with fixed coefficients.

    Parameters
    ----------
    coefficients:
        ``a[0..M-1]``; ``a[0]`` multiplies the most recent sample.
    mean:
        Process mean used for centring.
    sample_interval:
        Spacing of the samples this predictor was designed for (seconds);
        informational.
    """

    def __init__(self, coefficients, mean: float, sample_interval: float) -> None:
        self.coefficients = as_1d_float_array("coefficients", coefficients)
        self.mean = float(mean)
        self.sample_interval = check_positive("sample_interval", sample_interval)

    @property
    def order(self) -> int:
        return int(self.coefficients.size)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(order={self.order}, "
            f"interval={self.sample_interval:g}s)"
        )

    def predict_next(self, history) -> float:
        """Predict the sample following ``history`` (oldest first)."""
        history = as_1d_float_array("history", history)
        if history.size < self.order:
            raise PredictionError(
                f"need at least {self.order} samples, got {history.size}"
            )
        recent = history[-self.order:][::-1] - self.mean
        return self.mean + float(np.dot(self.coefficients, recent))

    def predict_series(self, values) -> np.ndarray:
        """One-step-ahead predictions along a sample path.

        Returns predictions aligned with ``values[order:]``: entry ``k``
        predicts ``values[order + k]`` from the preceding ``order``
        samples.  Fully vectorised (sliding dot product).
        """
        x = as_1d_float_array("values", values) - self.mean
        m = self.order
        if x.size <= m:
            raise PredictionError(
                f"series of {x.size} samples too short for order {m}"
            )
        window = np.lib.stride_tricks.sliding_window_view(x, m)[:-1]
        preds = window @ self.coefficients[::-1]
        return self.mean + preds


class ModelBasedPredictor(LinearPredictor):
    """Predictor whose autocorrelation comes from the shot-noise model.

    Built from any object exposing ``autocovariance(lags)`` and ``mean``
    (e.g. :class:`repro.core.PoissonShotNoiseModel`); the lag grid is
    ``sample_interval * (0..max_order)`` and the order is selected by the
    paper's rule unless given explicitly.
    """

    def __init__(
        self,
        model,
        sample_interval: float,
        *,
        order: int | None = None,
        max_order: int = 12,
    ) -> None:
        sample_interval = check_positive("sample_interval", sample_interval)
        max_order = int(max_order)
        if max_order < 1:
            raise PredictionError("max_order must be >= 1")
        lags = sample_interval * np.arange(max_order + 1)
        gamma = np.asarray(model.autocovariance(lags), dtype=np.float64)
        if gamma[0] <= 0:
            raise PredictionError("model variance must be positive")
        rho = gamma / gamma[0]
        self.rho = rho
        if order is None:
            levinson = levinson_durbin(rho, max_order)
            order = levinson.best_order()
        coefficients = normal_equations(rho, int(order))
        super().__init__(coefficients, float(model.mean), sample_interval)


class EmpiricalPredictor(LinearPredictor):
    """Predictor trained on past rate samples (the Table II baseline)."""

    def __init__(
        self,
        series: RateSeries,
        *,
        order: int | None = None,
        max_order: int = 12,
    ) -> None:
        max_order = int(max_order)
        if max_order < 1:
            raise PredictionError("max_order must be >= 1")
        usable = min(max_order, len(series) - 2)
        if usable < 1:
            raise PredictionError(
                f"series of {len(series)} samples too short to train on"
            )
        gamma = autocovariance_series(series.values, usable)
        if gamma[0] <= 0:
            raise PredictionError("series has zero variance")
        rho = gamma / gamma[0]
        self.rho = rho
        if order is None:
            levinson = levinson_durbin(rho, usable)
            order = levinson.best_order()
        coefficients = normal_equations(rho, int(order))
        super().__init__(coefficients, series.mean, series.delta)
