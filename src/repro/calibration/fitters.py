"""Per-family fitters over accumulator state, and model selection.

Every fitter consumes only the bounded-memory sufficient statistics of a
:class:`~repro.calibration.accumulators.CalibrationAccumulator` — the
``log10(size)`` histogram, the exact byte total and the exact top-k tail
— never the raw flow array, so fitting a multi-gigabyte archive costs
the same as fitting a thousand flows.  Likelihoods are *grouped* (bin
probabilities from CDF differences), the textbook treatment for
histogram data; with the default 512 bins over twelve decades the
grouping error is far below the sampling noise of any real trace.

The mixture fitter is a binned EM with a threshold grid and
``SeedSequence``-seeded random restarts: for a fixed ``seed`` the
restart initialisations are reproducible, so the chosen parameters are
bitwise identical across runs, chunkings and execution backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize_scalar

from ..exceptions import FittingError, ParameterError
from .accumulators import CalibrationAccumulator
from .families import (
    CALIBRATION_FAMILIES,
    build_distribution,
    family_cdf,
    family_ppf,
    get_family,
)

__all__ = [
    "SELECTION_CRITERIA",
    "FamilyFit",
    "fit_all_families",
    "fit_family",
    "grouped_log_likelihood",
    "select_best",
    "tail_qq",
]

#: Model-selection criteria ``select_best`` understands.
SELECTION_CRITERIA = ("bic", "aic", "loglik", "ks")

_ALPHA_BOUNDS = (0.05, 25.0)
_EM_ITERATIONS = 60
_TINY = 1e-300


@dataclass(frozen=True)
class FamilyFit:
    """One family's fitted parameters and goodness-of-fit diagnostics."""

    family: str
    params: dict
    n_params: int
    log_likelihood: float
    aic: float
    bic: float
    ks_statistic: float
    tail_qq_rmse_log10: float
    tail_qq_correlation: float

    def build(self):
        """The ``repro.netsim.sizes`` distribution behind this fit."""
        return build_distribution(self.family, self.params)

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "params": {k: float(v) for k, v in self.params.items()},
            "n_params": self.n_params,
            "log_likelihood": self.log_likelihood,
            "aic": self.aic,
            "bic": self.bic,
            "ks_statistic": self.ks_statistic,
            "tail_qq_rmse_log10": self.tail_qq_rmse_log10,
            "tail_qq_correlation": self.tail_qq_correlation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FamilyFit":
        return cls(**data)


# -- goodness of fit ------------------------------------------------------


def grouped_log_likelihood(
    acc: CalibrationAccumulator, family: str, params: dict
) -> float:
    """Grouped (binned) log-likelihood of a fitted family."""
    acc.require_data()
    cdf = family_cdf(family, params, acc.edges)
    probs = np.clip(np.diff(cdf), _TINY, None)
    mask = acc.counts > 0
    return float(np.sum(acc.counts[mask] * np.log(probs[mask])))


def _binned_ks(acc: CalibrationAccumulator, family: str, params: dict) -> float:
    """KS distance between binned ECDF and model CDF at the bin edges."""
    ecdf = acc.empirical_cdf_at_edges()
    model = family_cdf(family, params, acc.edges[1:])
    return float(np.max(np.abs(ecdf - model)))


def tail_qq(
    acc: CalibrationAccumulator, family: str, params: dict
) -> tuple[float, float]:
    """Tail QQ diagnostics on the exact top-k sizes.

    Compares the observed ``k`` largest flows against the model
    quantiles at their plotting positions; returns
    ``(rmse_log10, correlation)`` in log10 space — the axes of the
    paper-style tail QQ plot.
    """
    acc.require_data()
    tail = acc.tail[acc.tail > 0.0]
    if tail.size < 8:
        return float("nan"), float("nan")
    ranks = np.arange(tail.size, dtype=np.float64)  # 0 = largest
    positions = 1.0 - (ranks + 0.5) / acc.n
    model = family_ppf(family, params, positions)
    observed_log = np.log10(tail)
    model_log = np.log10(np.clip(model, _TINY, None))
    rmse = float(np.sqrt(np.mean((observed_log - model_log) ** 2)))
    if np.std(observed_log) < 1e-12 or np.std(model_log) < 1e-12:
        correlation = 0.0
    else:
        correlation = float(np.corrcoef(observed_log, model_log)[0, 1])
    return rmse, correlation


# -- per-family fitters ---------------------------------------------------


def _weighted_log_moments(
    weights: np.ndarray, log_mid: np.ndarray
) -> tuple[float, float]:
    total = float(weights.sum())
    mu = float(np.sum(weights * log_mid) / total)
    var = float(np.sum(weights * (log_mid - mu) ** 2) / total)
    return mu, max(var, 1e-8)


def _fit_lognormal(acc: CalibrationAccumulator) -> dict:
    """Closed-form weighted MLE on the natural-log bin midpoints."""
    mu, var = _weighted_log_moments(
        acc.counts.astype(np.float64), acc.log_midpoints
    )
    return {"median": float(np.exp(mu)), "sigma": float(np.sqrt(var))}


def _fit_exponential(acc: CalibrationAccumulator) -> dict:
    """The exponential MLE is the exact mean — integer-exact here."""
    return {"mean_bytes": acc.mean_size}


def _fit_pareto(acc: CalibrationAccumulator) -> dict:
    """Bounded-Pareto shape by 1-D grouped-likelihood maximisation."""
    lo = max(acc.min_size, 1.0)
    hi = max(acc.max_size, lo * (1.0 + 1e-9))

    def negative_ll(alpha: float) -> float:
        params = {"alpha": float(alpha), "minimum": lo, "maximum": hi}
        return -grouped_log_likelihood(acc, "pareto", params)

    result = minimize_scalar(
        negative_ll, bounds=_ALPHA_BOUNDS, method="bounded",
        options={"xatol": 1e-6},
    )
    return {"alpha": float(result.x), "minimum": lo, "maximum": hi}


def _lognormal_pdf(x, log_x, mu, sigma):
    z = (log_x - mu) / sigma
    return np.exp(-0.5 * z * z) / (x * sigma * np.sqrt(2.0 * np.pi))


def _pareto_pdf(x, alpha, lo, hi):
    norm = 1.0 - (lo / hi) ** alpha
    density = alpha * lo**alpha * x ** (-alpha - 1.0) / norm
    return np.where((x >= lo) & (x <= hi), density, 0.0)


def _mixture_thresholds(acc: CalibrationAccumulator) -> list[float]:
    """Candidate body/tail split points, snapped to bin quantiles."""
    thresholds = []
    for q in (0.5, 0.7, 0.8, 0.85, 0.9, 0.95, 0.98):
        t = acc.quantile(q)
        if acc.min_size < t < acc.max_size and t not in thresholds:
            thresholds.append(t)
    if not thresholds:
        thresholds = [float(np.sqrt(acc.min_size * acc.max_size))]
    return thresholds


def _em_once(
    acc: CalibrationAccumulator,
    threshold: float,
    rng: np.random.Generator,
) -> dict:
    """One EM run for the lognormal-body / Pareto-tail mixture."""
    counts = acc.counts.astype(np.float64)
    occupied = counts > 0
    c = counts[occupied]
    log_x = acc.log_midpoints[occupied]
    x = np.exp(log_x)
    n = float(c.sum())
    hi = max(acc.max_size, threshold * (1.0 + 1e-9))

    below = x < threshold
    weight0 = float(c[below].sum()) / n if below.any() else 0.5
    body_weight = float(
        np.clip(weight0 * (1.0 + 0.1 * rng.standard_normal()), 0.05, 0.95)
    )
    if below.any():
        mu, var = _weighted_log_moments(c[below], log_x[below])
    else:
        mu, var = _weighted_log_moments(c, log_x)
    mu += 0.2 * rng.standard_normal()
    sigma = float(np.sqrt(var)) * float(
        np.clip(1.0 + 0.2 * rng.standard_normal(), 0.5, 2.0)
    )
    sigma = max(sigma, 0.05)
    alpha = 1.0 + 1.5 * float(rng.random())
    log_threshold = np.log(threshold)

    for _ in range(_EM_ITERATIONS):
        body_density = _lognormal_pdf(x, log_x, mu, sigma)
        tail_density = _pareto_pdf(x, alpha, threshold, hi)
        numerator = body_weight * body_density
        denominator = numerator + (1.0 - body_weight) * tail_density
        resp = numerator / np.maximum(denominator, _TINY)
        body_mass = c * resp
        w1 = float(body_mass.sum())
        if w1 <= 0.0 or w1 >= n:
            break
        body_weight = float(np.clip(w1 / n, 1e-3, 1.0 - 1e-3))
        mu = float(np.sum(body_mass * log_x) / w1)
        var = float(np.sum(body_mass * (log_x - mu) ** 2) / w1)
        sigma = max(float(np.sqrt(max(var, 1e-8))), 0.05)
        tail_mass = c * (1.0 - resp)
        in_tail = x >= threshold
        excess = float(
            np.sum(tail_mass[in_tail] * (log_x[in_tail] - log_threshold))
        )
        total_tail = float(tail_mass[in_tail].sum())
        if total_tail > 0.0 and excess > 0.0:
            alpha = float(np.clip(total_tail / excess, *_ALPHA_BOUNDS))

    return {
        "body_weight": body_weight,
        "median": float(np.exp(mu)),
        "sigma": sigma,
        "alpha": alpha,
        "minimum": float(threshold),
        "maximum": float(hi),
    }


def _fit_lognormal_pareto(
    acc: CalibrationAccumulator, *, restarts: int, seed: int
) -> dict:
    """Binned EM over a threshold grid with seeded random restarts.

    Restart initialisations come from ``SeedSequence(seed).spawn``, so
    the winning parameters are a pure function of the accumulator state
    and the seed — reproducible across chunkings and backends.
    """
    if restarts < 1:
        raise ParameterError(f"restarts must be >= 1, got {restarts!r}")
    children = np.random.SeedSequence(seed).spawn(restarts)
    best_params = None
    best_ll = -np.inf
    for threshold in _mixture_thresholds(acc):
        for child in children:
            params = _em_once(
                acc, threshold, np.random.Generator(np.random.PCG64(child))
            )
            try:
                ll = grouped_log_likelihood(acc, "lognormal_pareto", params)
            except ParameterError:
                continue
            if ll > best_ll:
                best_ll = ll
                best_params = params
    if best_params is None:
        raise FittingError(
            "lognormal_pareto EM failed to produce a valid fit for any "
            "threshold/restart combination"
        )
    return best_params


_FITTERS = {
    "lognormal": lambda acc, restarts, seed: _fit_lognormal(acc),
    "pareto": lambda acc, restarts, seed: _fit_pareto(acc),
    "exponential": lambda acc, restarts, seed: _fit_exponential(acc),
    "lognormal_pareto": lambda acc, restarts, seed: _fit_lognormal_pareto(
        acc, restarts=restarts, seed=seed
    ),
}


# -- the fitting + selection drivers --------------------------------------


def fit_family(
    acc: CalibrationAccumulator,
    family: str,
    *,
    restarts: int = 4,
    seed: int = 0,
) -> FamilyFit:
    """Fit one registered family and score its goodness of fit."""
    acc.require_data()
    spec = get_family(family)
    try:
        fitter = _FITTERS[family]
    except KeyError:
        raise ParameterError(
            f"family {family!r} is registered but has no fitter; "
            f"fittable families: {tuple(sorted(_FITTERS))}"
        ) from None
    params = fitter(acc, restarts, seed)
    ll = grouped_log_likelihood(acc, family, params)
    k = spec.n_params
    rmse, correlation = tail_qq(acc, family, params)
    return FamilyFit(
        family=family,
        params=params,
        n_params=k,
        log_likelihood=ll,
        aic=float(2.0 * k - 2.0 * ll),
        bic=float(k * np.log(acc.n) - 2.0 * ll),
        ks_statistic=_binned_ks(acc, family, params),
        tail_qq_rmse_log10=rmse,
        tail_qq_correlation=correlation,
    )


def fit_all_families(
    acc: CalibrationAccumulator,
    families=CALIBRATION_FAMILIES,
    *,
    restarts: int = 4,
    seed: int = 0,
) -> tuple[FamilyFit, ...]:
    """Fit every requested family against the same accumulator."""
    return tuple(
        fit_family(acc, family, restarts=restarts, seed=seed)
        for family in families
    )


def select_best(fits, criterion: str = "bic") -> FamilyFit:
    """Pick the winning family under a selection criterion."""
    fits = tuple(fits)
    if not fits:
        raise ParameterError("no family fits to select from")
    if criterion not in SELECTION_CRITERIA:
        raise ParameterError(
            f"selection criterion must be one of {SELECTION_CRITERIA}, "
            f"got {criterion!r}"
        )
    if criterion == "loglik":
        return max(fits, key=lambda fit: fit.log_likelihood)
    if criterion == "ks":
        return min(fits, key=lambda fit: fit.ks_statistic)
    return min(fits, key=lambda fit: getattr(fit, criterion))
