"""Trace → model calibration (the paper's fitting loop, out-of-core).

The subsystem that closes the reproduction's loop: where the rest of
the repo *replays* hand-written scenario specs, ``repro.calibration``
consumes measured traffic — raw arrays, measured
:class:`~repro.flows.FlowSet` objects, or multi-gigabyte NetFlow v5 /
IPFIX / pcap / ``.rptr`` archives — fits the paper's flow-size families
to it in bounded memory, selects the best model, and emits a frozen,
runnable :class:`~repro.pipeline.ScenarioSpec` whose synthesised λ and
E[S] reproduce the source trace.

Layering: accumulators (mergeable sufficient statistics) → families
(the registered size laws) → fitters (binned MLE/EM + model selection)
→ calibrator (the drivers) → report (the typed result + spec emitter)
→ validate (the closed loop).
"""

from .accumulators import (
    DEFAULT_BINS,
    DEFAULT_TAIL_K,
    DEFAULT_TIME_BINS,
    CalibrationAccumulator,
)
from .calibrator import (
    DEFAULT_TAIL_QUANTILES,
    calibrate_accumulator,
    calibrate_archive,
    calibrate_flows,
    calibrate_sizes,
)
from .families import (
    CALIBRATION_FAMILIES,
    Family,
    build_distribution,
    family_cdf,
    family_ppf,
    get_family,
    register_family,
    scale_params,
)
from .fitters import (
    SELECTION_CRITERIA,
    FamilyFit,
    fit_all_families,
    fit_family,
    grouped_log_likelihood,
    select_best,
    tail_qq,
)
from .report import CalibrationReport, DiurnalProfile, wire_bytes_per_flow
from .validate import ClosedLoopReport, validate_fitted_spec, wire_sizes

__all__ = [
    "CALIBRATION_FAMILIES",
    "DEFAULT_BINS",
    "DEFAULT_TAIL_K",
    "DEFAULT_TAIL_QUANTILES",
    "DEFAULT_TIME_BINS",
    "SELECTION_CRITERIA",
    "CalibrationAccumulator",
    "CalibrationReport",
    "ClosedLoopReport",
    "DiurnalProfile",
    "Family",
    "FamilyFit",
    "build_distribution",
    "calibrate_accumulator",
    "calibrate_archive",
    "calibrate_flows",
    "calibrate_sizes",
    "family_cdf",
    "family_ppf",
    "fit_all_families",
    "fit_family",
    "get_family",
    "grouped_log_likelihood",
    "register_family",
    "scale_params",
    "select_best",
    "tail_qq",
    "validate_fitted_spec",
    "wire_bytes_per_flow",
    "wire_sizes",
]
