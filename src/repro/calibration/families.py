"""The registered flow-size families calibration can fit and select.

Each family is a named, fixed-arity parameterisation over the size laws
in :mod:`repro.netsim.sizes`.  The registry keeps the calibration layer
open: :func:`register_family` adds a new law (with its fitter living in
:mod:`repro.calibration.fitters`) and model selection picks it up
automatically.

All four built-in families are *scale-closed* — scaling every length
parameter by ``c`` scales the random variable by exactly ``c`` (the
underlying uniform/normal draws are unchanged) — which is what lets
:meth:`CalibrationReport.to_scenario_spec` deflate a fitted wire-byte
law into the payload law the synthesiser needs without changing its
shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import ndtr, ndtri

from ..exceptions import ParameterError
from ..netsim.sizes import (
    BoundedPareto,
    Exponential,
    LogNormal,
    LognormalParetoMixture,
)

__all__ = [
    "CALIBRATION_FAMILIES",
    "Family",
    "build_distribution",
    "family_cdf",
    "family_ppf",
    "get_family",
    "register_family",
    "scale_params",
]


@dataclass(frozen=True)
class Family:
    """One fittable flow-size law: its name, arity and parameter names."""

    name: str
    n_params: int
    param_names: tuple[str, ...]


_FAMILIES: dict[str, Family] = {}


def register_family(family: Family) -> Family:
    """Register a size-law family for fitting and model selection."""
    if family.name in _FAMILIES:
        raise ParameterError(
            f"size-law family {family.name!r} is already registered"
        )
    _FAMILIES[family.name] = family
    return family


def get_family(name: str) -> Family:
    try:
        return _FAMILIES[name]
    except KeyError:
        raise ParameterError(
            f"unknown size-law family {name!r}; registered families: "
            f"{tuple(sorted(_FAMILIES))}"
        ) from None


register_family(Family("lognormal", 2, ("median", "sigma")))
register_family(Family("pareto", 3, ("alpha", "minimum", "maximum")))
register_family(Family("exponential", 1, ("mean_bytes",)))
register_family(
    Family(
        "lognormal_pareto",
        5,
        ("body_weight", "median", "sigma", "alpha", "minimum", "maximum"),
    )
)

#: The built-in families, in fitting order.
CALIBRATION_FAMILIES = ("lognormal", "pareto", "exponential", "lognormal_pareto")


def _require_params(name: str, params: dict) -> dict:
    family = get_family(name)
    missing = [p for p in family.param_names if p not in params]
    if missing:
        raise ParameterError(
            f"family {name!r} needs parameters {family.param_names}, "
            f"missing {tuple(missing)}"
        )
    return params


def build_distribution(name: str, params: dict):
    """Materialise the ``repro.netsim.sizes`` law behind a fitted family."""
    params = _require_params(name, params)
    if name == "lognormal":
        return LogNormal(median=params["median"], sigma=params["sigma"])
    if name == "pareto":
        return BoundedPareto(
            alpha=params["alpha"],
            minimum=params["minimum"],
            maximum=params["maximum"],
        )
    if name == "exponential":
        return Exponential(mean_value=params["mean_bytes"])
    if name == "lognormal_pareto":
        return LognormalParetoMixture(
            body_weight=params["body_weight"],
            median=params["median"],
            sigma=params["sigma"],
            alpha=params["alpha"],
            minimum=params["minimum"],
            maximum=params["maximum"],
        )
    raise ParameterError(
        f"family {name!r} is registered but has no distribution builder"
    )


def scale_params(name: str, params: dict, factor: float) -> dict:
    """Scale every length parameter by ``factor`` (the wire deflation).

    Exact for all built-in families: the scaled law's draws are the
    original draws times ``factor``.
    """
    params = dict(_require_params(name, params))
    if factor <= 0.0:
        raise ParameterError(f"scale factor must be > 0, got {factor!r}")
    for key in ("median", "minimum", "maximum", "mean_bytes"):
        if key in params:
            params[key] = params[key] * factor
    return params


def family_cdf(name: str, params: dict, x) -> np.ndarray:
    """``P(S <= x)`` of a fitted family — the goodness-of-fit input."""
    params = _require_params(name, params)
    x = np.asarray(x, dtype=np.float64)
    if name == "lognormal":
        sigma = max(params["sigma"], 1e-12)
        with np.errstate(divide="ignore"):
            z = (
                np.log(np.maximum(x, 1e-300)) - np.log(params["median"])
            ) / sigma
        return np.where(x <= 0.0, 0.0, ndtr(z))
    if name == "pareto":
        return 1.0 - build_distribution(name, params).ccdf(x)
    if name == "exponential":
        mean = params["mean_bytes"]
        return np.where(x <= 0.0, 0.0, -np.expm1(-x / mean))
    if name == "lognormal_pareto":
        return build_distribution(name, params).cdf(x)
    raise ParameterError(f"family {name!r} has no CDF implementation")


def family_ppf(name: str, params: dict, q) -> np.ndarray:
    """Quantile function of a fitted family — the tail-QQ input."""
    params = _require_params(name, params)
    q = np.asarray(q, dtype=np.float64)
    if np.any(q <= 0.0) or np.any(q >= 1.0):
        raise ParameterError("quantiles must lie strictly inside (0, 1)")
    if name == "lognormal":
        return params["median"] * np.exp(params["sigma"] * ndtri(q))
    if name == "pareto":
        a = params["alpha"]
        lo, hi = params["minimum"], params["maximum"]
        ratio = (lo / hi) ** a
        return lo / (1.0 - q * (1.0 - ratio)) ** (1.0 / a)
    if name == "exponential":
        return -params["mean_bytes"] * np.log1p(-q)
    if name == "lognormal_pareto":
        # no closed form: invert the CDF on a fine log-spaced grid
        sigma = max(params["sigma"], 1e-12)
        lo = min(params["median"] * np.exp(-8.0 * sigma), params["minimum"])
        hi = max(params["median"] * np.exp(8.0 * sigma), params["maximum"])
        grid = np.logspace(np.log10(lo), np.log10(hi), 8192)
        cdf = family_cdf(name, params, grid)
        cdf = np.maximum.accumulate(cdf)  # guard fp wobble: must be monotone
        return np.interp(q, cdf, grid, left=grid[0], right=grid[-1])
    raise ParameterError(f"family {name!r} has no quantile implementation")
