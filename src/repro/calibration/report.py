"""The typed calibration result: what was measured, what was fitted.

A :class:`CalibrationReport` is the complete, JSON-serialisable record
of one trace-to-model calibration: the trace summary (flow count, byte
total, λ, E[S]), the per-family candidate fits with their diagnostics,
the winning family under the selection criterion, the diurnal arrival
profile, and the knobs that produced it (seed, binning).  It lands in
``ScenarioResult.calibration`` and the ``--report`` JSON, and —
centrally — :meth:`CalibrationReport.to_scenario_spec` turns it back
into a frozen, runnable :class:`~repro.pipeline.ScenarioSpec`:

* the fitted *wire-byte* law is deflated by a scalar so that, after the
  synthesiser re-adds per-packet header overhead, the mean wire bytes
  per flow equals the trace's ``E[S]`` (all families are scale-closed,
  so the shape is untouched), and
* the workload's target rate is set to ``8 λ E[wire]`` using the same
  seeded Monte Carlo the workload itself uses, so the synthesised
  arrival rate equals the trace's λ *exactly* by construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from .._util import as_rng
from ..exceptions import ParameterError
from ..netsim.tcp import TcpParameters
from .fitters import FamilyFit
from .families import build_distribution, scale_params

__all__ = [
    "CalibrationReport",
    "DiurnalProfile",
    "wire_bytes_per_flow",
]

#: Monte Carlo draw count and seed — MUST match
#: :meth:`repro.netsim.workloads.LinkWorkload.mean_wire_bytes_per_flow`
#: so the emitted spec's arrival rate reproduces λ exactly.
_WIRE_MC_DRAWS = 50_000
_WIRE_MC_SEED = 12345


def wire_bytes_per_flow(
    size_dist, tcp_params: TcpParameters = TcpParameters()
) -> float:
    """``E[S + header * ceil(S/mss)]`` — the workload's own seeded MC."""
    rng = as_rng(_WIRE_MC_SEED)
    sizes = np.asarray(
        size_dist.rvs(size=_WIRE_MC_DRAWS, random_state=rng),
        dtype=np.float64,
    )
    sizes = np.maximum(sizes, 40.0)
    packets = np.maximum(np.ceil(sizes / tcp_params.mss), 1.0)
    return float(np.mean(sizes + tcp_params.header_bytes * packets))


def deflate_for_wire(
    family: str,
    params: dict,
    target_wire_mean: float,
    *,
    tcp_params: TcpParameters = TcpParameters(),
    iterations: int = 12,
) -> dict:
    """Scale a fitted wire-byte law into the payload law to synthesise.

    Trace archives record *wire* octets (headers included); the
    synthesiser draws *payload* sizes and re-adds
    ``header * ceil(S/mss)`` per flow.  This solves for the scalar
    ``c`` with ``E[wire(c * S)] = target_wire_mean`` by fixed-point
    iteration on the family's own seeded Monte Carlo draws — exact
    scale-closure makes each iterate cheap and deterministic.
    """
    if target_wire_mean <= 0.0:
        raise ParameterError(
            f"target wire mean must be > 0 bytes, got {target_wire_mean!r}"
        )
    factor = 1.0
    for _ in range(iterations):
        scaled = scale_params(family, params, factor)
        wire = wire_bytes_per_flow(
            build_distribution(family, scaled), tcp_params
        )
        factor *= target_wire_mean / wire
    return scale_params(family, params, factor)


@dataclass(frozen=True)
class DiurnalProfile:
    """Arrival rate per time bin over the capture (flows/second)."""

    edges: tuple[float, ...]
    rates: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.rates) + 1:
            raise ParameterError(
                "diurnal profile needs len(edges) == len(rates) + 1, got "
                f"{len(self.edges)} edges for {len(self.rates)} rates"
            )

    @property
    def mean_rate(self) -> float:
        widths = np.diff(np.asarray(self.edges))
        total = float(widths.sum())
        return float(np.sum(np.asarray(self.rates) * widths) / total)

    @property
    def peak_to_mean(self) -> float:
        """Burstiness of the arrival process at the profile's timescale."""
        mean = self.mean_rate
        return float(max(self.rates) / mean) if mean > 0.0 else float("nan")

    def to_dict(self) -> dict:
        return {"edges": list(self.edges), "rates": list(self.rates)}

    @classmethod
    def from_dict(cls, data: dict) -> "DiurnalProfile":
        return cls(
            edges=tuple(float(v) for v in data["edges"]),
            rates=tuple(float(v) for v in data["rates"]),
        )


@dataclass(frozen=True)
class CalibrationReport:
    """Everything one calibration run learned about a trace."""

    source: str
    flow_count: int
    total_bytes: int
    duration: float
    arrival_rate: float
    mean_size: float
    mean_rate_bps: float
    family: str
    params: dict
    selection: str
    candidates: tuple[FamilyFit, ...]
    diurnal: DiurnalProfile
    tail_quantiles: tuple[tuple[float, float], ...] = ()
    seed: int = 0
    bins: int = 0
    tail_k: int = 0
    link_capacity_bps: float | None = None
    backend: str = "serial"
    workers: int = 1
    metadata: dict = field(default_factory=dict)

    @property
    def chosen(self) -> FamilyFit:
        """The winning candidate's full fit record."""
        for candidate in self.candidates:
            if candidate.family == self.family:
                return candidate
        raise ParameterError(
            f"report names family {self.family!r} but carries no such "
            "candidate fit"
        )

    def build_distribution(self):
        """The fitted (wire-byte) size law."""
        return build_distribution(self.family, self.params)

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "flow_count": self.flow_count,
            "total_bytes": self.total_bytes,
            "duration": self.duration,
            "arrival_rate": self.arrival_rate,
            "mean_size": self.mean_size,
            "mean_rate_bps": self.mean_rate_bps,
            "family": self.family,
            "params": {k: float(v) for k, v in self.params.items()},
            "selection": self.selection,
            "candidates": [fit.to_dict() for fit in self.candidates],
            "diurnal": self.diurnal.to_dict(),
            "tail_quantiles": [list(pair) for pair in self.tail_quantiles],
            "seed": self.seed,
            "bins": self.bins,
            "tail_k": self.tail_k,
            "link_capacity_bps": self.link_capacity_bps,
            "backend": self.backend,
            "workers": self.workers,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationReport":
        data = dict(data)
        data["candidates"] = tuple(
            FamilyFit.from_dict(item) for item in data.get("candidates", ())
        )
        data["diurnal"] = DiurnalProfile.from_dict(data["diurnal"])
        data["tail_quantiles"] = tuple(
            (float(q), float(v)) for q, v in data.get("tail_quantiles", ())
        )
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CalibrationReport":
        return cls.from_dict(json.loads(text))

    def summary(self) -> dict:
        """The compact stanza ``ScenarioResult.report()`` embeds."""
        chosen = self.chosen
        return {
            "source": self.source,
            "flows": self.flow_count,
            "duration_s": self.duration,
            "arrival_rate_per_s": self.arrival_rate,
            "mean_size_bytes": self.mean_size,
            "mean_rate_bps": self.mean_rate_bps,
            "family": self.family,
            "params": {k: float(v) for k, v in self.params.items()},
            "selection": self.selection,
            "bic": chosen.bic,
            "ks": chosen.ks_statistic,
            "tail_qq_rmse_log10": chosen.tail_qq_rmse_log10,
            "peak_to_mean_arrivals": self.diurnal.peak_to_mean,
            "candidates": {
                fit.family: fit.bic for fit in self.candidates
            },
        }

    # -- the spec emitter -------------------------------------------------

    def to_scenario_spec(
        self,
        *,
        name: str | None = None,
        duration: float | None = None,
        link_capacity_bps: float | None = None,
        seed: int = 0,
    ):
        """Emit a frozen, runnable ScenarioSpec reproducing this trace.

        The returned spec synthesises a link whose flow arrival rate
        equals the calibrated λ exactly (the target rate is computed
        through the same seeded Monte Carlo the workload uses) and
        whose mean wire bytes per flow matches the trace's ``E[S]`` to
        fixed-point accuracy.
        """
        from ..pipeline.spec import (
            ScenarioSpec,
            SizeDistributionSpec,
            WorkloadSpec,
        )

        payload_params = deflate_for_wire(
            self.family, self.params, self.mean_size
        )
        sizes = SizeDistributionSpec.from_family(self.family, payload_params)
        wire_mean = wire_bytes_per_flow(sizes.build())
        target_bps = 8.0 * self.arrival_rate * wire_mean
        capacity = (
            float(link_capacity_bps)
            if link_capacity_bps is not None
            else self.link_capacity_bps
        )
        if capacity is None or capacity <= target_bps:
            # headroom keeps the synthesiser's uncongested-link
            # assumption (the paper's links stay below ~50% utilisation)
            capacity = 2.0 * target_bps
        return ScenarioSpec(
            name=name or f"calibrated:{self.source}",
            seed=seed,
            workload=WorkloadSpec(
                target_mean_rate_bps=target_bps,
                link_capacity_bps=capacity,
                duration=(
                    float(duration) if duration is not None else self.duration
                ),
                name=name or f"calibrated:{self.source}",
                sizes=sizes,
            ),
        )
