"""Calibration drivers: flow arrays, FlowSets and telemetry archives.

Three entry points, one funnel:

* :func:`calibrate_sizes` — accumulate raw size/start arrays into a
  :class:`~repro.calibration.accumulators.CalibrationAccumulator`,
  optionally chunked and fanned over the ``repro.execution`` pool
  (serial / thread / process).  Because the accumulator state is
  integer-exact and merge is associative-commutative, the result is
  bitwise identical for every ``chunk`` x ``workers`` x ``backend``.
* :func:`calibrate_flows` — the same, from a measured
  :class:`~repro.flows.FlowSet` (the post-``AccountFlows`` path).
* :func:`calibrate_archive` — out-of-core over a telemetry file:
  NetFlow v5 / IPFIX archives stream their flow *records* straight into
  accumulation (no packet expansion needed — the records are the
  flows); pcap / ``.rptr`` captures are measured into flows first
  through the streaming :class:`~repro.measurement.MeasurementEngine`.

All three end in :func:`calibrate_accumulator`, which fits every
requested family, runs model selection, and assembles the
:class:`~repro.calibration.report.CalibrationReport`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..exceptions import ParameterError
from ..generation.engine import GenerationEngine
from .accumulators import (
    DEFAULT_BINS,
    DEFAULT_TAIL_K,
    DEFAULT_TIME_BINS,
    CalibrationAccumulator,
)
from .families import CALIBRATION_FAMILIES
from .fitters import fit_all_families, select_best
from .report import CalibrationReport, DiurnalProfile

__all__ = [
    "DEFAULT_TAIL_QUANTILES",
    "calibrate_accumulator",
    "calibrate_archive",
    "calibrate_flows",
    "calibrate_sizes",
]

#: Empirical size quantiles recorded in every report (closed-loop
#: validation compares the synthesised trace against these).
DEFAULT_TAIL_QUANTILES = (0.5, 0.9, 0.99, 0.999)


def _accumulate_task(item):
    """Fold one ``(sizes, starts, geometry)`` chunk into a fresh
    accumulator — module-level so the process backend can pickle it."""
    sizes, starts, duration, bins, tail_k, time_bins = item
    acc = CalibrationAccumulator(
        duration=duration, bins=bins, tail_k=tail_k, time_bins=time_bins
    )
    return acc.update(sizes, starts)


def _merge_parts(acc, parts):
    for part in parts:
        acc.merge(part)
    return acc


def calibrate_sizes(
    sizes,
    starts=None,
    *,
    duration: float,
    bins: int = DEFAULT_BINS,
    tail_k: int = DEFAULT_TAIL_K,
    time_bins: int = DEFAULT_TIME_BINS,
    chunk: int | None = None,
    workers: int = 1,
    backend: str = "serial",
) -> CalibrationAccumulator:
    """Accumulate flow sizes (and optional start times), chunked + pooled."""
    sizes = np.asarray(sizes, dtype=np.float64).ravel()
    if starts is not None:
        starts = np.asarray(starts, dtype=np.float64).ravel()
        if starts.size != sizes.size:
            raise ParameterError(
                f"sizes and starts must align, got {sizes.size} sizes vs "
                f"{starts.size} starts"
            )
    acc = CalibrationAccumulator(
        duration=duration, bins=bins, tail_k=tail_k, time_bins=time_bins
    )
    if sizes.size == 0:
        return acc
    step = int(chunk) if chunk else sizes.size
    if step < 1:
        raise ParameterError(f"chunk must be >= 1 flow, got {chunk!r}")
    items = [
        (
            sizes[i: i + step],
            None if starts is None else starts[i: i + step],
            acc.duration, acc.bins, acc.tail_k, acc.time_bins,
        )
        for i in range(0, sizes.size, step)
    ]
    if len(items) == 1 and workers == 1:
        return _accumulate_task(items[0])
    engine = GenerationEngine(workers=workers, backend=backend)
    return _merge_parts(acc, engine.map_ordered(_accumulate_task, items))


def calibrate_accumulator(
    acc: CalibrationAccumulator,
    *,
    source: str = "<arrays>",
    families=CALIBRATION_FAMILIES,
    select: str = "bic",
    restarts: int = 4,
    seed: int = 0,
    tail_quantiles=DEFAULT_TAIL_QUANTILES,
    link_capacity_bps: float | None = None,
    backend: str = "serial",
    workers: int = 1,
    metadata: dict | None = None,
) -> CalibrationReport:
    """Fit, select, and assemble the report from accumulated state."""
    acc.require_data()
    fits = fit_all_families(acc, families, restarts=restarts, seed=seed)
    best = select_best(fits, select)
    diurnal = DiurnalProfile(
        edges=tuple(float(e) for e in acc.time_edges),
        rates=tuple(float(r) for r in acc.diurnal_rates()),
    )
    return CalibrationReport(
        source=str(source),
        flow_count=acc.n,
        total_bytes=acc.total_bytes,
        duration=acc.duration,
        arrival_rate=acc.arrival_rate,
        mean_size=acc.mean_size,
        mean_rate_bps=acc.mean_rate_bps,
        family=best.family,
        params=dict(best.params),
        selection=select,
        candidates=fits,
        diurnal=diurnal,
        tail_quantiles=tuple(
            (float(q), acc.quantile(q)) for q in tail_quantiles
        ),
        seed=int(seed),
        bins=acc.bins,
        tail_k=acc.tail_k,
        link_capacity_bps=(
            float(link_capacity_bps) if link_capacity_bps else None
        ),
        backend=backend,
        workers=int(workers),
        metadata=dict(metadata or {}),
    )


def calibrate_flows(
    flows,
    *,
    duration: float,
    source: str = "<flows>",
    families=CALIBRATION_FAMILIES,
    select: str = "bic",
    restarts: int = 4,
    seed: int = 0,
    bins: int = DEFAULT_BINS,
    tail_k: int = DEFAULT_TAIL_K,
    time_bins: int = DEFAULT_TIME_BINS,
    tail_quantiles=DEFAULT_TAIL_QUANTILES,
    link_capacity_bps: float | None = None,
    chunk: int | None = None,
    workers: int = 1,
    backend: str = "serial",
    metadata: dict | None = None,
) -> CalibrationReport:
    """Calibrate a measured :class:`~repro.flows.FlowSet`."""
    acc = calibrate_sizes(
        flows.sizes,
        flows.starts,
        duration=duration,
        bins=bins,
        tail_k=tail_k,
        time_bins=time_bins,
        chunk=chunk,
        workers=workers,
        backend=backend,
    )
    return calibrate_accumulator(
        acc,
        source=source,
        families=families,
        select=select,
        restarts=restarts,
        seed=seed,
        tail_quantiles=tail_quantiles,
        link_capacity_bps=link_capacity_bps,
        backend=backend,
        workers=workers,
        metadata=metadata,
    )


def _record_reader(path, format: str, chunk: int | None, errors: str):
    from ..interop.ipfix import IpfixReader
    from ..interop.netflow5 import NetFlow5Reader

    reader_cls = NetFlow5Reader if format == "netflow5" else IpfixReader
    return reader_cls(path, chunk=int(chunk) if chunk else 65536, errors=errors)


def calibrate_archive(
    path,
    *,
    format: str = "auto",
    duration: float | None = None,
    link_capacity_bps: float | None = None,
    errors: str = "strict",
    families=CALIBRATION_FAMILIES,
    select: str = "bic",
    restarts: int = 4,
    seed: int = 0,
    bins: int = DEFAULT_BINS,
    tail_k: int = DEFAULT_TAIL_K,
    time_bins: int = DEFAULT_TIME_BINS,
    tail_quantiles=DEFAULT_TAIL_QUANTILES,
    chunk: int | None = None,
    workers: int = 1,
    backend: str = "serial",
) -> CalibrationReport:
    """Calibrate a telemetry archive out-of-core.

    Flow-record formats (NetFlow v5, IPFIX) accumulate straight from
    the record stream in bounded memory; packet formats (pcap,
    ``.rptr``) run through the streaming measurement engine's flow
    exporter first, so the calibrated flows obey the same 60 s-timeout
    / single-packet-discard semantics as everything else in the repo.
    """
    from ..interop.adapter import (
        _resolve_rebase,
        detect_format,
        open_import_stream,
        scan_record_chunks,
    )

    path = Path(path)
    if format == "auto":
        format = detect_format(path)
    metadata = {"format": format}

    if format in ("netflow5", "ipfix"):
        scan = scan_record_chunks(_record_reader(path, format, chunk, errors))
        if scan.empty:
            raise ParameterError(
                f"{path}: archive holds no flow records; nothing to calibrate"
            )
        offset = _resolve_rebase("auto", scan.t_min)
        span = duration if duration is not None else scan.t_max - offset
        if span <= 0.0:
            # single-instant archives still need a positive window
            span = 1.0
        acc = CalibrationAccumulator(
            duration=span, bins=bins, tail_k=tail_k, time_bins=time_bins
        )
        engine = GenerationEngine(workers=workers, backend=backend)
        batch = []
        batch_limit = max(int(workers), 1)
        for block in _record_reader(path, format, chunk, errors):
            if block.size == 0:
                continue
            batch.append((
                block["octets"].astype(np.float64),
                block["start"].astype(np.float64) - offset,
                acc.duration, acc.bins, acc.tail_k, acc.time_bins,
            ))
            if len(batch) >= batch_limit:
                _merge_parts(acc, engine.map_ordered(_accumulate_task, batch))
                batch = []
        if batch:
            _merge_parts(acc, engine.map_ordered(_accumulate_task, batch))
        metadata["records"] = scan.records
        capacity = link_capacity_bps
    else:
        stream = open_import_stream(
            path,
            format=format,
            chunk=chunk,
            duration=duration,
            link_capacity=link_capacity_bps,
            errors=errors,
        )
        from ..measurement.engine import MeasurementEngine

        measured = MeasurementEngine(
            chunk=chunk, workers=workers, backend=backend
        ).measure_chunks(stream, duration=duration)
        if len(measured.flows) == 0:
            raise ParameterError(
                f"{path}: no flows survived measurement; nothing to calibrate"
            )
        acc = calibrate_sizes(
            measured.flows.sizes,
            measured.flows.starts,
            duration=measured.duration,
            bins=bins,
            tail_k=tail_k,
            time_bins=time_bins,
            chunk=chunk,
            workers=workers,
            backend=backend,
        )
        metadata["packets"] = measured.packet_count
        capacity = link_capacity_bps or measured.link_capacity

    return calibrate_accumulator(
        acc,
        source=str(path),
        families=families,
        select=select,
        restarts=restarts,
        seed=seed,
        tail_quantiles=tail_quantiles,
        link_capacity_bps=capacity,
        backend=backend,
        workers=workers,
        metadata=metadata,
    )
