"""Closed-loop validation: synthesize from the fitted spec, compare.

The acceptance test for a calibration is not a likelihood number — it
is whether a trace synthesised from the emitted
:class:`~repro.pipeline.ScenarioSpec` actually *looks like* the source
archive.  :func:`validate_fitted_spec` runs that loop: synthesize the
fitted workload with a fixed seed, then compare against the
calibration report

* λ — realised flow arrivals per second vs the calibrated rate,
* E[S] — mean wire bytes per flow (ground-truth payload sizes plus the
  per-packet header overhead the synthesiser adds) vs the trace mean,
* utilization moments — the Δ-averaged link rate's mean and coefficient
  of variation vs the source's byte rate,
* tail quantiles — the synthesised wire-size quantiles vs the
  empirical quantiles recorded in the report,

each within its declared relative tolerance.  Everything is seeded, so
a pass/fail verdict is deterministic and the comparison is
reproducible bitwise across execution backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ParameterError
from ..netsim.tcp import TcpParameters
from ..stats.timeseries import RateSeries
from .report import CalibrationReport

__all__ = [
    "ClosedLoopReport",
    "validate_fitted_spec",
    "wire_sizes",
]

#: Default relative tolerances (λ, E[S], mean rate, tail quantiles) and
#: the Δ used for the utilization series.
DEFAULT_LAMBDA_RTOL = 0.02
DEFAULT_MEAN_RTOL = 0.02
DEFAULT_RATE_RTOL = 0.10
DEFAULT_TAIL_RTOL = 0.35
DEFAULT_COV_ATOL = 0.25
DEFAULT_DELTA = 1.0

#: Flows the auto-sized validation window aims for.  A 2% tolerance on
#: λ needs ~sqrt(n)/n << 2%; 50k flows put Poisson noise at ~0.45% and
#: the heavy-tailed E[S] noise near 1%, leaving real mismatches visible.
_MIN_VALIDATION_FLOWS = 50_000


def wire_sizes(payload_sizes, tcp_params: TcpParameters = TcpParameters()):
    """Per-flow wire bytes: payload plus per-packet header overhead."""
    sizes = np.maximum(np.asarray(payload_sizes, dtype=np.float64), 40.0)
    packets = np.maximum(np.ceil(sizes / tcp_params.mss), 1.0)
    return sizes + tcp_params.header_bytes * packets


def _relative_error(synthetic: float, source: float) -> float:
    if source == 0.0:
        return float("inf") if synthetic else 0.0
    return abs(synthetic - source) / abs(source)


@dataclass(frozen=True)
class ClosedLoopReport:
    """Source-vs-synthesised comparison, metric by metric."""

    seed: int
    duration: float
    lambda_source: float
    lambda_synthetic: float
    lambda_rel_err: float
    lambda_rtol: float
    mean_size_source: float
    mean_size_synthetic: float
    mean_size_rel_err: float
    mean_rtol: float
    mean_rate_source_bps: float
    mean_rate_synthetic_bps: float
    mean_rate_rel_err: float
    rate_rtol: float
    rate_cov_source: float | None
    rate_cov_synthetic: float
    cov_abs_err: float | None
    cov_atol: float
    tail: tuple[tuple[float, float, float, float], ...]
    tail_rtol: float
    failures: tuple[str, ...] = ()
    metadata: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "seed": self.seed,
            "duration_s": self.duration,
            "lambda": {
                "source": self.lambda_source,
                "synthetic": self.lambda_synthetic,
                "rel_err": self.lambda_rel_err,
                "rtol": self.lambda_rtol,
            },
            "mean_size": {
                "source": self.mean_size_source,
                "synthetic": self.mean_size_synthetic,
                "rel_err": self.mean_size_rel_err,
                "rtol": self.mean_rtol,
            },
            "mean_rate_bps": {
                "source": self.mean_rate_source_bps,
                "synthetic": self.mean_rate_synthetic_bps,
                "rel_err": self.mean_rate_rel_err,
                "rtol": self.rate_rtol,
            },
            "rate_cov": {
                "source": self.rate_cov_source,
                "synthetic": self.rate_cov_synthetic,
                "abs_err": self.cov_abs_err,
                "atol": self.cov_atol,
            },
            "tail_quantiles": [
                {
                    "q": q,
                    "source": source,
                    "synthetic": synthetic,
                    "rel_err": err,
                }
                for q, source, synthetic, err in self.tail
            ],
            "tail_rtol": self.tail_rtol,
            "failures": list(self.failures),
            "metadata": dict(self.metadata),
        }


def validate_fitted_spec(
    report: CalibrationReport,
    spec=None,
    *,
    seed: int = 0,
    duration: float | None = None,
    delta: float = DEFAULT_DELTA,
    lambda_rtol: float = DEFAULT_LAMBDA_RTOL,
    mean_rtol: float = DEFAULT_MEAN_RTOL,
    rate_rtol: float = DEFAULT_RATE_RTOL,
    tail_rtol: float = DEFAULT_TAIL_RTOL,
    cov_atol: float = DEFAULT_COV_ATOL,
    source_rate_cov: float | None = None,
) -> ClosedLoopReport:
    """Run the calibrate → synthesize → compare loop once.

    ``spec`` defaults to ``report.to_scenario_spec()``; pass the spec
    you actually emitted to validate exactly what an operator will run.
    ``duration`` sets the synthesis window; when omitted it is
    auto-sized to ~50k flows — enough synthetic samples to resolve the
    2% tolerances regardless of the source capture's own length (long
    captures need not be replayed in full, sparse ones are extended).
    ``source_rate_cov`` enables the utilization second-moment check
    when the caller measured the source series.
    """
    if duration is None and report.arrival_rate > 0.0:
        duration = max(
            _MIN_VALIDATION_FLOWS / report.arrival_rate, 30.0 * delta
        )
    if spec is None:
        spec = report.to_scenario_spec(duration=duration)
    workload = spec.workload.build()
    if duration is not None:
        if duration <= 0.0:
            raise ParameterError(
                f"validation duration must be > 0 s, got {duration!r}"
            )
        workload = workload.with_duration(float(duration))
    synthesis = workload.synthesize(seed)
    span = workload.duration

    failures = []
    # The synthesiser leads in with warmup flows (negative start times)
    # so the capture opens in steady state; the arrival-rate comparison
    # counts only flows arriving inside the capture window, which is
    # what the source-side accumulator counted.
    starts = np.asarray(synthesis.flow_start_times, dtype=np.float64)
    in_window = (starts >= 0.0) & (starts < span)
    n_in_window = int(np.count_nonzero(in_window))
    lambda_synth = n_in_window / span
    lambda_err = _relative_error(lambda_synth, report.arrival_rate)
    if not lambda_err <= lambda_rtol:
        failures.append(
            f"lambda off by {lambda_err:.2%} (> {lambda_rtol:.2%}): "
            f"source {report.arrival_rate:g}/s vs synthetic "
            f"{lambda_synth:g}/s"
        )

    wire = wire_sizes(
        np.asarray(synthesis.flow_sizes, dtype=np.float64)[in_window],
        workload.tcp_params,
    )
    mean_synth = float(wire.mean()) if wire.size else 0.0
    mean_err = _relative_error(mean_synth, report.mean_size)
    if not mean_err <= mean_rtol:
        failures.append(
            f"E[S] off by {mean_err:.2%} (> {mean_rtol:.2%}): source "
            f"{report.mean_size:g} B vs synthetic {mean_synth:g} B"
        )

    series = RateSeries.from_packets(synthesis.trace, delta, duration=span)
    rate_synth = 8.0 * float(series.values.mean()) if series.values.size else 0.0
    rate_err = _relative_error(rate_synth, report.mean_rate_bps)
    if not rate_err <= rate_rtol:
        failures.append(
            f"mean rate off by {rate_err:.2%} (> {rate_rtol:.2%}): source "
            f"{report.mean_rate_bps:g} bps vs synthetic {rate_synth:g} bps"
        )

    if series.values.size and series.values.mean() > 0.0:
        cov_synth = float(series.values.std() / series.values.mean())
    else:
        cov_synth = 0.0
    cov_err = None
    if source_rate_cov is not None:
        cov_err = abs(cov_synth - float(source_rate_cov))
        if not cov_err <= cov_atol:
            failures.append(
                f"rate CoV off by {cov_err:.3f} (> {cov_atol:.3f}): source "
                f"{source_rate_cov:.3f} vs synthetic {cov_synth:.3f}"
            )

    tail_rows = []
    for q, source_value in report.tail_quantiles:
        if wire.size == 0:
            break
        synth_value = float(np.quantile(wire, q))
        err = _relative_error(synth_value, source_value)
        tail_rows.append((float(q), float(source_value), synth_value, err))
        if not err <= tail_rtol:
            failures.append(
                f"q={q:g} quantile off by {err:.2%} (> {tail_rtol:.2%}): "
                f"source {source_value:g} B vs synthetic {synth_value:g} B"
            )

    return ClosedLoopReport(
        seed=int(seed),
        duration=span,
        lambda_source=report.arrival_rate,
        lambda_synthetic=lambda_synth,
        lambda_rel_err=lambda_err,
        lambda_rtol=lambda_rtol,
        mean_size_source=report.mean_size,
        mean_size_synthetic=mean_synth,
        mean_size_rel_err=mean_err,
        mean_rtol=mean_rtol,
        mean_rate_source_bps=report.mean_rate_bps,
        mean_rate_synthetic_bps=rate_synth,
        mean_rate_rel_err=rate_err,
        rate_rtol=rate_rtol,
        rate_cov_source=(
            float(source_rate_cov) if source_rate_cov is not None else None
        ),
        rate_cov_synthetic=cov_synth,
        cov_abs_err=cov_err,
        cov_atol=cov_atol,
        tail=tuple(tail_rows),
        tail_rtol=tail_rtol,
        failures=tuple(failures),
        metadata={"flows": synthesis.n_flows, "flows_in_window": n_in_window},
    )
