"""Bounded-memory sufficient statistics for out-of-core calibration.

A :class:`CalibrationAccumulator` reduces any number of flow-size /
flow-start chunks to a fixed-size summary that every fitter in
:mod:`repro.calibration.fitters` can work from:

* integer flow count and an *exact* integer byte total (flow sizes are
  integral byte counts, so the sum is computed in integer arithmetic —
  no floating-point accumulation order to depend on),
* an integer histogram of ``log10(size)`` over fixed, data-independent
  bin edges (the grouped-likelihood input for every family),
* an integer histogram of flow start times over the capture (the
  arrival-rate / diurnal-profile estimate),
* the exact ``tail_k`` largest sizes (the tail-QQ input), and the exact
  global min/max.

Every component of the state is preserved exactly by :meth:`merge`
regardless of how the input was chunked or which worker produced which
partial (integer addition is associative and commutative; the top-k set
is order-free), so a calibration over ``{serial, thread, process}`` x
``{chunk, workers}`` is **bitwise identical** to the single-pass serial
one — the same invariance contract the measurement and synthesis
engines honour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "DEFAULT_BINS",
    "DEFAULT_TAIL_K",
    "DEFAULT_TIME_BINS",
    "LOG10_SPAN",
    "CalibrationAccumulator",
]

#: Default number of ``log10(size)`` histogram bins.
DEFAULT_BINS = 512

#: Default number of exact largest-size samples kept for tail QQ.
DEFAULT_TAIL_K = 512

#: Default number of arrival-time bins (the diurnal profile).
DEFAULT_TIME_BINS = 24

#: Fixed, data-independent histogram support: ``10^0`` .. ``10^12``
#: bytes (1 B to 1 TB per flow) — wide enough for any real archive, and
#: constant so accumulators built from different chunkings always share
#: bin edges.
LOG10_SPAN = (0.0, 12.0)


@dataclass
class CalibrationAccumulator:
    """Mergeable sufficient statistics over flow sizes and start times."""

    duration: float
    bins: int = DEFAULT_BINS
    tail_k: int = DEFAULT_TAIL_K
    time_bins: int = DEFAULT_TIME_BINS
    n: int = 0
    total_bytes: int = 0
    min_size: float = float("inf")
    max_size: float = 0.0
    counts: np.ndarray = field(default=None, repr=False)
    time_counts: np.ndarray = field(default=None, repr=False)
    tail: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if float(self.duration) <= 0.0:
            raise ParameterError(
                f"duration must be > 0 s, got {self.duration!r}"
            )
        if int(self.bins) < 16:
            raise ParameterError(
                f"bins must be >= 16 for a usable histogram, got {self.bins!r}"
            )
        if int(self.tail_k) < 8:
            raise ParameterError(
                f"tail_k must be >= 8, got {self.tail_k!r}"
            )
        if int(self.time_bins) < 1:
            raise ParameterError(
                f"time_bins must be >= 1, got {self.time_bins!r}"
            )
        self.duration = float(self.duration)
        self.bins = int(self.bins)
        self.tail_k = int(self.tail_k)
        self.time_bins = int(self.time_bins)
        if self.counts is None:
            self.counts = np.zeros(self.bins, dtype=np.int64)
        if self.time_counts is None:
            self.time_counts = np.zeros(self.time_bins, dtype=np.int64)
        if self.tail is None:
            self.tail = np.empty(0, dtype=np.float64)

    # -- the fixed binning ------------------------------------------------

    @property
    def log_edges(self) -> np.ndarray:
        """``log10(size)`` bin edges (``bins + 1`` values)."""
        lo, hi = LOG10_SPAN
        return np.linspace(lo, hi, self.bins + 1)

    @property
    def edges(self) -> np.ndarray:
        """Size-domain bin edges in bytes."""
        return 10.0 ** self.log_edges

    @property
    def log_midpoints(self) -> np.ndarray:
        """Natural-log bin midpoints (the binned-MLE evaluation points)."""
        log_edges = self.log_edges * np.log(10.0)
        return 0.5 * (log_edges[:-1] + log_edges[1:])

    @property
    def time_edges(self) -> np.ndarray:
        return np.linspace(0.0, self.duration, self.time_bins + 1)

    # -- accumulation -----------------------------------------------------

    def update(self, sizes, starts=None) -> "CalibrationAccumulator":
        """Fold one chunk of flow sizes (and optional start times) in."""
        sizes = np.asarray(sizes, dtype=np.float64).ravel()
        if sizes.size == 0:
            return self
        if np.any(~np.isfinite(sizes)) or np.any(sizes <= 0.0):
            raise ParameterError(
                "flow sizes must be finite and > 0 bytes to calibrate"
            )
        self.n += int(sizes.size)
        # exact integer byte total: immune to accumulation order
        self.total_bytes += int(np.rint(sizes).astype(np.int64).sum())
        self.min_size = min(self.min_size, float(sizes.min()))
        self.max_size = max(self.max_size, float(sizes.max()))
        lo, hi = LOG10_SPAN
        logs = np.clip(np.log10(sizes), lo, np.nextafter(hi, lo))
        index = ((logs - lo) / (hi - lo) * self.bins).astype(np.int64)
        np.clip(index, 0, self.bins - 1, out=index)
        self.counts += np.bincount(index, minlength=self.bins)
        if starts is not None:
            starts = np.asarray(starts, dtype=np.float64).ravel()
            if starts.size != sizes.size:
                raise ParameterError(
                    f"sizes and starts must align, got {sizes.size} sizes "
                    f"vs {starts.size} starts"
                )
            frac = np.clip(starts / self.duration, 0.0, np.nextafter(1.0, 0))
            t_index = (frac * self.time_bins).astype(np.int64)
            np.clip(t_index, 0, self.time_bins - 1, out=t_index)
            self.time_counts += np.bincount(
                t_index, minlength=self.time_bins
            )
        self._merge_tail(sizes)
        return self

    def _merge_tail(self, values: np.ndarray) -> None:
        if values.size > self.tail_k:
            values = np.partition(values, values.size - self.tail_k)[
                values.size - self.tail_k:
            ]
        merged = np.concatenate([self.tail, values])
        merged[::-1].sort()  # descending
        self.tail = np.array(merged[: self.tail_k])

    def merge(self, other: "CalibrationAccumulator") -> "CalibrationAccumulator":
        """Fold another accumulator in (associative and commutative)."""
        if (
            other.bins != self.bins
            or other.tail_k != self.tail_k
            or other.time_bins != self.time_bins
            or other.duration != self.duration
        ):
            raise ParameterError(
                "cannot merge calibration accumulators with different "
                "binning (bins/tail_k/time_bins/duration must match)"
            )
        self.n += other.n
        self.total_bytes += other.total_bytes
        self.min_size = min(self.min_size, other.min_size)
        self.max_size = max(self.max_size, other.max_size)
        self.counts += other.counts
        self.time_counts += other.time_counts
        self._merge_tail(other.tail)
        return self

    # -- derived quantities ----------------------------------------------

    @property
    def empty(self) -> bool:
        return self.n == 0

    def require_data(self) -> None:
        if self.empty:
            raise ParameterError(
                "no flows were accumulated; nothing to calibrate"
            )

    @property
    def arrival_rate(self) -> float:
        """``lambda`` — flows per second over the capture."""
        return self.n / self.duration

    @property
    def mean_size(self) -> float:
        """Exact ``E[S]`` in bytes (integer total over integer count)."""
        self.require_data()
        return self.total_bytes / self.n

    @property
    def mean_rate_bps(self) -> float:
        return 8.0 * self.total_bytes / self.duration

    def empirical_cdf_at_edges(self) -> np.ndarray:
        """Empirical CDF evaluated at the interior bin edges."""
        self.require_data()
        return np.cumsum(self.counts) / self.n

    def quantile(self, q: float) -> float:
        """Binned size quantile; exact within the top-``tail_k`` range."""
        self.require_data()
        if not 0.0 < float(q) < 1.0:
            raise ParameterError(f"quantile must lie in (0, 1), got {q!r}")
        from_top = self.n - int(np.ceil(q * self.n))
        if from_top < self.tail.size:
            return float(self.tail[from_top])
        cdf = np.cumsum(self.counts)
        index = int(np.searchsorted(cdf, q * self.n))
        index = min(index, self.bins - 1)
        return float(10.0 ** (0.5 * (
            self.log_edges[index] + self.log_edges[index + 1]
        )))

    def diurnal_rates(self) -> np.ndarray:
        """Per-time-bin arrival rates (flows/s), the diurnal profile."""
        width = self.duration / self.time_bins
        return self.time_counts / width
