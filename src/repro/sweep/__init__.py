"""Capacity-planning sweeps: growth x failures x routing over a backbone.

The paper's section VII dimensioning rule answers "what capacity does
*this link* need"; an operator asks the topology-wide version — *which
of my links breaches its SLA under any single failure at 2x demand?*
This package answers that with a declarative sweep over a base
``network`` scenario:

* :func:`~repro.sweep.cells.expand_cells` — the cartesian product of
  demand growth factors, auto-enumerated fibre failures (N-1 / N-2) and
  routing policies, each cell a complete runnable
  :class:`~repro.pipeline.ScenarioSpec` with a derived
  ``SeedSequence``-child seed;
* :mod:`~repro.sweep.prefilter` — the closed-form moment-superposition
  assessment of every cell against a configurable SLA band, so the
  packet-level engine only runs where the analytic answer is marginal;
* :func:`run_sweep` — the service: assess everything, simulate the
  marginal cells over the engine worker pool, emit one ranked
  :class:`~repro.sweep.report.SweepReport` (JSON + table).

Quickstart::

    from repro.pipeline import default_registry
    from repro.sweep import run_sweep

    result = run_sweep(default_registry().get("abilene-single-failure-2x"))
    print(result.report.table())
"""

from .cells import (
    SweepCell,
    enumerate_failures,
    enumerate_fibres,
    expand_cells,
    scale_demand,
)
from .prefilter import (
    CellAssessment,
    LinkAssessment,
    assess_cell,
    base_demands,
)
from .report import CellResult, SweepReport, rank_cells
from .service import SweepResult, run_sweep

__all__ = [
    # cells
    "SweepCell",
    "enumerate_fibres",
    "enumerate_failures",
    "expand_cells",
    "scale_demand",
    # prefilter
    "CellAssessment",
    "LinkAssessment",
    "assess_cell",
    "base_demands",
    # report
    "CellResult",
    "SweepReport",
    "rank_cells",
    # service
    "SweepResult",
    "run_sweep",
]
