"""The sweep service: expand → assess → (selectively) simulate → rank.

:func:`run_sweep` is the one entry point: it expands the spec's axes
into cells (:func:`~repro.sweep.cells.expand_cells`), runs the
closed-form pre-filter on every cell
(:func:`~repro.sweep.prefilter.assess_cell`), dispatches the full
:class:`~repro.network.NetworkEngine` only on cells the band flags as
marginal (or all / none, per ``sweep.simulate``), fanned out over a
:func:`repro.execution.make_pool` worker pool (``sweep.workers`` ×
``sweep.backend``), and folds everything into one ranked
:class:`~repro.sweep.report.SweepReport`.

Determinism: cell seeds are ``SeedSequence`` children of the scenario
seed (fixed at expansion), each simulated cell runs its own complete
network-family spec through :func:`~repro.pipeline.run_scenario`, and
``map_ordered`` preserves cell order — so results are bitwise identical
for any ``sweep.execution`` setting, and bitwise equal to running any
cell's spec directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..checkpoint import CheckpointStore, run_fingerprint
from ..exceptions import ParameterError
from ..execution import RunHealth, make_pool, run_health
from .cells import SweepCell, expand_cells
from .prefilter import (
    VERDICT_BREACH,
    VERDICT_MARGINAL,
    VERDICT_OK,
    CellAssessment,
    assess_cell,
    base_demands,
)
from .report import CellResult, SweepReport, rank_cells

__all__ = ["SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep produced: cells, verdicts, engine runs.

    ``health`` is the run's retry/degradation snapshot (see
    :mod:`repro.execution.health`); ``resumed`` lists cell indices whose
    outcomes were loaded from a checkpoint directory instead of being
    re-simulated — those cells have no entry in ``simulations``.
    """

    spec: "object"  # the sweep ScenarioSpec
    cells: tuple[SweepCell, ...]
    assessments: tuple[CellAssessment, ...]  # cell order
    simulations: dict  # cell index -> NetworkStageResult
    report: SweepReport
    health: RunHealth | None = None
    resumed: tuple[int, ...] = field(default_factory=tuple)

    def simulated(self, index: int):
        """The engine run of cell ``index`` (KeyError if pre-filtered)."""
        return self.simulations[index]


def _simulate_cell(cell):
    """Run one marginal cell's full network spec (worker entry point)."""
    from ..pipeline.runner import run_scenario

    return run_scenario(cell.spec).network


def _simulated_outcome(cell, assessment, stage_result, *, sla_utilization):
    """Fold one engine run into a :class:`CellResult` (ground truth)."""
    report = stage_result.report
    worst_link = None
    worst_ratio = 0.0
    worst_required = 0.0
    worst_capacity = 0.0
    breaching = []
    for entry in report.links:
        if entry.n_demands == 0:
            continue
        ratio = entry.required_capacity_bps / (
            float(sla_utilization) * entry.capacity_bps
        )
        if ratio > 1.0:
            breaching.append(entry.link)
        if ratio > worst_ratio or worst_link is None:
            worst_link = entry.link
            worst_ratio = ratio
            worst_required = entry.required_capacity_bps
            worst_capacity = entry.capacity_bps
    return CellResult(
        index=cell.index,
        factor=cell.factor,
        routing=cell.routing,
        failure=cell.failure,
        failure_label=cell.failure_label,
        seed=cell.seed,
        method="simulated",
        analytic_verdict=assessment.verdict,
        verdict=VERDICT_BREACH if breaching else VERDICT_OK,
        worst_link=worst_link,
        worst_ratio=float(worst_ratio),
        required_capacity_bps=float(worst_required),
        capacity_bps=float(worst_capacity),
        breaching_links=tuple(breaching),
        n_disconnected_demands=assessment.n_disconnected_demands,
    )


def _analytic_outcome(cell, assessment):
    """A pre-filtered cell's :class:`CellResult` (closed form only)."""
    worst = assessment.worst
    return CellResult(
        index=cell.index,
        factor=cell.factor,
        routing=cell.routing,
        failure=cell.failure,
        failure_label=cell.failure_label,
        seed=cell.seed,
        method="analytic",
        analytic_verdict=assessment.verdict,
        verdict=assessment.verdict,
        worst_link=worst.link if worst is not None else None,
        worst_ratio=float(assessment.worst_ratio),
        required_capacity_bps=(
            float(worst.required_capacity_bps) if worst is not None else 0.0
        ),
        capacity_bps=(
            float(worst.capacity_bps) if worst is not None else 0.0
        ),
        breaching_links=tuple(
            a.link for a in assessment.links if a.sla_ratio > 1.0
        ),
        n_disconnected_demands=assessment.n_disconnected_demands,
    )


def run_sweep(spec, *, checkpoint_dir=None, resume=False) -> SweepResult:
    """Run one capacity-planning sweep end to end (the canonical API).

    ``checkpoint_dir`` persists each simulated cell's outcome durably
    (atomic write + manifest) as soon as it completes; ``resume=True``
    then skips cells already checkpointed and re-runs only the
    remainder.  Cell seeds are fixed at expansion, so the resumed
    :class:`~repro.sweep.report.SweepReport` is bitwise-equal to an
    uninterrupted run's.
    """
    if spec.sweep is None:
        raise ParameterError(
            f"scenario {spec.name!r} has no 'sweep' section; use "
            "run_scenario for single scenarios"
        )
    if resume and checkpoint_dir is None:
        raise ParameterError(
            "resume=True needs a checkpoint_dir to resume from"
        )
    sweep = spec.sweep
    cells = expand_cells(spec)
    topology = spec.network.topology.build()
    demands = base_demands(spec)
    epsilon = float(spec.validation.epsilon)
    assessments = tuple(
        assess_cell(
            cell,
            demands,
            topology,
            sla_utilization=sweep.sla_utilization,
            margin=sweep.margin,
            epsilon=epsilon,
        )
        for cell in cells
    )

    if sweep.simulate == "all":
        to_simulate = list(cells)
    elif sweep.simulate == "none":
        to_simulate = []
    else:  # "marginal"
        to_simulate = [
            cell
            for cell, assessment in zip(cells, assessments)
            if assessment.verdict == VERDICT_MARGINAL
        ]

    store = None
    restored: dict[int, CellResult] = {}
    if checkpoint_dir is not None:
        store = CheckpointStore(
            checkpoint_dir,
            run_fingerprint(spec.to_dict()),
            resume=resume,
        )
        if resume:
            for key in store.keys():
                outcome = store.load(key)
                restored[int(outcome.index)] = outcome
            to_simulate = [
                cell for cell in to_simulate if cell.index not in restored
            ]

    assessment_of = {
        cell.index: assessment
        for cell, assessment in zip(cells, assessments)
    }
    simulations: dict[int, object] = {}
    outcome_of: dict[int, CellResult] = dict(restored)
    if to_simulate:
        # cell specs are pinned to one worker each (see expand_cells), so
        # the sweep's pool is the only fan-out and pools never nest
        workers = int(sweep.workers)
        backend = str(sweep.backend)
        width = min(workers, len(to_simulate))
        # without a checkpoint dir everything goes in one fan-out; with
        # one, cells go through in pool-width batches so each completed
        # batch lands on disk before the next starts
        batch_size = len(to_simulate) if store is None else max(1, width)
        pool = None
        try:
            for b0 in range(0, len(to_simulate), batch_size):
                batch = to_simulate[b0:b0 + batch_size]
                if workers <= 1 or len(batch) <= 1:
                    results = [_simulate_cell(cell) for cell in batch]
                else:
                    if pool is None:
                        pool = make_pool(backend, width, retry=sweep.retry)
                    results = pool.map_ordered(_simulate_cell, batch)
                for cell, result in zip(batch, results):
                    simulations[cell.index] = result
                    outcome = _simulated_outcome(
                        cell,
                        assessment_of[cell.index],
                        result,
                        sla_utilization=sweep.sla_utilization,
                    )
                    outcome_of[cell.index] = outcome
                    if store is not None:
                        store.save(f"cell-{cell.index:04d}", outcome)
        finally:
            if pool is not None:
                pool.close()

    outcomes = []
    for cell, assessment in zip(cells, assessments):
        if cell.index in outcome_of:
            outcomes.append(outcome_of[cell.index])
        else:
            outcomes.append(_analytic_outcome(cell, assessment))

    report = SweepReport(
        name=spec.name,
        seed=int(spec.seed),
        sla_utilization=float(sweep.sla_utilization),
        margin=float(sweep.margin),
        epsilon=epsilon,
        demand_factors=sweep.demand_factors,
        failures=sweep.failures,
        routing=sweep.routing or (spec.network.routing,),
        cells=rank_cells(outcomes),
    )
    return SweepResult(
        spec=spec,
        cells=cells,
        assessments=assessments,
        simulations=simulations,
        report=report,
        health=run_health(),
        resumed=tuple(sorted(restored)),
    )
