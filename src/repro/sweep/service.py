"""The sweep service: expand → assess → (selectively) simulate → rank.

:func:`run_sweep` is the one entry point: it expands the spec's axes
into cells (:func:`~repro.sweep.cells.expand_cells`), runs the
closed-form pre-filter on every cell
(:func:`~repro.sweep.prefilter.assess_cell`), dispatches the full
:class:`~repro.network.NetworkEngine` only on cells the band flags as
marginal (or all / none, per ``sweep.simulate``), fanned out over a
:func:`repro.execution.make_pool` worker pool (``sweep.workers`` ×
``sweep.backend``), and folds everything into one ranked
:class:`~repro.sweep.report.SweepReport`.

Determinism: cell seeds are ``SeedSequence`` children of the scenario
seed (fixed at expansion), each simulated cell runs its own complete
network-family spec through :func:`~repro.pipeline.run_scenario`, and
``map_ordered`` preserves cell order — so results are bitwise identical
for any ``sweep.execution`` setting, and bitwise equal to running any
cell's spec directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ParameterError
from ..execution import make_pool
from .cells import SweepCell, expand_cells
from .prefilter import (
    VERDICT_BREACH,
    VERDICT_MARGINAL,
    VERDICT_OK,
    CellAssessment,
    assess_cell,
    base_demands,
)
from .report import CellResult, SweepReport, rank_cells

__all__ = ["SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep produced: cells, verdicts, engine runs."""

    spec: "object"  # the sweep ScenarioSpec
    cells: tuple[SweepCell, ...]
    assessments: tuple[CellAssessment, ...]  # cell order
    simulations: dict  # cell index -> NetworkStageResult
    report: SweepReport

    def simulated(self, index: int):
        """The engine run of cell ``index`` (KeyError if pre-filtered)."""
        return self.simulations[index]


def _simulate_cell(cell):
    """Run one marginal cell's full network spec (worker entry point)."""
    from ..pipeline.runner import run_scenario

    return run_scenario(cell.spec).network


def _simulated_outcome(cell, assessment, stage_result, *, sla_utilization):
    """Fold one engine run into a :class:`CellResult` (ground truth)."""
    report = stage_result.report
    worst_link = None
    worst_ratio = 0.0
    worst_required = 0.0
    worst_capacity = 0.0
    breaching = []
    for entry in report.links:
        if entry.n_demands == 0:
            continue
        ratio = entry.required_capacity_bps / (
            float(sla_utilization) * entry.capacity_bps
        )
        if ratio > 1.0:
            breaching.append(entry.link)
        if ratio > worst_ratio or worst_link is None:
            worst_link = entry.link
            worst_ratio = ratio
            worst_required = entry.required_capacity_bps
            worst_capacity = entry.capacity_bps
    return CellResult(
        index=cell.index,
        factor=cell.factor,
        routing=cell.routing,
        failure=cell.failure,
        failure_label=cell.failure_label,
        seed=cell.seed,
        method="simulated",
        analytic_verdict=assessment.verdict,
        verdict=VERDICT_BREACH if breaching else VERDICT_OK,
        worst_link=worst_link,
        worst_ratio=float(worst_ratio),
        required_capacity_bps=float(worst_required),
        capacity_bps=float(worst_capacity),
        breaching_links=tuple(breaching),
        n_disconnected_demands=assessment.n_disconnected_demands,
    )


def _analytic_outcome(cell, assessment):
    """A pre-filtered cell's :class:`CellResult` (closed form only)."""
    worst = assessment.worst
    return CellResult(
        index=cell.index,
        factor=cell.factor,
        routing=cell.routing,
        failure=cell.failure,
        failure_label=cell.failure_label,
        seed=cell.seed,
        method="analytic",
        analytic_verdict=assessment.verdict,
        verdict=assessment.verdict,
        worst_link=worst.link if worst is not None else None,
        worst_ratio=float(assessment.worst_ratio),
        required_capacity_bps=(
            float(worst.required_capacity_bps) if worst is not None else 0.0
        ),
        capacity_bps=(
            float(worst.capacity_bps) if worst is not None else 0.0
        ),
        breaching_links=tuple(
            a.link for a in assessment.links if a.sla_ratio > 1.0
        ),
        n_disconnected_demands=assessment.n_disconnected_demands,
    )


def run_sweep(spec) -> SweepResult:
    """Run one capacity-planning sweep end to end (the canonical API)."""
    if spec.sweep is None:
        raise ParameterError(
            f"scenario {spec.name!r} has no 'sweep' section; use "
            "run_scenario for single scenarios"
        )
    sweep = spec.sweep
    cells = expand_cells(spec)
    topology = spec.network.topology.build()
    demands = base_demands(spec)
    epsilon = float(spec.validation.epsilon)
    assessments = tuple(
        assess_cell(
            cell,
            demands,
            topology,
            sla_utilization=sweep.sla_utilization,
            margin=sweep.margin,
            epsilon=epsilon,
        )
        for cell in cells
    )

    if sweep.simulate == "all":
        to_simulate = list(cells)
    elif sweep.simulate == "none":
        to_simulate = []
    else:  # "marginal"
        to_simulate = [
            cell
            for cell, assessment in zip(cells, assessments)
            if assessment.verdict == VERDICT_MARGINAL
        ]

    simulations: dict[int, object] = {}
    if to_simulate:
        # cell specs are pinned to one worker each (see expand_cells), so
        # the sweep's pool is the only fan-out and pools never nest
        workers = int(sweep.workers)
        backend = str(sweep.backend)
        if workers <= 1 or len(to_simulate) <= 1:
            results = [_simulate_cell(cell) for cell in to_simulate]
        else:
            width = min(workers, len(to_simulate))
            with make_pool(backend, width) as pool:
                results = pool.map_ordered(_simulate_cell, to_simulate)
        simulations = {
            cell.index: result
            for cell, result in zip(to_simulate, results)
        }

    outcomes = []
    for cell, assessment in zip(cells, assessments):
        if cell.index in simulations:
            outcomes.append(
                _simulated_outcome(
                    cell,
                    assessment,
                    simulations[cell.index],
                    sla_utilization=sweep.sla_utilization,
                )
            )
        else:
            outcomes.append(_analytic_outcome(cell, assessment))

    report = SweepReport(
        name=spec.name,
        seed=int(spec.seed),
        sla_utilization=float(sweep.sla_utilization),
        margin=float(sweep.margin),
        epsilon=epsilon,
        demand_factors=sweep.demand_factors,
        failures=sweep.failures,
        routing=sweep.routing or (spec.network.routing,),
        cells=rank_cells(outcomes),
    )
    return SweepResult(
        spec=spec,
        cells=cells,
        assessments=assessments,
        simulations=simulations,
        report=report,
    )
