"""The sweep's single ranked artifact: JSON report + operator table.

A :class:`SweepReport` answers the capacity-planning questions in one
object: which cells breach the SLA (ranked worst first), the worst link
under every failure case, and how much headroom each growth step leaves
— with every cell labelled by *how* it was decided (``analytic``
pre-filter or full ``simulated`` engine run) and by the seed that makes
it individually re-runnable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CellResult", "SweepReport", "rank_cells"]

#: Verdict ranking for the report ordering (worst first).
_SEVERITY = {"breach": 0, "marginal": 1, "ok": 2}


@dataclass(frozen=True)
class CellResult:
    """One cell's final outcome (analytic or simulated)."""

    index: int
    factor: float
    routing: str
    failure: tuple[tuple[str, str], ...]
    failure_label: str
    seed: int
    method: str  # "analytic" | "simulated"
    analytic_verdict: str
    verdict: str  # ok | marginal | breach
    worst_link: tuple[str, str] | None
    worst_ratio: float
    required_capacity_bps: float
    capacity_bps: float
    breaching_links: tuple[tuple[str, str], ...]
    n_disconnected_demands: int

    @property
    def headroom(self) -> float:
        """SLA headroom of the worst link (``1 - ratio``; < 0 breaches)."""
        return 1.0 - float(self.worst_ratio)

    def to_dict(self) -> dict:
        return {
            "index": int(self.index),
            "factor": float(self.factor),
            "routing": self.routing,
            "failure": [list(link) for link in self.failure],
            "failure_label": self.failure_label,
            "seed": int(self.seed),
            "method": self.method,
            "analytic_verdict": self.analytic_verdict,
            "verdict": self.verdict,
            "worst_link": (
                list(self.worst_link) if self.worst_link is not None else None
            ),
            "worst_ratio": float(self.worst_ratio),
            "required_capacity_bps": float(self.required_capacity_bps),
            "capacity_bps": float(self.capacity_bps),
            "headroom": float(self.headroom),
            "breaching_links": [list(link) for link in self.breaching_links],
            "n_disconnected_demands": int(self.n_disconnected_demands),
        }


@dataclass(frozen=True)
class SweepReport:
    """Ranked outcome of a capacity sweep (what ``repro sweep`` writes)."""

    name: str
    seed: int
    sla_utilization: float
    margin: float
    epsilon: float
    demand_factors: tuple[float, ...]
    failures: str
    routing: tuple[str, ...]
    cells: tuple[CellResult, ...]  # ranked: breaches first, worst first

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_simulated(self) -> int:
        return sum(1 for cell in self.cells if cell.method == "simulated")

    @property
    def n_prefiltered(self) -> int:
        """Cells the closed form settled without running the engine."""
        return self.n_cells - self.n_simulated

    @property
    def breaches(self) -> tuple[CellResult, ...]:
        return tuple(c for c in self.cells if c.verdict == "breach")

    def worst_per_failure(self) -> dict[str, CellResult]:
        """The worst cell of every failure case (by SLA ratio)."""
        worst: dict[str, CellResult] = {}
        for cell in self.cells:
            seen = worst.get(cell.failure_label)
            if seen is None or cell.worst_ratio > seen.worst_ratio:
                worst[cell.failure_label] = cell
        return worst

    def headroom_per_factor(self) -> dict[float, float]:
        """Minimum SLA headroom at each growth step (< 0: step breaches)."""
        headroom: dict[float, float] = {}
        for cell in self.cells:
            current = headroom.get(cell.factor)
            if current is None or cell.headroom < current:
                headroom[cell.factor] = cell.headroom
        return dict(sorted(headroom.items()))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": int(self.seed),
            "sla_utilization": float(self.sla_utilization),
            "margin": float(self.margin),
            "epsilon": float(self.epsilon),
            "demand_factors": [float(f) for f in self.demand_factors],
            "failures": self.failures,
            "routing": list(self.routing),
            "n_cells": self.n_cells,
            "n_simulated": self.n_simulated,
            "n_prefiltered": self.n_prefiltered,
            "headroom_per_factor": {
                f"{factor:g}": headroom
                for factor, headroom in self.headroom_per_factor().items()
            },
            "worst_per_failure": {
                label: cell.to_dict()
                for label, cell in self.worst_per_failure().items()
            },
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def table(self) -> str:
        """The ranked operator table (one line per cell, worst first)."""
        header = (
            f"{'cell':>5}  {'factor':>6}  {'failure':<28}  {'verdict':<8}  "
            f"{'method':<9}  {'worst link':<26}  {'ratio':>6}"
        )
        lines = [header, "-" * len(header)]
        for cell in self.cells:
            link = (
                f"{cell.worst_link[0]}->{cell.worst_link[1]}"
                if cell.worst_link is not None
                else "-"
            )
            lines.append(
                f"#{cell.index:04d}  x{cell.factor:<5g}  "
                f"{cell.failure_label:<28.28}  {cell.verdict:<8}  "
                f"{cell.method:<9}  {link:<26.26}  {cell.worst_ratio:6.2f}"
            )
        lines.append(
            f"{self.n_cells} cells: {self.n_prefiltered} settled "
            f"analytically, {self.n_simulated} simulated, "
            f"{len(self.breaches)} SLA breach(es)"
        )
        return "\n".join(lines)


def rank_cells(cells) -> tuple[CellResult, ...]:
    """Report order: severity first, then worst ratio, then cell index."""
    return tuple(
        sorted(
            cells,
            key=lambda c: (
                _SEVERITY.get(c.verdict, 3),
                -float(c.worst_ratio),
                int(c.index),
            ),
        )
    )
