"""Closed-form cell assessment: moment superposition against an SLA band.

Every sweep cell gets a microseconds-cheap analytic verdict before any
packet is synthesized: the base demands' three-parameter summaries
(:func:`~repro.network.analytic.workload_flow_statistics`, computed once
per demand) are scaled to the cell's growth factor, routed over the
cell's failure-reduced topology, superposed per link
(:func:`~repro.network.analytic.superpose_link_moments`) and provisioned
with the Gaussian rule.  The per-link *SLA ratio* is

    required_capacity_bps / (sla_utilization x capacity_bps)

and the cell's verdict follows from its worst ratio against the
marginal band ``[1 - margin, 1 + margin]``: clearly-provisioned cells
(``ok``) and clearly-breaching cells (``breach``) skip simulation;
``marginal`` cells go to the full :class:`~repro.network.NetworkEngine`.
Demands left disconnected by the failure contribute nothing — exactly
the engine's blackholing of unroutable demands during an outage window.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import TopologyError
from ..network.analytic import (
    AnalyticDemand,
    superpose_link_moments,
    workload_flow_statistics,
)
from ..network.routing import resolve_routing
from .cells import SweepCell

__all__ = ["CellAssessment", "LinkAssessment", "assess_cell", "base_demands"]

VERDICT_OK = "ok"
VERDICT_MARGINAL = "marginal"
VERDICT_BREACH = "breach"


@dataclass(frozen=True)
class LinkAssessment:
    """One link's analytic provisioning check inside a cell."""

    link: tuple[str, str]
    capacity_bps: float
    mean_rate_bps: float
    required_capacity_bps: float
    sla_ratio: float
    n_demands: int

    def to_dict(self) -> dict:
        return {
            "link": list(self.link),
            "capacity_bps": float(self.capacity_bps),
            "mean_rate_bps": float(self.mean_rate_bps),
            "required_capacity_bps": float(self.required_capacity_bps),
            "sla_ratio": float(self.sla_ratio),
            "n_demands": int(self.n_demands),
        }


@dataclass(frozen=True)
class CellAssessment:
    """The closed-form verdict for one sweep cell."""

    verdict: str  # ok | marginal | breach
    worst: LinkAssessment | None  # None: nothing carries traffic
    links: tuple[LinkAssessment, ...]  # carrying links, worst first
    n_disconnected_demands: int

    @property
    def worst_ratio(self) -> float:
        return self.worst.sla_ratio if self.worst is not None else 0.0


def base_demands(spec) -> tuple[AnalyticDemand, ...]:
    """The base scenario's demands as statistics-carrying analytic ones.

    One Monte-Carlo summary per demand, computed from the *unscaled*
    workload laws; growth factors then scale ``lambda`` in closed form
    (:meth:`~repro.network.analytic.AnalyticDemand.scaled`), so a whole
    factor axis reuses the same summaries.
    """
    shape = float(spec.sweep.shape_factor) if spec.sweep is not None else 1.8
    demands = []
    for demand_spec in spec.network.demands:
        workload = demand_spec.build(spec.network.duration).workload
        demands.append(
            AnalyticDemand(
                source=demand_spec.source,
                sink=demand_spec.sink,
                statistics=workload_flow_statistics(workload),
                shape_factor=shape,
            )
        )
    return tuple(demands)


def assess_cell(
    cell: SweepCell,
    demands: tuple[AnalyticDemand, ...],
    topology,
    *,
    sla_utilization: float,
    margin: float,
    epsilon: float,
) -> CellAssessment:
    """Classify one cell against the SLA band, closed form only.

    ``demands`` are the *base* analytic demands (factor 1); ``topology``
    is the intact base topology — the cell's failure set reduces it
    here, mirroring what its outage events do in the engine.
    """
    reduced = (
        topology.without_links(cell.failure) if cell.failure else topology
    )
    routing = resolve_routing(cell.routing)
    routable = []
    disconnected = 0
    for demand in demands:
        try:
            routing.route(reduced, demand.source, demand.sink)
        except TopologyError:
            disconnected += 1
            continue
        routable.append(demand.scaled(cell.factor))
    moments = superpose_link_moments(reduced, routable, routing=routing)
    links = []
    for entry in moments.values():
        if entry.n_demands == 0:
            continue
        required = entry.required_capacity_bps(epsilon)
        links.append(
            LinkAssessment(
                link=entry.link,
                capacity_bps=entry.capacity_bps,
                mean_rate_bps=8.0 * entry.mean_rate,
                required_capacity_bps=required,
                sla_ratio=required
                / (float(sla_utilization) * entry.capacity_bps),
                n_demands=entry.n_demands,
            )
        )
    links.sort(key=lambda a: a.sla_ratio, reverse=True)
    worst = links[0] if links else None
    ratio = worst.sla_ratio if worst is not None else 0.0
    if ratio < 1.0 - float(margin):
        verdict = VERDICT_OK
    elif ratio > 1.0 + float(margin):
        verdict = VERDICT_BREACH
    else:
        verdict = VERDICT_MARGINAL
    return CellAssessment(
        verdict=verdict,
        worst=worst,
        links=tuple(links),
        n_disconnected_demands=disconnected,
    )
