"""Sweep axes → concrete cells: factors x failures x routing policies.

A *cell* is one fully-specified what-if scenario: every demand scaled by
one growth factor, one (possibly empty) set of failed fibres encoded as
full-capture :class:`~repro.network.events.LinkOutage` events, one
routing policy, and a derived seed.  Each cell carries a complete
network-family :class:`~repro.pipeline.spec.ScenarioSpec`, so running it
through :func:`~repro.pipeline.run_scenario` is *by construction* the
same code path as a direct :class:`~repro.network.NetworkEngine` run —
which is what makes the sweep's simulated results bitwise reproducible
cell by cell.

Failure enumeration works on physical fibres, not directed links: the
topology's shared-fate groups (both directions of a bidirectional link)
are deduplicated, and failing a fibre fails the whole group — the
operator's "a backhoe cut the conduit" question.

Seeds are :class:`numpy.random.SeedSequence` children of the sweep
scenario's seed, spawned in cell order, so the grid is deterministic,
cells are statistically independent, and any cell can be re-run in
isolation from its spec alone.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..exceptions import ParameterError
from ..pipeline.spec import (
    DemandSpec,
    NetworkEventSpec,
    ScenarioSpec,
)
from ..network.topology import Topology

__all__ = [
    "SweepCell",
    "enumerate_fibres",
    "enumerate_failures",
    "expand_cells",
    "scale_demand",
]


def enumerate_fibres(topology: Topology) -> tuple[tuple[str, str], ...]:
    """The topology's physical fibres, one directed representative each.

    Directed links sharing a fate group collapse to the first of the
    group in ``topology.links`` order, so the result is deterministic
    and failing a representative (via
    :meth:`~repro.network.topology.Topology.without_links` or a
    :class:`~repro.network.events.LinkOutage`) takes the whole fibre
    down.
    """
    fibres: list[tuple[str, str]] = []
    seen: set[frozenset] = set()
    for link in topology.links:
        group = frozenset(topology.fate_group(*link))
        if group in seen:
            continue
        seen.add(group)
        fibres.append(link)
    return tuple(fibres)


def enumerate_failures(
    topology: Topology, mode: str
) -> tuple[tuple[tuple[str, str], ...], ...]:
    """The failure cases of a sweep: ``()`` entries are whole fibre sets.

    ``"none"`` enumerates nothing (baseline only), ``"single"`` every
    individual fibre, ``"dual"`` every fibre plus every unordered pair —
    the N-1 and N-2 contingency sets of capacity planning.
    """
    if mode == "none":
        return ()
    fibres = enumerate_fibres(topology)
    singles = tuple((fibre,) for fibre in fibres)
    if mode == "single":
        return singles
    if mode == "dual":
        return singles + tuple(combinations(fibres, 2))
    raise ParameterError(
        f"unknown failure mode {mode!r}; expected none, single or dual"
    )


def scale_demand(demand: DemandSpec, factor: float) -> DemandSpec:
    """``demand`` under ``factor`` x growth, utilisation held constant.

    Preset demands scale via ``scale`` (Table I rates and the backing
    link capacity move together); custom-rate demands scale both the
    target rate and the capacity-defining ``scale``.  Either way the
    flow arrival rate — and only it — scales by ``factor``, matching the
    analytic :meth:`~repro.network.analytic.AnalyticDemand.scaled` axis.
    """
    factor = float(factor)
    if factor == 1.0:
        return demand
    if demand.preset is not None:
        return dataclasses.replace(demand, scale=demand.scale * factor)
    return dataclasses.replace(
        demand,
        target_mean_rate_bps=demand.target_mean_rate_bps * factor,
        scale=demand.scale * factor,
    )


@dataclass(frozen=True)
class SweepCell:
    """One expanded sweep cell: axes coordinates plus its runnable spec."""

    index: int
    factor: float
    failure: tuple[tuple[str, str], ...]  # failed fibres, () = baseline
    routing: str
    seed: int
    spec: ScenarioSpec  # network-family spec (sweep=None)

    @property
    def failure_label(self) -> str:
        if not self.failure:
            return "baseline"
        return "+".join(f"{a}~{b}" for a, b in self.failure)

    @property
    def label(self) -> str:
        return f"x{self.factor:g} {self.routing} {self.failure_label}"


def expand_cells(spec: ScenarioSpec) -> tuple[SweepCell, ...]:
    """The sweep's cartesian product as runnable per-cell scenario specs.

    Cell order is deterministic: routing policy (outermost), then
    baseline followed by the failure cases, then growth factors — and
    cell ``i`` seeds from child ``i`` of ``SeedSequence(spec.seed)``.
    Each cell spec is the base scenario with the ``sweep`` section
    stripped, demands scaled, the failure encoded as full-capture
    outage events appended to the base events, and the network section
    pinned to one worker (the sweep service owns the fan-out; pools
    must not nest).
    """
    if spec.sweep is None or spec.network is None:
        raise ParameterError(
            f"scenario {spec.name!r} cannot expand sweep cells without "
            "both a 'sweep' and a 'network' section"
        )
    sweep = spec.sweep
    network = spec.network
    topology = network.topology.build()
    routings = sweep.routing or (network.routing,)
    failures: list[tuple[tuple[str, str], ...]] = []
    if sweep.include_baseline:
        failures.append(())
    failures.extend(enumerate_failures(topology, sweep.failures))

    grid = [
        (routing, failure, factor)
        for routing in routings
        for failure in failures
        for factor in sweep.demand_factors
    ]
    children = np.random.SeedSequence(int(spec.seed)).spawn(len(grid))
    cells = []
    for index, (routing, failure, factor) in enumerate(grid):
        cell_seed = int(children[index].generate_state(1)[0])
        outages = tuple(
            NetworkEventSpec(
                kind="outage",
                start=0.0,
                duration=float(network.duration),
                link=fibre,
            )
            for fibre in failure
        )
        cell_network = network.with_execution(
            chunk=(
                sweep.execution.chunk
                if sweep.execution.chunk is not None
                else network.chunk
            ),
            workers=1,
        )
        cell_network = dataclasses.replace(
            cell_network,
            demands=tuple(
                scale_demand(demand, factor) for demand in network.demands
            ),
            routing=routing,
            events=network.events + outages,
        )
        label = (
            f"x{factor:g} {routing} "
            + ("baseline" if not failure else
               "+".join(f"{a}~{b}" for a, b in failure))
        )
        cells.append(
            SweepCell(
                index=index,
                factor=float(factor),
                failure=failure,
                routing=routing,
                seed=cell_seed,
                spec=dataclasses.replace(
                    spec,
                    name=f"{spec.name}#{index:03d}",
                    description=label,
                    seed=cell_seed,
                    sweep=None,
                    network=cell_network,
                ),
            )
        )
    return tuple(cells)
