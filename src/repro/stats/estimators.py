"""Online (EWMA) estimation of the model parameters — section V-G.

The paper computes its parameters offline but sketches the operational
version: when the flow-accounting tool reports a finished flow of size
``S`` and duration ``D``, update

    E_hat <- (1 - eps) E_hat + eps * value

for each of ``E[S]``, ``E[S^2/D]`` and the mean inter-arrival time (whose
reciprocal estimates ``lambda``) — exactly the EWMA TCP uses for its RTT.
:class:`OnlineFlowStatistics` implements that router-side loop and emits
:class:`~repro.core.parameters.FlowStatistics` snapshots on demand.
"""

from __future__ import annotations

import numpy as np

from .._util import check_positive
from ..core.parameters import FlowStatistics
from ..exceptions import ParameterError
from ..kernels import ewma as _ewma_kernel

__all__ = [
    "EwmaEstimator",
    "OnlineFlowStatistics",
    "ewma_final",
    "replay_flow_statistics",
]


def ewma_final(values, eps: float) -> float:
    """Final value of the EWMA recurrence over a whole observation array.

    Computes ``y_i = (1 - eps) * y_{i-1} + eps * x_i`` (first observation
    initialises, exactly like :class:`EwmaEstimator`) through
    :func:`repro.kernels.ewma`: a compiled sequential loop when numba is
    installed, otherwise the blocked closed-form solution of the linear
    recurrence — per block of ``B`` observations,

        ``y <- (1-eps)^B * y + eps * sum_j (1-eps)^(B-1-j) * x_j``

    — one dot product with a precomputed geometric weight vector instead
    of a Python loop per observation.  Blocking keeps the exponents small
    enough that the weights never underflow, so the two paths match to
    floating-point accumulation accuracy (~1e-12 relative) at any length.
    """
    x = np.ascontiguousarray(values, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ParameterError("ewma_final needs a non-empty 1-d array")
    if not 0.0 < eps <= 1.0:
        raise ParameterError(f"eps must be in (0, 1], got {eps}")
    return _ewma_kernel(x, eps)


def replay_flow_statistics(flows, eps: float = 0.01) -> FlowStatistics | None:
    """Vectorized replay of a flow set through the section V-G EWMAs.

    Equivalent to feeding every flow arrival (time-sorted) and departure
    (end-time-sorted) through :class:`OnlineFlowStatistics` one call at a
    time — the closed-form :func:`ewma_final` replaces the per-flow
    Python loop, which is what makes ``estimator="ewma"`` viable on
    million-flow traces.  Returns ``None`` while the estimators would not
    be ready (fewer than two arrivals or no departures), mirroring the
    loop's behaviour.  :class:`OnlineFlowStatistics` itself remains the
    implementation for true online (packet-by-packet) use.
    """
    starts = np.sort(np.asarray(flows.starts, dtype=np.float64))
    if starts.size < 2 or len(flows) == 0:
        return None
    gaps = np.diff(starts)
    order = np.argsort(flows.ends, kind="stable")
    sizes = np.asarray(flows.sizes, dtype=np.float64)[order]
    durations = np.asarray(flows.durations, dtype=np.float64)[order]
    if np.any(sizes <= 0.0):
        raise ParameterError("size must be > 0")
    if np.any(durations <= 0.0):
        raise ParameterError("duration must be > 0")
    mean_interarrival = ewma_final(gaps, eps)
    if mean_interarrival <= 0.0:
        return None
    return FlowStatistics(
        arrival_rate=1.0 / mean_interarrival,
        mean_size=ewma_final(sizes, eps),
        mean_square_size_over_duration=ewma_final(
            sizes * sizes / durations, eps
        ),
        mean_duration=ewma_final(durations, eps),
        flow_count=len(flows),
    )


class EwmaEstimator:
    """Exponentially weighted moving average with gain ``eps``.

    Smaller ``eps`` means a slower, steadier estimate (the paper's
    trade-off remark).  The first observation initialises the estimate.
    """

    def __init__(self, eps: float) -> None:
        if not 0.0 < eps <= 1.0:
            raise ParameterError(f"eps must be in (0, 1], got {eps}")
        self.eps = float(eps)
        self._value: float | None = None
        self.n_updates = 0

    def update(self, value: float) -> float:
        """Fold one observation in; returns the new estimate."""
        value = float(value)
        if self._value is None:
            self._value = value
        else:
            self._value = (1.0 - self.eps) * self._value + self.eps * value
        self.n_updates += 1
        return self._value

    @property
    def value(self) -> float:
        if self._value is None:
            raise ParameterError("estimator has seen no data yet")
        return self._value

    @property
    def initialized(self) -> bool:
        return self._value is not None

    def reset(self) -> None:
        self._value = None
        self.n_updates = 0


class OnlineFlowStatistics:
    """Streaming estimator of the model's three parameters.

    Feed it flow *arrival* times (for ``lambda``) and flow *departure*
    records (for ``E[S]`` and ``E[S^2/D]``); ``snapshot()`` returns a
    :class:`FlowStatistics` usable by the model at any moment.
    """

    def __init__(self, eps: float = 0.01) -> None:
        self._mean_size = EwmaEstimator(eps)
        self._mean_sq_over_dur = EwmaEstimator(eps)
        self._mean_duration = EwmaEstimator(eps)
        self._mean_interarrival = EwmaEstimator(eps)
        self._last_arrival: float | None = None
        self._flows_seen = 0

    def observe_arrival(self, time: float) -> None:
        """Record a flow arrival instant (monotone non-decreasing)."""
        time = float(time)
        if self._last_arrival is not None:
            gap = time - self._last_arrival
            if gap < 0:
                raise ParameterError("arrival times must be non-decreasing")
            self._mean_interarrival.update(gap)
        self._last_arrival = time

    def observe_departure(self, size: float, duration: float) -> None:
        """Record a finished flow (size bytes, duration seconds)."""
        size = check_positive("size", size)
        duration = check_positive("duration", duration)
        self._mean_size.update(size)
        self._mean_sq_over_dur.update(size * size / duration)
        self._mean_duration.update(duration)
        self._flows_seen += 1

    @property
    def ready(self) -> bool:
        """True once every estimator has data."""
        return (
            self._mean_size.initialized
            and self._mean_sq_over_dur.initialized
            and self._mean_interarrival.initialized
            and self._mean_interarrival.value > 0.0
        )

    def snapshot(self) -> FlowStatistics:
        """Current three-parameter summary (raises until :attr:`ready`)."""
        if not self.ready:
            raise ParameterError(
                "need at least two arrivals and one departure before a snapshot"
            )
        return FlowStatistics(
            arrival_rate=1.0 / self._mean_interarrival.value,
            mean_size=self._mean_size.value,
            mean_square_size_over_duration=self._mean_sq_over_dur.value,
            mean_duration=self._mean_duration.value,
            flow_count=self._flows_seen,
        )
