"""Measurement statistics: rate series, correlograms, qq-plots, tails, EWMA."""

from .correlation import (
    autocorrelation,
    autocovariance_series,
    correlogram,
    cross_correlation,
)
from .estimators import EwmaEstimator, OnlineFlowStatistics
from .heavytail import (
    ParetoTailFit,
    empirical_ccdf,
    fit_pareto_tail,
    hill_estimator,
    hill_plot,
)
from .qq import ExponentialityReport, QQData, exponentiality, qq_exponential
from .timeseries import RateSeries

__all__ = [
    "RateSeries",
    "autocorrelation",
    "autocovariance_series",
    "correlogram",
    "cross_correlation",
    "QQData",
    "qq_exponential",
    "ExponentialityReport",
    "exponentiality",
    "ParetoTailFit",
    "fit_pareto_tail",
    "hill_estimator",
    "hill_plot",
    "empirical_ccdf",
    "EwmaEstimator",
    "OnlineFlowStatistics",
]
