"""Empirical autocorrelation estimators (Figures 3-6 and 8).

The paper checks its two assumptions with lag correlograms: flow
inter-arrival times should be uncorrelated (Poisson, Figures 3-4) and the
sequences of flow sizes and durations should be iid (Figures 5-6,
correlation dropping to ~0 after lag 0).
"""

from __future__ import annotations

import numpy as np

from .._util import as_1d_float_array
from ..exceptions import ParameterError

__all__ = [
    "autocorrelation",
    "autocovariance_series",
    "cross_correlation",
    "correlogram",
]


#: Work threshold (n * lags) above which ``method="auto"`` picks the FFT.
_FFT_AUTO_THRESHOLD = 1 << 18


def _fft_autocovariance(centred: np.ndarray, max_lag: int) -> np.ndarray:
    """All lags ``0..max_lag`` of the biased autocovariance via one FFT.

    Zero-padding to a power of two ``>= n + max_lag`` makes the circular
    correlation linear over the lags we keep.  The series is normalised
    to unit RMS before the transform so rounding error stays relative to
    ``gamma(0)`` even for large-magnitude inputs (byte rates).
    """
    n = centred.size
    scale = float(np.sqrt(np.mean(centred * centred)))
    if scale == 0.0:
        return np.zeros(max_lag + 1)
    z = centred / scale
    nfft = 1 << int(np.ceil(np.log2(n + max_lag)))
    spectrum = np.fft.rfft(z, nfft)
    acov = np.fft.irfft(spectrum * np.conj(spectrum), nfft)[: max_lag + 1]
    return acov * (scale * scale / n)


def autocovariance_series(values, max_lag: int, *, method: str = "auto") -> np.ndarray:
    """Biased empirical autocovariance ``gamma(0..max_lag)`` of a series.

    The biased (1/n) normalisation keeps the estimated autocorrelation
    sequence positive semi-definite, which the linear predictor's normal
    equations rely on.

    ``method`` selects the algorithm: ``"direct"`` is the O(n·max_lag)
    dot-product loop, ``"fft"`` computes every lag with one O(n log n)
    transform (equal to the loop to ~1e-12 of ``gamma(0)``), and
    ``"auto"`` (default) switches to the FFT once ``n * (max_lag + 1)``
    passes a fixed work threshold — long correlograms over large traces
    stop being quadratic without small inputs paying FFT overhead.
    """
    x = as_1d_float_array("values", values)
    max_lag = int(max_lag)
    if max_lag < 0:
        raise ParameterError("max_lag must be >= 0")
    if max_lag >= x.size:
        raise ParameterError(
            f"max_lag {max_lag} must be < series length {x.size}"
        )
    if method not in ("auto", "direct", "fft"):
        raise ParameterError(
            f"method must be 'auto', 'direct' or 'fft', got {method!r}"
        )
    centred = x - x.mean()
    n = x.size
    if method == "fft" or (
        method == "auto" and n * (max_lag + 1) >= _FFT_AUTO_THRESHOLD
    ):
        return _fft_autocovariance(centred, max_lag)
    out = np.empty(max_lag + 1)
    for k in range(max_lag + 1):
        out[k] = np.dot(centred[: n - k], centred[k:]) / n
    return out


def autocorrelation(values, max_lag: int, *, method: str = "auto") -> np.ndarray:
    """Autocorrelation coefficients for lags ``1..max_lag``.

    Matches the paper's correlograms: the lag-0 value (identically 1) is
    omitted.
    """
    gamma = autocovariance_series(values, max_lag, method=method)
    if gamma[0] <= 0.0:
        raise ParameterError("series has zero variance")
    return gamma[1:] / gamma[0]


def correlogram(
    values, max_lag: int, *, method: str = "auto"
) -> tuple[np.ndarray, np.ndarray]:
    """``(lags, coefficients)`` including lag 0 — plot-ready Figure 3-6 data."""
    gamma = autocovariance_series(values, max_lag, method=method)
    if gamma[0] <= 0.0:
        raise ParameterError("series has zero variance")
    return np.arange(max_lag + 1), gamma / gamma[0]


def cross_correlation(x, y) -> float:
    """Pearson correlation of two equal-length sequences.

    Used to confirm that sizes and durations of the *same* flow are
    correlated (larger S, larger D — the paper notes this) even though
    each sequence is serially uncorrelated.
    """
    x = as_1d_float_array("x", x)
    y = as_1d_float_array("y", y)
    if x.size != y.size:
        raise ParameterError("sequences must have equal length")
    if x.size < 2:
        raise ParameterError("need at least two points")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt(np.dot(xc, xc) * np.dot(yc, yc))
    if denom == 0.0:
        raise ParameterError("a sequence has zero variance")
    return float(np.dot(xc, yc) / denom)
