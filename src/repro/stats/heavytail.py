"""Heavy-tail diagnostics for flow sizes and durations.

The related work the paper builds on attributes traffic burstiness and
self-similarity to heavy-tailed size/duration distributions ([9], [19],
[22]).  These estimators characterise the tails of the synthetic (or any
measured) flow populations: Pareto maximum-likelihood tail index, the Hill
estimator with its stability plot, and empirical CCDFs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_1d_float_array
from ..exceptions import FittingError, ParameterError

__all__ = [
    "ParetoTailFit",
    "fit_pareto_tail",
    "hill_estimator",
    "hill_plot",
    "empirical_ccdf",
]


@dataclass(frozen=True)
class ParetoTailFit:
    """MLE Pareto fit of a sample's upper tail.

    ``alpha < 2`` means infinite variance — the regime where the paper's
    ``E[S^2/D]`` parameter stays finite while ``E[S^2]`` does not.
    """

    alpha: float
    xmin: float
    n_tail: int

    @property
    def infinite_variance(self) -> bool:
        return self.alpha <= 2.0

    @property
    def infinite_mean(self) -> bool:
        return self.alpha <= 1.0

    def ccdf(self, x) -> np.ndarray:
        """Model tail ``P(X > x) = (xmin/x)^alpha`` for ``x >= xmin``."""
        x = np.asarray(x, dtype=np.float64)
        return np.where(x < self.xmin, 1.0, (self.xmin / x) ** self.alpha)


def fit_pareto_tail(samples, *, xmin: float | None = None) -> ParetoTailFit:
    """Maximum-likelihood Pareto tail index.

    ``alpha_hat = n / sum(log(x_i / xmin))`` over samples above ``xmin``
    (default: the sample median, fitting the upper half).
    """
    x = as_1d_float_array("samples", samples)
    if np.any(x <= 0):
        raise ParameterError("samples must be strictly positive")
    if xmin is None:
        xmin = float(np.median(x))
    if xmin <= 0:
        raise ParameterError("xmin must be > 0")
    tail = x[x >= xmin]
    if tail.size < 10:
        raise FittingError(
            f"only {tail.size} samples above xmin={xmin:g}; need >= 10"
        )
    log_ratios = np.log(tail / xmin)
    total = float(log_ratios.sum())
    if total <= 0:
        raise FittingError("all tail samples equal xmin; alpha is undefined")
    return ParetoTailFit(alpha=tail.size / total, xmin=float(xmin), n_tail=int(tail.size))


def hill_estimator(samples, k: int) -> float:
    """Hill tail-index estimate from the ``k`` largest order statistics."""
    x = as_1d_float_array("samples", samples)
    if np.any(x <= 0):
        raise ParameterError("samples must be strictly positive")
    k = int(k)
    if not 2 <= k < x.size:
        raise ParameterError(f"k must be in [2, n-1], got {k} for n={x.size}")
    top = np.sort(x)[-(k + 1):]
    logs = np.log(top)
    hill = float(np.mean(logs[1:] - logs[0]))
    if hill <= 0:
        raise FittingError("degenerate order statistics; Hill undefined")
    return 1.0 / hill


def hill_plot(samples, k_values=None) -> tuple[np.ndarray, np.ndarray]:
    """``(k, alpha_hat(k))`` stability plot of the Hill estimator."""
    x = as_1d_float_array("samples", samples)
    if k_values is None:
        k_max = max(3, x.size // 2)
        k_values = np.unique(
            np.round(np.geomspace(2, k_max - 1, num=30)).astype(int)
        )
    k_values = np.asarray(k_values, dtype=int)
    estimates = np.array([hill_estimator(x, int(k)) for k in k_values])
    return k_values, estimates


def empirical_ccdf(samples) -> tuple[np.ndarray, np.ndarray]:
    """``(sorted values, P(X > value))`` — log-log plot data for tails."""
    x = np.sort(as_1d_float_array("samples", samples))
    n = x.size
    ccdf = 1.0 - np.arange(1, n + 1) / n
    return x, ccdf
