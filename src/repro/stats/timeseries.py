"""Measured rate time series — the Delta-averaged samples of section V-F.

A monitor reports the byte volume crossing the link in consecutive windows
of length ``Delta`` (the paper uses 200 ms, comparable to the average
round-trip time; SNMP uses 5 minutes).  :class:`RateSeries` bins a packet
trace into such windows and exposes the moments the validation compares
against the model: mean, variance, coefficient of variation, empirical
autocorrelation.
"""

from __future__ import annotations

import numpy as np

from .._util import as_1d_float_array, check_positive
from ..exceptions import ParameterError
from ..trace.packet import PACKET_DTYPE, PacketTrace

__all__ = ["RateSeries"]


class RateSeries:
    """Piecewise-constant rate measurements ``R_bar(k Delta)``.

    Attributes
    ----------
    values:
        Rate samples in bytes/second (bin byte count divided by ``delta``).
    delta:
        Averaging/sampling interval in seconds.
    start:
        Timestamp of the first bin's left edge.
    """

    def __init__(self, values, delta: float, start: float = 0.0) -> None:
        self.values = as_1d_float_array("values", values)
        self.delta = check_positive("delta", delta)
        self.start = float(start)

    @classmethod
    def from_packets(
        cls,
        packets,
        delta: float,
        *,
        duration: float | None = None,
        packet_mask=None,
    ) -> "RateSeries":
        """Bin a packet trace into Delta-averaged rate samples.

        Parameters
        ----------
        packets:
            A :class:`PacketTrace` or PACKET_DTYPE array.
        delta:
            Averaging interval (seconds).
        duration:
            Observation length; defaults to the trace duration.  Only
            *complete* bins are kept (a trailing partial window would bias
            the last sample).
        packet_mask:
            Optional boolean mask of packets to include.  The paper
            excludes packets of discarded single-packet flows from the
            measured rate; pass ``flowset.packet_flow_ids >= 0``.
        """
        if isinstance(packets, PacketTrace):
            if duration is None:
                duration = packets.duration
            packets = packets.packets
        packets = np.asarray(packets)
        if packets.dtype != PACKET_DTYPE:
            raise ParameterError(f"expected PACKET_DTYPE, got {packets.dtype}")
        delta = check_positive("delta", delta)
        timestamps = packets["timestamp"]
        sizes = packets["size"].astype(np.float64)
        if packet_mask is not None:
            packet_mask = np.asarray(packet_mask, dtype=bool)
            if packet_mask.shape != timestamps.shape:
                raise ParameterError("packet_mask must match the packet count")
            timestamps = timestamps[packet_mask]
            sizes = sizes[packet_mask]
        if duration is None:
            duration = float(timestamps.max()) if timestamps.size else delta
        n_bins = int(np.floor(duration / delta))
        if n_bins < 1:
            raise ParameterError(
                f"duration {duration} shorter than one bin of {delta}s"
            )
        bin_index = np.floor(timestamps / delta).astype(np.int64)
        in_range = (bin_index >= 0) & (bin_index < n_bins)
        volumes = np.bincount(
            bin_index[in_range], weights=sizes[in_range], minlength=n_bins
        )
        return cls(volumes / delta, delta)

    def __len__(self) -> int:
        return int(self.values.size)

    def __repr__(self) -> str:
        return (
            f"RateSeries(n={len(self)}, delta={self.delta:g}s, "
            f"mean={self.mean:.4g} B/s)"
        )

    @property
    def times(self) -> np.ndarray:
        """Left edge of each averaging window."""
        return self.start + self.delta * np.arange(len(self))

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1) of the rate samples."""
        if len(self) < 2:
            return 0.0
        return float(np.var(self.values, ddof=1))

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def coefficient_of_variation(self) -> float:
        """std/mean — the measured quantity of Figures 9-13."""
        mean = self.mean
        if mean == 0.0:
            raise ParameterError("cannot compute CoV of an all-zero series")
        return self.std / mean

    def autocorrelation(self, max_lag: int) -> np.ndarray:
        """Empirical autocorrelation coefficients for lags ``1..max_lag``."""
        from .correlation import autocorrelation

        return autocorrelation(self.values, max_lag)

    def resample(self, factor: int) -> "RateSeries":
        """Aggregate ``factor`` consecutive bins into one (coarser Delta).

        Used to study the variance-vs-averaging-interval relation of
        section V-F without re-binning the trace.
        """
        factor = int(factor)
        if factor < 1:
            raise ParameterError("factor must be >= 1")
        n = (len(self) // factor) * factor
        if n == 0:
            raise ParameterError("series too short for this factor")
        coarse = self.values[:n].reshape(-1, factor).mean(axis=1)
        return RateSeries(coarse, self.delta * factor, self.start)

    def window(self, start_index: int, stop_index: int) -> "RateSeries":
        """Slice of the series (e.g. warm-up removal)."""
        if not 0 <= start_index < stop_index <= len(self):
            raise ParameterError("invalid window bounds")
        return RateSeries(
            self.values[start_index:stop_index],
            self.delta,
            self.start + start_index * self.delta,
        )
