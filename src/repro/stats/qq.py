"""Quantile-quantile diagnostics against the exponential law (Figures 3-4).

The paper validates Assumption 1 (Poisson arrivals) with qq-plots of flow
inter-arrival times against the exponential distribution — "a stricter
test on the tail of the distributions" than histograms.  This module
produces the plot data and scalar goodness summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .._util import as_1d_float_array
from ..exceptions import ParameterError

__all__ = ["QQData", "qq_exponential", "exponentiality"]


@dataclass(frozen=True)
class QQData:
    """QQ-plot data: empirical quantiles vs fitted-exponential quantiles.

    ``normalized_*`` rescale both axes by the largest plotted quantile so
    the plot lives on [0, 1] x [0, 1] like the paper's figures; a perfect
    exponential fit lies on the diagonal.
    """

    probabilities: np.ndarray
    empirical: np.ndarray
    theoretical: np.ndarray

    @property
    def normalized_empirical(self) -> np.ndarray:
        return self.empirical / self.empirical[-1]

    @property
    def normalized_theoretical(self) -> np.ndarray:
        return self.theoretical / self.theoretical[-1]

    @property
    def correlation(self) -> float:
        """Pearson r of the qq points; 1.0 means a perfect linear match."""
        return float(np.corrcoef(self.empirical, self.theoretical)[0, 1])

    def max_relative_deviation(self) -> float:
        """Largest |empirical - theoretical| / theoretical over the plot."""
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.abs(self.empirical - self.theoretical) / self.theoretical
        return float(np.nanmax(rel))


def qq_exponential(
    samples, n_points: int = 100, *, p_max: float = 0.995
) -> QQData:
    """QQ data of ``samples`` against Exponential(mean of samples).

    ``p_max`` bounds the highest plotted probability: the paper plots deep
    into the tail but the very last order statistics are pure noise.
    """
    x = as_1d_float_array("samples", samples)
    if np.any(x < 0):
        raise ParameterError("inter-arrival samples must be >= 0")
    if x.size < 10:
        raise ParameterError("need at least 10 samples for a qq-plot")
    if not 0.0 < p_max < 1.0:
        raise ParameterError("p_max must be in (0, 1)")
    probs = np.linspace(0.5 / n_points, p_max, n_points)
    empirical = np.quantile(x, probs)
    theoretical = stats.expon.ppf(probs, scale=float(x.mean()))
    return QQData(probabilities=probs, empirical=empirical, theoretical=theoretical)


@dataclass(frozen=True)
class ExponentialityReport:
    """Scalar summary of how exponential a positive sample looks."""

    ks_statistic: float
    ks_pvalue: float
    cov: float  # exponential => 1.0
    qq_correlation: float

    @property
    def plausibly_exponential(self) -> bool:
        """Loose screen: qq nearly linear and CoV near 1.

        The KS p-value is reported but not gated on: with tens of
        thousands of samples even tiny deviations are "significant", yet
        the paper's point is that the fit is close in practice.
        """
        return self.qq_correlation > 0.99 and 0.7 < self.cov < 1.3


def exponentiality(samples) -> ExponentialityReport:
    """Test a positive sample against the exponential distribution."""
    x = as_1d_float_array("samples", samples)
    if x.size < 10:
        raise ParameterError("need at least 10 samples")
    mean = float(x.mean())
    if mean <= 0:
        raise ParameterError("samples must have a positive mean")
    ks = stats.kstest(x, "expon", args=(0.0, mean))
    qq = qq_exponential(x)
    return ExponentialityReport(
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
        cov=float(x.std(ddof=1) / mean),
        qq_correlation=qq.correlation,
    )
