"""The paper's three-parameter traffic summary (section V-G).

The headline simplicity claim of the paper is that an uncongested backbone
link is characterised, for dimensioning purposes, by only **three scalars**:

* ``lambda``      — flow arrival rate (flows/second),
* ``E[S]``        — mean flow size (bytes),
* ``E[S^2/D]``    — mean of (size squared over duration),

plus a shot-shape multiplier.  :class:`FlowStatistics` is that summary; it
is what a router could maintain online with the EWMA estimators of
:mod:`repro.stats.estimators`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .._util import broadcast_flows, check_positive
from ..exceptions import ParameterError

__all__ = ["FlowStatistics"]


@dataclass(frozen=True)
class FlowStatistics:
    """Per-interval flow summary: the model's complete input (section V-G).

    Attributes
    ----------
    arrival_rate:
        ``lambda``, flow arrivals per second over the measurement interval.
    mean_size:
        ``E[S]`` in bytes.
    mean_square_size_over_duration:
        ``E[S^2/D]`` in bytes^2/second.
    mean_duration:
        ``E[D]`` in seconds (not needed by the mean/variance formulas, but
        required by the M/G/infinity active-flow count and useful for
        choosing prediction horizons).  Defaults to NaN when unknown;
        quantities that need it (:attr:`offered_load`) raise a
        :class:`ParameterError` instead of silently propagating NaN.
    flow_count:
        Number of flows the statistics were estimated from (0 if analytic).
    """

    arrival_rate: float
    mean_size: float
    mean_square_size_over_duration: float
    mean_duration: float = float("nan")
    flow_count: int = 0

    def __post_init__(self) -> None:
        check_positive("arrival_rate", self.arrival_rate)
        check_positive("mean_size", self.mean_size)
        check_positive(
            "mean_square_size_over_duration", self.mean_square_size_over_duration
        )
        if self.flow_count < 0:
            raise ParameterError(f"flow_count must be >= 0, got {self.flow_count}")
        # NaN marks "duration unknown"; anything else must be a valid E[D]
        if not np.isnan(self.mean_duration):
            check_positive("mean_duration", self.mean_duration)
        # Cauchy-Schwarz: E[S^2/D] >= E[S]^2 / E[D]; warn-level check only
        # possible when E[D] is known, and sampling error can violate it
        # slightly, so we do not enforce it here.

    @classmethod
    def from_flows(
        cls, sizes, durations, interval_length: float
    ) -> "FlowStatistics":
        """Estimate the summary from per-flow measurements.

        ``interval_length`` is the observation window in seconds (the paper
        uses 30-minute intervals); ``lambda`` is estimated as the number of
        flows divided by the window.
        """
        sizes, durations = broadcast_flows(sizes, durations)
        interval_length = check_positive("interval_length", interval_length)
        return cls(
            arrival_rate=sizes.size / interval_length,
            mean_size=float(np.mean(sizes)),
            mean_square_size_over_duration=float(np.mean(sizes**2 / durations)),
            mean_duration=float(np.mean(durations)),
            flow_count=int(sizes.size),
        )

    @property
    def mean_rate(self) -> float:
        """Mean total rate ``lambda * E[S]`` (Corollary 1), bytes/second."""
        return self.arrival_rate * self.mean_size

    @property
    def has_mean_duration(self) -> bool:
        """True when ``E[D]`` was supplied (it defaults to NaN)."""
        return not np.isnan(self.mean_duration)

    @property
    def offered_load(self) -> float:
        """M/G/infinity load ``lambda * E[D]``: mean number of active flows.

        Raises :class:`ParameterError` when ``mean_duration`` was never
        supplied — previously the NaN default silently poisoned the
        active-flow count.
        """
        if not self.has_mean_duration:
            raise ParameterError(
                "offered_load needs mean_duration (E[D]), which this "
                "FlowStatistics was built without; construct it with "
                "mean_duration=... or use FlowStatistics.from_flows"
            )
        return self.arrival_rate * self.mean_duration

    def variance(self, shape_factor: float = 1.0) -> float:
        """Variance of the total rate for a shape multiplier (Corollary 2).

        ``shape_factor`` is ``(b+1)^2/(2b+1)`` for power-b shots
        (:func:`repro.core.shots.variance_shape_factor`); 1.0 gives the
        rectangular-shot lower bound of Theorem 3.
        """
        factor = check_positive("shape_factor", shape_factor)
        return factor * self.arrival_rate * self.mean_square_size_over_duration

    def std(self, shape_factor: float = 1.0) -> float:
        """Standard deviation of the total rate, bytes/second."""
        return float(np.sqrt(self.variance(shape_factor)))

    def coefficient_of_variation(self, shape_factor: float = 1.0) -> float:
        """CoV = std / mean — the quantity validated in Figures 9-13."""
        return self.std(shape_factor) / self.mean_rate

    def scaled_arrivals(self, factor: float) -> "FlowStatistics":
        """Return the summary with ``lambda`` multiplied by ``factor``.

        Models the section VII-A what-if: more customers means more flows,
        with an unchanged joint size/duration distribution.  The mean rate
        scales as ``factor`` while the standard deviation scales as
        ``sqrt(factor)`` — backbone traffic smooths as it aggregates.
        """
        factor = check_positive("factor", factor)
        return replace(
            self,
            arrival_rate=self.arrival_rate * factor,
            flow_count=int(round(self.flow_count * factor)),
        )
