"""Flow ensembles: expectations over flow sizes and durations.

The shot-noise model only ever touches the joint law of ``(S, D)`` through
expectations ``E[f(S, D)]`` — e.g. ``E[S]`` for the mean rate (Corollary 1)
or ``E[S^2/D]`` for the variance (Corollary 2 with power shots).  This
module provides that abstraction:

* :class:`EmpiricalEnsemble` wraps measured ``(S, D)`` samples, the way the
  paper consumes its Sprint traces (statistics computed "directly from the
  traces", section VI);
* :class:`MonteCarloEnsemble` wraps a parametric sampler, for what-if
  studies (section VII-A: what happens to the link if the size distribution
  changes);
* :class:`SizeRateEnsemble` is the analytically convenient special case
  ``D = S / r`` with an access rate ``r`` independent of ``S``; it shows why
  ``E[S^2/D] = E[S] E[r]`` stays finite even when flow sizes are so
  heavy-tailed that ``E[S^2]`` diverges.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from .._util import as_rng, broadcast_flows, check_positive
from ..exceptions import ParameterError

__all__ = [
    "FlowEnsemble",
    "EmpiricalEnsemble",
    "MonteCarloEnsemble",
    "SizeRateEnsemble",
]


class FlowEnsemble(ABC):
    """Joint law of a flow's (size, duration), accessed through expectations."""

    @abstractmethod
    def expect(self, fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> float:
        """Return ``E[fn(S, D)]``.

        ``fn`` must accept two equal-length float arrays (sizes, durations)
        and return an array of per-flow values; the ensemble averages them.
        """

    @abstractmethod
    def sample(self, n: int, rng=None) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` iid (size, duration) pairs (used by traffic generation)."""

    # -- the three summary statistics the paper's model needs ------------

    @property
    def mean_size(self) -> float:
        """``E[S]`` — with the arrival rate, gives the mean total rate."""
        return self.expect(lambda s, d: s)

    @property
    def mean_duration(self) -> float:
        """``E[D]`` — the M/G/infinity load is ``lambda * E[D]``."""
        return self.expect(lambda s, d: d)

    @property
    def mean_square_size_over_duration(self) -> float:
        """``E[S^2 / D]`` — the paper's third (and last) model parameter."""
        return self.expect(lambda s, d: s * s / d)

    def moment_size_over_duration(self, order: int) -> float:
        """``E[S^k / D^(k-1)]``, needed by the k-th cumulant (Corollary 3)."""
        order = int(order)
        if order < 1:
            raise ParameterError(f"moment order must be >= 1, got {order}")
        return self.expect(lambda s, d: s**order / d ** (order - 1))


class EmpiricalEnsemble(FlowEnsemble):
    """Ensemble backed by measured per-flow ``(S, D)`` arrays.

    This is how the model is parameterised from a trace: export flows
    (:mod:`repro.flows`), collect their byte counts and durations, and feed
    the arrays here.  Expectations are plain sample means; :meth:`sample`
    bootstraps (resamples with replacement).
    """

    def __init__(self, sizes, durations) -> None:
        self.sizes, self.durations = broadcast_flows(sizes, durations)

    def __len__(self) -> int:
        return self.sizes.size

    def __repr__(self) -> str:
        return f"EmpiricalEnsemble(n={len(self)})"

    def expect(self, fn):
        values = np.asarray(fn(self.sizes, self.durations), dtype=np.float64)
        return float(np.mean(values))

    def sample(self, n: int, rng=None):
        rng = as_rng(rng)
        idx = rng.integers(0, len(self), size=int(n))
        return self.sizes[idx].copy(), self.durations[idx].copy()

    def subsample(self, n: int, rng=None) -> "EmpiricalEnsemble":
        """Return a smaller bootstrap ensemble (cheap LST/CF evaluation)."""
        s, d = self.sample(n, rng)
        return EmpiricalEnsemble(s, d)


class MonteCarloEnsemble(FlowEnsemble):
    """Ensemble defined by a parametric sampler, averaged by Monte Carlo.

    ``sampler(n, rng) -> (sizes, durations)`` draws iid flows.  A fixed,
    seeded reference sample of ``n_reference`` flows is cached so that
    repeated expectation queries are deterministic and cheap.
    """

    def __init__(self, sampler, *, n_reference: int = 100_000, seed: int = 0) -> None:
        if n_reference < 1:
            raise ParameterError(f"n_reference must be >= 1, got {n_reference}")
        self._sampler = sampler
        sizes, durations = sampler(int(n_reference), as_rng(seed))
        self._reference = EmpiricalEnsemble(sizes, durations)

    def __repr__(self) -> str:
        return f"MonteCarloEnsemble(n_reference={len(self._reference)})"

    @property
    def reference(self) -> EmpiricalEnsemble:
        """The cached reference sample used for expectations."""
        return self._reference

    def expect(self, fn):
        return self._reference.expect(fn)

    def sample(self, n: int, rng=None):
        return self._sampler(int(n), as_rng(rng))


class SizeRateEnsemble(MonteCarloEnsemble):
    """Flows with ``D = S / r``: size ``S`` and access rate ``r`` independent.

    ``size_dist`` and ``rate_dist`` are frozen scipy.stats-like objects
    (they must expose ``rvs(size=..., random_state=...)`` and ``mean()``).
    The two parameters the model needs come out in closed form:

    * ``E[S]      = size_dist.mean()``
    * ``E[S^2/D]  = E[S r] = E[S] E[r]``  (independence)

    so they are exact even when the Monte Carlo reference sample is small or
    the size tail is too heavy for ``E[S^2]`` to exist.
    """

    def __init__(
        self,
        size_dist,
        rate_dist,
        *,
        n_reference: int = 100_000,
        seed: int = 0,
    ) -> None:
        self.size_dist = size_dist
        self.rate_dist = rate_dist
        self._mean_size = check_positive("E[S]", float(size_dist.mean()))
        self._mean_rate = check_positive("E[r]", float(rate_dist.mean()))

        def sampler(n, rng):
            sizes = np.asarray(size_dist.rvs(size=n, random_state=rng), dtype=float)
            rates = np.asarray(rate_dist.rvs(size=n, random_state=rng), dtype=float)
            sizes = np.maximum(sizes, np.finfo(float).tiny)
            rates = np.maximum(rates, np.finfo(float).tiny)
            return sizes, sizes / rates

        super().__init__(sampler, n_reference=n_reference, seed=seed)

    def __repr__(self) -> str:
        return (
            f"SizeRateEnsemble(E[S]={self._mean_size:g}, E[r]={self._mean_rate:g})"
        )

    @property
    def mean_size(self) -> float:
        return self._mean_size

    @property
    def mean_square_size_over_duration(self) -> float:
        return self._mean_size * self._mean_rate
