"""Flow rate functions ("shots") — section IV and V-C/V-D of the paper.

A *shot* is the rate profile ``X_n(u)`` of a single flow: the flow starts at
``u = 0``, transmits for ``D`` seconds, delivers ``S`` bytes in total,

.. math::  \\int_0^{D} X(u)\\, du = S .

The paper (Figure 7) studies the *power family*

.. math::  X(u) = (b+1) \\frac{S}{D} \\left(\\frac{u}{D}\\right)^b ,

which contains the rectangular shot (``b = 0``, constant rate ``S/D``), the
triangular shot (``b = 1``, TCP-inspired linear ramp), sublinear
(``0 < b < 1``) and superlinear (``b > 1``, e.g. the "parabolic" shot
``b = 2``) profiles.

Every shot in this module exposes closed-form (or high-order quadrature)
versions of the three integrals the model consumes:

* ``moment_integral(k, S, D)``  — :math:`\\int_0^D X(u)^k\\,du`, which gives
  the k-th cumulant of the total rate (Corollary 3);
* ``autocovariance_integral(tau, S, D)`` —
  :math:`\\int_0^{D-\\tau} X(u) X(u+\\tau)\\,du`, the kernel of Theorem 2;
* ``cumulative(u, S, D)`` and its inverse — the bytes-sent curve used to
  place packets on the wire (trace synthesis and traffic generation,
  section VII-C).

All methods broadcast over numpy arrays of flow sizes and durations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from .._util import check_nonnegative, leggauss_nodes
from ..exceptions import ParameterError

__all__ = [
    "Shot",
    "PowerShot",
    "RectangularShot",
    "TriangularShot",
    "ParabolicShot",
    "GenericShot",
    "variance_shape_factor",
]

#: Quadrature order used for shots without closed-form integrals.
_DEFAULT_QUAD_ORDER = 64


class Shot(ABC):
    """Abstract flow-rate function (a "shot" in the Poisson shot-noise).

    Subclasses describe a *scale family*: the same dimensionless profile
    ``g`` on [0, 1], rescaled per flow so that a flow of size ``S`` and
    duration ``D`` transmits at ``X(u) = (S/D) g(u/D)``.  The paper's
    Assumption 2 (iid flow rate functions) corresponds to drawing iid
    ``(S, D)`` pairs and applying one common profile.
    """

    #: Human-readable name used in reports and benchmark output.
    name: str = "shot"

    # ------------------------------------------------------------------
    # profile-level quantities (dimensionless, independent of S and D)
    # ------------------------------------------------------------------

    @abstractmethod
    def profile(self, v: np.ndarray) -> np.ndarray:
        """Dimensionless rate profile ``g(v)`` on [0, 1], integral 1."""

    @abstractmethod
    def profile_moment(self, order: int) -> float:
        """``m_k = integral_0^1 g(v)^k dv``; ``m_1 == 1`` by normalisation."""

    @abstractmethod
    def profile_autocovariance(self, theta: np.ndarray) -> np.ndarray:
        """``a(theta) = integral_0^{1-theta} g(v) g(v+theta) dv`` for theta in [0,1]."""

    @abstractmethod
    def profile_cumulative(self, v: np.ndarray) -> np.ndarray:
        """``G(v) = integral_0^v g``; increases from 0 to 1 on [0, 1]."""

    @abstractmethod
    def profile_quantile(self, p: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`profile_cumulative` on [0, 1]."""

    # ------------------------------------------------------------------
    # flow-level quantities (broadcast over per-flow S and D arrays)
    # ------------------------------------------------------------------

    def rate(self, u, size, duration) -> np.ndarray:
        """Instantaneous rate ``X(u)`` of a (S, D) flow, zero outside [0, D]."""
        u = np.asarray(u, dtype=np.float64)
        size = np.asarray(size, dtype=np.float64)
        duration = np.asarray(duration, dtype=np.float64)
        v = np.clip(u / duration, 0.0, 1.0)
        inside = (u >= 0.0) & (u <= duration)
        return np.where(inside, (size / duration) * self.profile(v), 0.0)

    def cumulative(self, u, size, duration) -> np.ndarray:
        """Bytes delivered by flow time ``u``: ``integral_0^u X``."""
        u = np.asarray(u, dtype=np.float64)
        size = np.asarray(size, dtype=np.float64)
        duration = np.asarray(duration, dtype=np.float64)
        v = np.clip(u / duration, 0.0, 1.0)
        return size * self.profile_cumulative(v)

    def inverse_cumulative(self, volume, size, duration) -> np.ndarray:
        """Flow time at which ``volume`` bytes have been delivered.

        Used to timestamp packet boundaries when synthesising or generating
        traffic: packet ``j`` leaves when the cumulative byte curve crosses
        the end of its payload.
        """
        volume = np.asarray(volume, dtype=np.float64)
        size = np.asarray(size, dtype=np.float64)
        duration = np.asarray(duration, dtype=np.float64)
        p = np.clip(volume / size, 0.0, 1.0)
        return duration * self.profile_quantile(p)

    def moment_integral(self, order, size, duration) -> np.ndarray:
        """``integral_0^D X(u)^k du = m_k * S^k / D^(k-1)`` (Corollary 3 input)."""
        order = int(order)
        if order < 1:
            raise ParameterError(f"moment order must be >= 1, got {order}")
        size = np.asarray(size, dtype=np.float64)
        duration = np.asarray(duration, dtype=np.float64)
        return self.profile_moment(order) * size**order / duration ** (order - 1)

    def autocovariance_integral(self, lag, size, duration) -> np.ndarray:
        """``integral_0^{D-|tau|} X(u) X(u+|tau|) du`` (Theorem 2 kernel).

        Evaluates to 0 for ``|tau| >= D``.  Broadcasts ``lag`` against the
        flow arrays.
        """
        lag = np.abs(np.asarray(lag, dtype=np.float64))
        size = np.asarray(size, dtype=np.float64)
        duration = np.asarray(duration, dtype=np.float64)
        theta = lag / duration
        out = np.zeros(np.broadcast_shapes(theta.shape, size.shape), dtype=np.float64)
        active = theta < 1.0
        if np.any(active):
            theta_b = np.broadcast_to(theta, out.shape)[active]
            size_b = np.broadcast_to(size, out.shape)[active]
            dur_b = np.broadcast_to(duration, out.shape)[active]
            out[active] = (size_b**2 / dur_b) * self.profile_autocovariance(theta_b)
        return out

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def variance_factor(self) -> float:
        """Multiplier of ``lambda * E[S^2/D]`` in Corollary 2 for this shape.

        Equal to ``m_2 = integral_0^1 g^2``.  Theorem 3 guarantees
        ``variance_factor() >= 1`` with equality iff the shot is rectangular.
        """
        return self.profile_moment(2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class PowerShot(Shot):
    """Power-function shot ``X(u) = (b+1) (S/D) (u/D)^b`` (paper section V-D).

    ``b = 0`` is the rectangular shot, ``b = 1`` the triangular shot and
    ``b = 2`` the parabolic shot of Figures 9-13.  Any real ``b >= 0`` is
    accepted (the paper fits non-integer b per 30-minute interval,
    Figure 11).

    The variance of the total rate under this shot is

    .. math::  Var(R) = \\lambda \\frac{(b+1)^2}{2b+1} E[S^2/D] .
    """

    def __init__(self, power: float) -> None:
        self.power = check_nonnegative("power", power)
        self.name = f"power(b={self.power:g})"

    def __repr__(self) -> str:
        return f"PowerShot(power={self.power:g})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PowerShot) and other.power == self.power

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.power))

    # -- profile -------------------------------------------------------

    def profile(self, v):
        v = np.asarray(v, dtype=np.float64)
        b = self.power
        if b == 0.0:
            return np.ones_like(v)
        return (b + 1.0) * np.power(v, b)

    def profile_moment(self, order: int) -> float:
        order = int(order)
        if order < 1:
            raise ParameterError(f"moment order must be >= 1, got {order}")
        b = self.power
        return (b + 1.0) ** order / (order * b + 1.0)

    def profile_cumulative(self, v):
        v = np.asarray(v, dtype=np.float64)
        return np.power(np.clip(v, 0.0, 1.0), self.power + 1.0)

    def profile_quantile(self, p):
        p = np.asarray(p, dtype=np.float64)
        return np.power(np.clip(p, 0.0, 1.0), 1.0 / (self.power + 1.0))

    def profile_autocovariance(self, theta):
        """``(b+1)^2 * integral_0^{1-theta} v^b (v+theta)^b dv``.

        Closed form (binomial expansion) when ``b`` is a non-negative
        integer; Gauss-Legendre quadrature otherwise.
        """
        theta = np.asarray(theta, dtype=np.float64)
        b = self.power
        length = np.clip(1.0 - theta, 0.0, 1.0)
        if b == 0.0:
            return length
        if float(b).is_integer():
            b_int = int(b)
            total = np.zeros_like(theta)
            for j in range(b_int + 1):
                coeff = math.comb(b_int, j) / (b_int + j + 1.0)
                total += coeff * theta ** (b_int - j) * length ** (b_int + j + 1)
            return (b + 1.0) ** 2 * total
        nodes, weights = leggauss_nodes(_DEFAULT_QUAD_ORDER)
        v = length[..., None] * nodes
        integrand = np.power(v, b) * np.power(v + theta[..., None], b)
        return (b + 1.0) ** 2 * length * np.sum(weights * integrand, axis=-1)


class RectangularShot(PowerShot):
    """Constant-rate shot ``X(u) = S/D`` (Figure 7a, ``b = 0``).

    This is the M/G/infinity-flavoured model of [3]; by Theorem 3 it is the
    variance-minimising shot.
    """

    def __init__(self) -> None:
        super().__init__(0.0)
        self.name = "rectangular"


class TriangularShot(PowerShot):
    """Linear-ramp shot (Figure 7b, ``b = 1``), inspired by TCP's additive
    window growth.  Variance factor 4/3."""

    def __init__(self) -> None:
        super().__init__(1.0)
        self.name = "triangular"


class ParabolicShot(PowerShot):
    """Quadratic-ramp shot (``b = 2``), the best single fit for 5-tuple
    flows in the paper (Figure 10 and 11).  Variance factor 9/5."""

    def __init__(self) -> None:
        super().__init__(2.0)
        self.name = "parabolic"


class GenericShot(Shot):
    """Shot built from an arbitrary non-negative profile callable.

    ``profile_fn`` is any non-negative function on [0, 1]; it is normalised
    internally so that its integral is 1 (constraint (5) in the paper).  All
    integrals fall back to dense-grid quadrature, and the cumulative /
    quantile pair is tabulated for packet placement.

    Examples of profiles the paper suggests beyond powers: ``log``, square
    root, exponential ramps.
    """

    def __init__(
        self,
        profile_fn: Callable[[np.ndarray], np.ndarray],
        *,
        name: str = "generic",
        grid_points: int = 2048,
    ) -> None:
        if grid_points < 16:
            raise ParameterError(f"grid_points must be >= 16, got {grid_points}")
        self.name = name
        self._grid = np.linspace(0.0, 1.0, grid_points)
        raw = np.asarray(profile_fn(self._grid), dtype=np.float64)
        if raw.shape != self._grid.shape:
            raise ParameterError(
                "profile_fn must map an array of shape (n,) to shape (n,)"
            )
        if np.any(raw < 0.0) or not np.all(np.isfinite(raw)):
            raise ParameterError("profile_fn must be finite and non-negative on [0,1]")
        total = np.trapezoid(raw, self._grid)
        if total <= 0.0:
            raise ParameterError("profile_fn must have a strictly positive integral")
        self._values = raw / total
        cum = np.concatenate(
            [[0.0], np.cumsum(0.5 * (self._values[1:] + self._values[:-1]) * np.diff(self._grid))]
        )
        # guard against round-off so that G(1) == 1 exactly
        self._cumulative = cum / cum[-1]

    def profile(self, v):
        v = np.asarray(v, dtype=np.float64)
        return np.interp(v, self._grid, self._values)

    def profile_moment(self, order: int) -> float:
        order = int(order)
        if order < 1:
            raise ParameterError(f"moment order must be >= 1, got {order}")
        return float(np.trapezoid(self._values**order, self._grid))

    def profile_cumulative(self, v):
        v = np.asarray(v, dtype=np.float64)
        return np.interp(v, self._grid, self._cumulative)

    def profile_quantile(self, p):
        p = np.asarray(p, dtype=np.float64)
        return np.interp(p, self._cumulative, self._grid)

    def profile_autocovariance(self, theta):
        theta = np.asarray(theta, dtype=np.float64)
        nodes, weights = leggauss_nodes(_DEFAULT_QUAD_ORDER)
        length = np.clip(1.0 - theta, 0.0, 1.0)
        v = length[..., None] * nodes
        integrand = self.profile(v) * self.profile(v + theta[..., None])
        return length * np.sum(weights * integrand, axis=-1)


def variance_shape_factor(power: float) -> float:
    """``(b+1)^2 / (2b+1)``, the paper's variance multiplier for power shots.

    Convenience wrapper used throughout the experiments: 1 for b=0 (lower
    bound of Theorem 3), 4/3 for b=1, 9/5 for b=2.
    """
    b = check_nonnegative("power", power)
    return (b + 1.0) ** 2 / (2.0 * b + 1.0)
