"""The Poisson shot-noise traffic model — sections IV and V of the paper.

:class:`PoissonShotNoiseModel` is the full model: an arrival rate, a flow
ensemble (joint law of sizes and durations) and a shot shape.  It exposes
every quantity derived in the paper — mean (Corollary 1), variance
(Corollary 2), higher cumulants (Corollary 3), autocovariance (Theorem 2),
LST (Theorem 1), the Theorem 3 variance lower bound, the section V-E
Gaussian approximation and the section V-F averaged variance.

:class:`ThreeParameterModel` is the reduced, router-implementable summary
the paper advertises: only ``lambda``, ``E[S]``, ``E[S^2/D]`` plus a shape
multiplier — no per-flow state retained.

:class:`SuperposedModel` implements the section VIII extension to multiple
flow classes with a different shot per class: Poisson shot-noises are
closed under superposition, so means, cumulants and autocovariances add.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check_positive
from ..exceptions import ModelError
from . import lst as _lst
from .covariance import autocorrelation, autocovariance, spectral_density
from .ensemble import EmpiricalEnsemble, FlowEnsemble
from .fitting import PowerFit, fit_power_from_variance
from .gaussian import EdgeworthApproximation, GaussianApproximation
from .mginf import MGInfinityModel
from .parameters import FlowStatistics
from .sampling import averaged_variance
from .shots import RectangularShot, Shot

__all__ = [
    "PoissonShotNoiseModel",
    "ThreeParameterModel",
    "SuperposedModel",
]


class PoissonShotNoiseModel:
    """Total-rate model ``R(t) = sum_n X_n(t - T_n)`` on an uncongested link.

    Parameters
    ----------
    arrival_rate:
        Poisson flow arrival rate ``lambda`` (flows/second) — Assumption 1.
    ensemble:
        Joint law of flow (size, duration) — the iid Assumption 2.
    shot:
        Flow rate function shape shared by all flows.  Defaults to the
        rectangular shot, the variance-minimising choice of Theorem 3.
    """

    def __init__(
        self,
        arrival_rate: float,
        ensemble: FlowEnsemble,
        shot: Shot | None = None,
    ) -> None:
        self.arrival_rate = check_positive("arrival_rate", arrival_rate)
        self.ensemble = ensemble
        self.shot = shot if shot is not None else RectangularShot()

    @classmethod
    def from_flows(
        cls,
        sizes,
        durations,
        interval_length: float,
        shot: Shot | None = None,
    ) -> "PoissonShotNoiseModel":
        """Build the model straight from per-flow measurements.

        This is the paper's section VI pipeline: export flows over an
        interval, estimate ``lambda`` as count/interval, keep the empirical
        (S, D) sample for all expectations.
        """
        ensemble = EmpiricalEnsemble(sizes, durations)
        interval_length = check_positive("interval_length", interval_length)
        return cls(len(ensemble) / interval_length, ensemble, shot)

    def __repr__(self) -> str:
        return (
            f"PoissonShotNoiseModel(arrival_rate={self.arrival_rate:g}, "
            f"ensemble={self.ensemble!r}, shot={self.shot!r})"
        )

    # -- first and second moments (Corollaries 1 and 2) --------------------

    @property
    def mean(self) -> float:
        """``E[R] = lambda E[S]`` (Corollary 1) — bytes/second."""
        return self.arrival_rate * self.ensemble.mean_size

    @property
    def variance(self) -> float:
        """``Var(R) = lambda E[integral_0^D X^2]`` (Corollary 2)."""
        return self.arrival_rate * self.ensemble.expect(
            lambda s, d: self.shot.moment_integral(2, s, d)
        )

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def coefficient_of_variation(self) -> float:
        """std/mean — the figure-of-merit of the validation (Figures 9-13)."""
        return self.std / self.mean

    @property
    def variance_lower_bound(self) -> float:
        """Theorem 3: ``lambda E[S^2/D]``, reached by the rectangular shot."""
        return self.arrival_rate * self.ensemble.mean_square_size_over_duration

    # -- higher-order structure (Corollary 3, Theorems 1 and 2) -----------

    def cumulant(self, order: int) -> float:
        """n-th cumulant of the stationary rate (Corollary 3)."""
        return _lst.cumulant(order, self.arrival_rate, self.ensemble, self.shot)

    @property
    def skewness(self) -> float:
        return _lst.skewness(self.arrival_rate, self.ensemble, self.shot)

    @property
    def excess_kurtosis(self) -> float:
        return _lst.excess_kurtosis(self.arrival_rate, self.ensemble, self.shot)

    def laplace_transform(self, s: float, **kwargs) -> float:
        """Theorem 1 LST ``E[e^{-sR}]``."""
        return _lst.laplace_transform(
            s, self.arrival_rate, self.ensemble, self.shot, **kwargs
        )

    def rate_pdf(self, x=None, **kwargs):
        """Numerical inversion of the LST: the full first-order pdf."""
        return _lst.rate_pdf(
            self.arrival_rate, self.ensemble, self.shot, x, **kwargs
        )

    def chernoff_tail_bound(self, level: float, **kwargs) -> float:
        """Large-deviations bound on ``P(R > level)`` (section V-E pointer)."""
        return _lst.chernoff_tail_bound(
            level, self.arrival_rate, self.ensemble, self.shot, **kwargs
        )

    def autocovariance(self, lags, **kwargs) -> np.ndarray:
        """Theorem 2 autocovariance at the given lags (seconds)."""
        return autocovariance(
            self.arrival_rate, self.ensemble, self.shot, lags, **kwargs
        )

    def autocorrelation(self, lags, **kwargs) -> np.ndarray:
        """Theorem 2 autocorrelation coefficients (Figure 8)."""
        return autocorrelation(
            self.arrival_rate, self.ensemble, self.shot, lags, **kwargs
        )

    def spectral_density(self, frequencies, **kwargs) -> np.ndarray:
        """Campbell spectral density of the centred rate (Hz -> (bytes/s)^2/Hz)."""
        return spectral_density(
            self.arrival_rate, self.ensemble, self.shot, frequencies, **kwargs
        )

    # -- measurement-window correction (section V-F) -----------------------

    def averaged_variance(self, delta: float, **kwargs) -> float:
        """Variance of the Delta-averaged rate, eq. (7)."""
        return averaged_variance(
            self.arrival_rate, self.ensemble, self.shot, delta, **kwargs
        )

    def averaged_cov(self, delta: float, **kwargs) -> float:
        """CoV of the Delta-averaged rate."""
        return float(np.sqrt(self.averaged_variance(delta, **kwargs))) / self.mean

    # -- derived views ------------------------------------------------------

    def gaussian(self) -> GaussianApproximation:
        """Section V-E Gaussian approximation of the rate distribution."""
        return GaussianApproximation(self.mean, self.std)

    def edgeworth(self) -> EdgeworthApproximation:
        """Skewness/kurtosis-corrected refinement of the Gaussian
        approximation, built from the first four cumulants (Corollary 3)."""
        return EdgeworthApproximation.from_cumulants(
            self.cumulant(1), self.cumulant(2), self.cumulant(3),
            self.cumulant(4),
        )

    def required_capacity(self, epsilon: float) -> float:
        """Provisioning rule ``E[R] + F(epsilon) sigma`` (section VII-A)."""
        return self.gaussian().required_capacity(epsilon)

    def active_flows(self) -> MGInfinityModel:
        """The M/G/infinity count model of the flows active on the link."""
        durations = None
        if isinstance(self.ensemble, EmpiricalEnsemble):
            durations = self.ensemble.durations
        return MGInfinityModel(
            self.arrival_rate, self.ensemble.mean_duration, durations
        )

    def statistics(self) -> FlowStatistics:
        """The three-parameter summary of this model's inputs."""
        flow_count = (
            len(self.ensemble) if isinstance(self.ensemble, EmpiricalEnsemble) else 0
        )
        return FlowStatistics(
            arrival_rate=self.arrival_rate,
            mean_size=self.ensemble.mean_size,
            mean_square_size_over_duration=(
                self.ensemble.mean_square_size_over_duration
            ),
            mean_duration=self.ensemble.mean_duration,
            flow_count=flow_count,
        )

    def fit_power(self, measured_variance: float, **kwargs) -> PowerFit:
        """Section V-D: fit the power-shot exponent to a measured variance."""
        return fit_power_from_variance(
            measured_variance, self.statistics(), **kwargs
        )

    def with_shot(self, shot: Shot) -> "PoissonShotNoiseModel":
        """Same traffic, different shot assumption (shape sensitivity)."""
        return PoissonShotNoiseModel(self.arrival_rate, self.ensemble, shot)

    def scaled_arrivals(self, factor: float) -> "PoissonShotNoiseModel":
        """Section VII-A what-if: multiply ``lambda``, keep (S, D) law."""
        factor = check_positive("factor", factor)
        return PoissonShotNoiseModel(
            self.arrival_rate * factor, self.ensemble, self.shot
        )

    def superpose(self, *others: "PoissonShotNoiseModel") -> "SuperposedModel":
        """Multiplex independent flow classes (section VIII extension)."""
        return SuperposedModel((self, *others))


@dataclass(frozen=True)
class ThreeParameterModel:
    """The reduced model an ISP can run from NetFlow-style counters alone.

    Carries only the paper's three parameters (inside ``statistics``) and a
    shot shape factor ``(b+1)^2/(2b+1)``; everything a dimensioning tool
    needs — mean, variance, Gaussian quantiles — follows.  No per-flow
    state, no distributions.
    """

    statistics: FlowStatistics
    shape_factor: float = 1.0

    def __post_init__(self) -> None:
        check_positive("shape_factor", self.shape_factor)

    @property
    def mean(self) -> float:
        return self.statistics.mean_rate

    @property
    def variance(self) -> float:
        return self.statistics.variance(self.shape_factor)

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def coefficient_of_variation(self) -> float:
        return self.std / self.mean

    def gaussian(self) -> GaussianApproximation:
        return GaussianApproximation(self.mean, self.std)

    def required_capacity(self, epsilon: float) -> float:
        return self.gaussian().required_capacity(epsilon)

    def scaled_arrivals(self, factor: float) -> "ThreeParameterModel":
        return ThreeParameterModel(
            self.statistics.scaled_arrivals(factor), self.shape_factor
        )


class SuperposedModel:
    """Sum of independent Poisson shot-noise classes (multi-class traffic).

    Because arrivals are independent Poisson and shots independent, all
    cumulants and the autocovariance of the superposition are the sums of
    the per-class quantities.
    """

    def __init__(self, components) -> None:
        components = tuple(components)
        if not components:
            raise ModelError("SuperposedModel needs at least one component")
        self.components = components

    def __repr__(self) -> str:
        return f"SuperposedModel(n_classes={len(self.components)})"

    @property
    def mean(self) -> float:
        return float(sum(m.mean for m in self.components))

    @property
    def variance(self) -> float:
        return float(sum(m.variance for m in self.components))

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def coefficient_of_variation(self) -> float:
        return self.std / self.mean

    def cumulant(self, order: int) -> float:
        return float(sum(m.cumulant(order) for m in self.components))

    def autocovariance(self, lags, **kwargs) -> np.ndarray:
        lags = np.atleast_1d(np.asarray(lags, dtype=float))
        total = np.zeros(lags.shape)
        for m in self.components:
            total = total + m.autocovariance(lags, **kwargs)
        return total

    def autocorrelation(self, lags, **kwargs) -> np.ndarray:
        gamma0 = float(self.autocovariance([0.0], **kwargs)[0])
        return self.autocovariance(lags, **kwargs) / gamma0

    def averaged_variance(self, delta: float, **kwargs) -> float:
        return float(
            sum(m.averaged_variance(delta, **kwargs) for m in self.components)
        )

    def gaussian(self) -> GaussianApproximation:
        return GaussianApproximation(self.mean, self.std)

    def required_capacity(self, epsilon: float) -> float:
        return self.gaussian().required_capacity(epsilon)
