"""Measurement-based derivation of the shot shape — section V-D.

The power family has one free parameter ``b`` once the constraint
``integral X = S`` is imposed.  Matching the model variance

.. math::  \\sigma^2 = \\lambda \\frac{(b+1)^2}{2b+1} E[S^2/D]

to the *measured* variance ``sigma_hat^2`` gives, with
``kappa = sigma_hat^2 / (lambda E[S^2/D])``,

.. math::  \\hat b = (\\kappa - 1) + \\sqrt{\\kappa(\\kappa - 1)} ,

which is the estimator behind Figure 11 (histogram of ``b`` per 30-minute
interval; mean ~= 2 for 5-tuple flows).  Theorem 3 guarantees
``kappa >= 1`` in the fluid limit, but a finite averaging window ``Delta``
shrinks the measured variance (eq. 7), so real traces occasionally yield
``kappa < 1``; those fits are clipped to the rectangular shot and flagged.

:func:`fit_power_averaged` removes that bias by fitting ``b`` against the
Delta-averaged variance of eq. (7) instead of the instantaneous one — the
"better matching" correction described in section VI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from .._util import check_nonnegative, check_positive
from ..exceptions import FittingError
from .ensemble import FlowEnsemble
from .parameters import FlowStatistics
from .sampling import averaged_variance
from .shots import PowerShot, variance_shape_factor

__all__ = [
    "PowerFit",
    "solve_power",
    "fit_power_from_variance",
    "fit_power_from_cov",
    "fit_power_averaged",
]


@dataclass(frozen=True)
class PowerFit:
    """Result of fitting the power-shot exponent ``b``.

    Attributes
    ----------
    power:
        The fitted exponent ``b`` (possibly clipped, see ``clipped``).
    kappa:
        The measured variance ratio ``sigma_hat^2 / (lambda E[S^2/D])``.
    clipped:
        True when the raw estimate fell outside the valid domain
        (``kappa < 1``, explained by averaging; or beyond ``b_max``).
    """

    power: float
    kappa: float
    clipped: bool

    @property
    def shot(self) -> PowerShot:
        """The fitted shot object, ready to plug into the model."""
        return PowerShot(self.power)

    @property
    def shape_factor(self) -> float:
        """``(b+1)^2/(2b+1)`` of the fitted power."""
        return variance_shape_factor(self.power)


def solve_power(kappa: float) -> float:
    """Invert ``(b+1)^2/(2b+1) = kappa`` for ``b >= 0``.

    Sanity anchors: ``kappa = 1 -> b = 0``; ``4/3 -> 1``; ``9/5 -> 2``.
    """
    kappa = check_positive("kappa", kappa)
    if kappa < 1.0:
        # (b+1)^2/(2b+1) evaluates a couple of ulps below 1.0 for tiny
        # b, so absorb float noise at the rectangular bound and reject
        # only genuine Theorem 3 deficits
        if 1.0 - kappa > 1e-12:
            raise FittingError(
                f"kappa = {kappa:.4g} < 1 violates the Theorem 3 lower "
                "bound; clip to b = 0 or use fit_power_averaged to "
                "correct for the averaging window"
            )
        kappa = 1.0
    return (kappa - 1.0) + float(np.sqrt(kappa * (kappa - 1.0)))


def fit_power_from_variance(
    measured_variance: float,
    statistics: FlowStatistics,
    *,
    clip: bool = True,
) -> PowerFit:
    """Fit ``b`` from the measured variance of the total rate (section V-D)."""
    measured_variance = check_positive("measured_variance", measured_variance)
    kappa = measured_variance / (
        statistics.arrival_rate * statistics.mean_square_size_over_duration
    )
    if kappa < 1.0:
        if not clip:
            raise FittingError(
                f"kappa = {kappa:.4g} < 1 (Theorem 3); measured variance is "
                "below the rectangular-shot bound"
            )
        return PowerFit(power=0.0, kappa=kappa, clipped=True)
    return PowerFit(power=solve_power(kappa), kappa=kappa, clipped=False)


def fit_power_from_cov(
    measured_cov: float,
    statistics: FlowStatistics,
    *,
    clip: bool = True,
) -> PowerFit:
    """Fit ``b`` from the measured coefficient of variation (std/mean).

    Convenience wrapper: the paper reports CoV rather than raw variance in
    its validation figures.
    """
    measured_cov = check_positive("measured_cov", measured_cov)
    measured_variance = (measured_cov * statistics.mean_rate) ** 2
    return fit_power_from_variance(measured_variance, statistics, clip=clip)


def fit_power_averaged(
    measured_variance: float,
    arrival_rate: float,
    ensemble: FlowEnsemble,
    delta: float,
    *,
    b_max: float = 16.0,
    quad_order: int = 32,
    max_flows: int | None = 50_000,
) -> PowerFit:
    """Fit ``b`` against the Delta-averaged variance of eq. (7).

    Solves ``sigma_bar^2(Delta; b) = measured_variance`` for ``b``; this is
    unbiased with respect to the measurement window, at the cost of a root
    search with quadrature inside.  ``kappa`` in the result is still
    reported against the instantaneous rectangular bound, for comparability
    with :func:`fit_power_from_variance`.
    """
    measured_variance = check_positive("measured_variance", measured_variance)
    arrival_rate = check_positive("arrival_rate", arrival_rate)
    delta = check_positive("delta", delta)
    b_max = check_nonnegative("b_max", b_max)

    kappa = measured_variance / (
        arrival_rate * ensemble.mean_square_size_over_duration
    )

    def gap(b: float) -> float:
        model_var = averaged_variance(
            arrival_rate,
            ensemble,
            PowerShot(b),
            delta,
            quad_order=quad_order,
            max_flows=max_flows,
        )
        return model_var - measured_variance

    gap_low = gap(0.0)
    if gap_low >= 0.0:
        return PowerFit(power=0.0, kappa=kappa, clipped=True)
    gap_high = gap(b_max)
    if gap_high <= 0.0:
        return PowerFit(power=b_max, kappa=kappa, clipped=True)
    power = float(optimize.brentq(gap, 0.0, b_max, xtol=1e-4))
    return PowerFit(power=power, kappa=kappa, clipped=False)
