"""Averaging-interval effects on the measured rate — section V-F, eq. (7).

A monitor does not observe the instantaneous rate ``R(t)``; it reports the
byte count over windows of length ``Delta`` (200 ms in the paper, matching
the typical round-trip time; 5 minutes for SNMP).  Averaging filters the
process with a rectangular impulse response, so the *measured* variance is

.. math::

   \\bar\\sigma^2(\\Delta) = \\frac{2}{\\Delta}
       \\int_0^{\\Delta} \\Big(1 - \\frac{\\tau}{\\Delta}\\Big)
       \\Gamma(\\tau)\\, d\\tau
   \\qquad\\text{(eq. 7)},

always smaller than ``Gamma(0)``.  In the frequency domain the filter is the
squared sinc of the Wiener-Khintchine relation quoted in the paper.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .._util import check_positive, leggauss_nodes
from .covariance import autocovariance
from .ensemble import FlowEnsemble
from .shots import Shot

__all__ = [
    "averaged_variance_from_autocovariance",
    "averaged_variance",
    "averaged_variance_curve",
    "averaging_correction_factor",
    "sinc_squared_filter",
]


def averaged_variance_from_autocovariance(
    autocov: Callable[[np.ndarray], np.ndarray],
    delta: float,
    *,
    quad_order: int = 64,
) -> float:
    """Evaluate eq. (7) for an arbitrary autocovariance function.

    ``autocov`` maps an array of lags (seconds) to ``Gamma(tau)`` values.
    """
    delta = check_positive("delta", delta)
    nodes, weights = leggauss_nodes(quad_order)
    taus = delta * nodes
    gamma = np.asarray(autocov(taus), dtype=np.float64)
    integrand = (1.0 - nodes) * gamma
    # integral_0^Delta (1 - tau/Delta) Gamma = Delta * sum w * (1-x) Gamma(Delta x)
    return float(2.0 * np.sum(weights * integrand))


def averaged_variance(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    delta: float,
    *,
    quad_order: int = 64,
    max_flows: int | None = 200_000,
) -> float:
    """Eq. (7) for the shot-noise model: variance of the Delta-averaged rate."""

    def autocov(taus: np.ndarray) -> np.ndarray:
        return autocovariance(arrival_rate, ensemble, shot, taus, max_flows=max_flows)

    return averaged_variance_from_autocovariance(
        autocov, delta, quad_order=quad_order
    )


def averaged_variance_curve(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    deltas,
    *,
    quad_order: int = 48,
    max_flows: int | None = 100_000,
) -> np.ndarray:
    """Eq. (7) evaluated over a sweep of averaging intervals.

    The section V-F study in one call: how the *measured* variance shrinks
    as the monitor's window grows (SNMP's 5-minute windows sit far down
    this curve — the paper's motivation for flow-level modelling).
    """
    deltas = np.atleast_1d(np.asarray(deltas, dtype=np.float64))
    return np.array(
        [
            averaged_variance(
                arrival_rate, ensemble, shot, float(d),
                quad_order=quad_order, max_flows=max_flows,
            )
            for d in deltas
        ]
    )


def averaging_correction_factor(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    delta: float,
    *,
    quad_order: int = 64,
) -> float:
    """``sigma_bar^2(Delta) / sigma^2`` — how much averaging shrinks variance.

    Close to 1 when ``Delta`` is small compared to flow durations (the
    regime where the paper says Corollary 2 can be used directly); tends to
    0 as ``Delta`` grows.
    """
    smoothed = averaged_variance(
        arrival_rate, ensemble, shot, delta, quad_order=quad_order
    )
    instantaneous = float(
        autocovariance(arrival_rate, ensemble, shot, [0.0])[0]
    )
    return smoothed / instantaneous


def sinc_squared_filter(frequencies, delta: float) -> np.ndarray:
    """``|sin(pi f Delta) / (pi f Delta)|^2`` — the averaging filter in
    frequency domain (Wiener-Khintchine form quoted in section V-F)."""
    delta = check_positive("delta", delta)
    freqs = np.asarray(frequencies, dtype=np.float64)
    return np.sinc(freqs * delta) ** 2
