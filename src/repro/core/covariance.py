"""Second-order structure of the total rate — Theorem 2 of the paper.

For the Poisson shot-noise ``R(t) = sum_n X_n(t - T_n)`` the centred
autocovariance function is (Theorem 2)

.. math::

   \\Gamma(\\tau) = \\lambda\\, E\\Big[ 1_{|\\tau| < D}
       \\int_0^{D-|\\tau|} X(u)\\, X(u+|\\tau|)\\, du \\Big],

and Campbell's theorem gives the spectral density of the centred process as
``Psi(w) = lambda * E[|X_hat(w)|^2]`` where ``X_hat`` is the Fourier
transform of the shot.  ``Gamma(0)`` recovers Corollary 2 (the variance).

These functions power Figure 8 (autocorrelation of the total rate over
0-400 ms), the averaged-variance correction of section V-F, and the linear
predictor of section VII-B.
"""

from __future__ import annotations

import numpy as np

from .._util import as_1d_float_array, check_positive, leggauss_nodes
from ..exceptions import ParameterError
from .ensemble import EmpiricalEnsemble, FlowEnsemble
from .shots import Shot

__all__ = [
    "autocovariance",
    "reference_autocovariance",
    "autocorrelation",
    "spectral_density",
    "correlation_horizon",
]

#: Cap on the lags x flows broadcast block (elements) of the vectorized
#: autocovariance.  Sized so the ~6 working buffers stay cache-resident:
#: a bigger block is *slower* (the kernel is bandwidth-bound), a smaller
#: one re-pays the Python dispatch the vectorization removes.
_LAG_BLOCK_ELEMENTS = 262_144


def _flow_arrays(ensemble: FlowEnsemble, max_flows: int | None, seed: int = 0):
    """Extract (sizes, durations) arrays from an ensemble, subsampling if big."""
    if isinstance(ensemble, EmpiricalEnsemble):
        sizes, durations = ensemble.sizes, ensemble.durations
    else:
        reference = getattr(ensemble, "reference", None)
        if reference is not None:
            sizes, durations = reference.sizes, reference.durations
        else:
            sizes, durations = ensemble.sample(max_flows or 50_000, seed)
    if max_flows is not None and sizes.size > max_flows:
        rng = np.random.default_rng(seed)
        idx = rng.choice(sizes.size, size=max_flows, replace=False)
        sizes, durations = sizes[idx], durations[idx]
    return sizes, durations


def autocovariance(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    lags,
    *,
    max_flows: int | None = 200_000,
) -> np.ndarray:
    """Theorem 2: ``Gamma(tau)`` evaluated at each lag (seconds).

    Lags may be negative (the function is even).  Returns bytes^2/s^2 when
    sizes are in bytes and durations in seconds.

    Vectorized as a chunked ``lags x flows`` broadcast: each block of
    lags evaluates the Theorem 2 kernel against every flow in one shot
    call and reduces along the flow axis, so the Python-level cost is
    O(n_lags / block) instead of O(n_lags).  The per-lag loop survives as
    :func:`reference_autocovariance` (equivalence-tested).
    """
    arrival_rate = check_positive("arrival_rate", arrival_rate)
    lags = np.atleast_1d(np.asarray(lags, dtype=np.float64))
    sizes, durations = _flow_arrays(ensemble, max_flows)
    flat = np.abs(lags.ravel())
    out = np.empty(flat.shape, dtype=np.float64)
    block = max(1, _LAG_BLOCK_ELEMENTS // max(int(sizes.size), 1))
    for i in range(0, flat.size, block):
        kernel = shot.autocovariance_integral(
            flat[i: i + block, None], sizes[None, :], durations[None, :]
        )
        out[i: i + block] = arrival_rate * np.mean(kernel, axis=1)
    return out.reshape(lags.shape)


def reference_autocovariance(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    lags,
    *,
    max_flows: int | None = 200_000,
) -> np.ndarray:
    """Per-lag loop evaluation of Theorem 2 — the vectorization oracle."""
    arrival_rate = check_positive("arrival_rate", arrival_rate)
    lags = np.atleast_1d(np.asarray(lags, dtype=np.float64))
    sizes, durations = _flow_arrays(ensemble, max_flows)
    out = np.empty(lags.shape, dtype=np.float64)
    for i, lag in enumerate(lags.ravel()):
        kernel = shot.autocovariance_integral(abs(lag), sizes, durations)
        out.ravel()[i] = arrival_rate * float(np.mean(kernel))
    return out


def autocorrelation(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    lags,
    *,
    max_flows: int | None = 200_000,
) -> np.ndarray:
    """Autocorrelation coefficient ``Gamma(tau) / Gamma(0)`` (Figure 8)."""
    lags = np.atleast_1d(np.asarray(lags, dtype=np.float64))
    gamma = autocovariance(
        arrival_rate, ensemble, shot, np.concatenate([[0.0], lags.ravel()]),
        max_flows=max_flows,
    )
    gamma0 = gamma[0]
    if gamma0 <= 0.0:
        raise ParameterError("variance Gamma(0) must be positive")
    return (gamma[1:] / gamma0).reshape(lags.shape)


def spectral_density(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    frequencies,
    *,
    max_flows: int | None = 5_000,
    quad_order: int = 128,
) -> np.ndarray:
    """Campbell's theorem: ``Psi(f) = lambda E[|X_hat(2 pi f)|^2]``.

    ``frequencies`` are in Hz.  The shot transform is evaluated by
    Gauss-Legendre quadrature on the dimensionless profile:
    ``X_hat(w) = S * integral_0^1 g(v) exp(-i w D v) dv``.

    The two-sided density integrates (over all f) to the variance.
    """
    arrival_rate = check_positive("arrival_rate", arrival_rate)
    freqs = as_1d_float_array("frequencies", np.atleast_1d(frequencies))
    sizes, durations = _flow_arrays(ensemble, max_flows)
    nodes, weights = leggauss_nodes(quad_order)
    profile = shot.profile(nodes)  # (q,)
    # phase[f, flow, node] = 2 pi f * D_flow * node
    omega = 2.0 * np.pi * freqs
    phase = omega[:, None, None] * durations[None, :, None] * nodes[None, None, :]
    kernel = (weights * profile)[None, None, :] * np.exp(-1j * phase)
    transform = sizes[None, :] * np.sum(kernel, axis=-1)  # (f, flow)
    return arrival_rate * np.mean(np.abs(transform) ** 2, axis=1)


def correlation_horizon(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    threshold: float = 0.5,
    *,
    max_lag: float | None = None,
    points: int = 256,
) -> float:
    """Smallest lag at which the autocorrelation drops below ``threshold``.

    Section VII-B notes that prediction only works over horizons comparable
    to the mean flow duration; this helper quantifies that horizon.  Returns
    ``max_lag`` if the correlation never drops below the threshold.
    """
    if not 0.0 < threshold < 1.0:
        raise ParameterError(f"threshold must be in (0,1), got {threshold}")
    if max_lag is None:
        max_lag = 4.0 * ensemble.mean_duration
    max_lag = check_positive("max_lag", max_lag)
    lags = np.linspace(0.0, max_lag, points + 1)[1:]
    rho = autocorrelation(arrival_rate, ensemble, shot, lags)
    below = np.nonzero(rho < threshold)[0]
    if below.size == 0:
        return float(max_lag)
    return float(lags[below[0]])
