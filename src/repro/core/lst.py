"""Laplace transform, cumulants and distribution of the total rate.

Theorem 1 of the paper gives the Laplace-Stieltjes transform (LST) of the
stationary total rate ``R``:

.. math::

   E[e^{-sR}] = \\exp\\Big(-\\lambda\\,
       E\\Big[\\int_0^{D} \\big(1 - e^{-s X(u)}\\big)\\,du\\Big]\\Big).

Expanding the log of the transform in powers of ``s`` shows that the n-th
*cumulant* of ``R`` is ``kappa_n = lambda E[integral_0^D X(u)^n du]``
(Corollary 3 in cumulant form; ``kappa_1`` is Corollary 1 because
``integral X = S``, ``kappa_2`` is Corollary 2).

The same log-transform evaluated on the imaginary axis is the
characteristic function, which we invert numerically (Gil-Pelaez) to obtain
the full first-order distribution of the rate — what the paper obtains "by
inverting the LST" — plus a Chernoff bound for the tail via the
large-deviations route the paper cites ([23]).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .._util import check_positive, leggauss_nodes
from ..exceptions import ModelError, ParameterError
from .covariance import _flow_arrays
from .ensemble import FlowEnsemble
from .shots import Shot

__all__ = [
    "cumulant",
    "cumulants",
    "skewness",
    "excess_kurtosis",
    "log_laplace_transform",
    "laplace_transform",
    "characteristic_function",
    "reference_characteristic_function",
    "rate_pdf",
    "chernoff_tail_bound",
]

_DEFAULT_QUAD_ORDER = 48
_DEFAULT_MAX_FLOWS = 20_000

#: Cap on the omegas x flows x nodes broadcast block (complex128
#: elements) of the vectorized characteristic function.  Sized to keep
#: the phase tensor cache-resident (the kernel is exp/bandwidth-bound);
#: see the matching note on ``covariance._LAG_BLOCK_ELEMENTS``.
_OMEGA_BLOCK_ELEMENTS = 131_072


def cumulant(
    order: int, arrival_rate: float, ensemble: FlowEnsemble, shot: Shot
) -> float:
    """n-th cumulant ``kappa_n = lambda E[integral_0^D X^n du]``."""
    arrival_rate = check_positive("arrival_rate", arrival_rate)
    return arrival_rate * ensemble.expect(
        lambda s, d: shot.moment_integral(order, s, d)
    )


def cumulants(
    n: int, arrival_rate: float, ensemble: FlowEnsemble, shot: Shot
) -> np.ndarray:
    """First ``n`` cumulants ``[kappa_1, ..., kappa_n]``."""
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    return np.array(
        [cumulant(k, arrival_rate, ensemble, shot) for k in range(1, n + 1)]
    )


def skewness(arrival_rate: float, ensemble: FlowEnsemble, shot: Shot) -> float:
    """``kappa_3 / kappa_2^{3/2}`` — shrinks as ``1/sqrt(lambda)``.

    Quantifies how fast the Gaussian approximation of section V-E becomes
    accurate as flows aggregate.
    """
    k2 = cumulant(2, arrival_rate, ensemble, shot)
    k3 = cumulant(3, arrival_rate, ensemble, shot)
    return k3 / k2**1.5


def excess_kurtosis(
    arrival_rate: float, ensemble: FlowEnsemble, shot: Shot
) -> float:
    """``kappa_4 / kappa_2^2`` — shrinks as ``1/lambda``."""
    k2 = cumulant(2, arrival_rate, ensemble, shot)
    k4 = cumulant(4, arrival_rate, ensemble, shot)
    return k4 / k2**2


def _shot_exponent_integral(
    transform_of_rate,
    ensemble: FlowEnsemble,
    shot: Shot,
    *,
    quad_order: int = _DEFAULT_QUAD_ORDER,
    max_flows: int | None = _DEFAULT_MAX_FLOWS,
) -> complex:
    """``E[integral_0^D h(X(u)) du]`` for a scalar function ``h``.

    ``transform_of_rate`` receives the per-(flow, node) rate matrix and must
    return same-shape values; the integral over ``u`` becomes
    ``D * sum_q w_q h((S/D) g(v_q))``.
    """
    sizes, durations = _flow_arrays(ensemble, max_flows)
    nodes, weights = leggauss_nodes(quad_order)
    profile = shot.profile(nodes)
    rates = (sizes / durations)[:, None] * profile[None, :]
    values = transform_of_rate(rates)
    per_flow = durations * (values @ weights)
    return complex(np.mean(per_flow))


def log_laplace_transform(
    s: float,
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    *,
    quad_order: int = _DEFAULT_QUAD_ORDER,
    max_flows: int | None = _DEFAULT_MAX_FLOWS,
) -> float:
    """``log E[e^{-sR}]`` from Theorem 1 (real ``s >= 0``)."""
    arrival_rate = check_positive("arrival_rate", arrival_rate)
    s = float(s)
    if s < 0:
        raise ParameterError(f"s must be >= 0 for the LST, got {s}")
    expectation = _shot_exponent_integral(
        lambda x: 1.0 - np.exp(-s * x),
        ensemble,
        shot,
        quad_order=quad_order,
        max_flows=max_flows,
    )
    return -arrival_rate * expectation.real


def laplace_transform(
    s: float,
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    **kwargs,
) -> float:
    """``E[e^{-sR}]`` (Theorem 1)."""
    return float(
        np.exp(log_laplace_transform(s, arrival_rate, ensemble, shot, **kwargs))
    )


def characteristic_function(
    omega,
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    *,
    quad_order: int = _DEFAULT_QUAD_ORDER,
    max_flows: int | None = _DEFAULT_MAX_FLOWS,
) -> np.ndarray:
    """``phi(w) = E[e^{i w R}] = exp(lambda E[integral (e^{iwX}-1) du])``.

    Vectorized over ``omega``: each block of frequencies evaluates the
    ``(omega, flow, node)`` phase tensor in one pass and contracts the
    quadrature and flow axes with matrix products, so the Python-level
    cost is O(n_omega / block) instead of O(n_omega) — the inner loop
    the Gil-Pelaez inversion of :func:`rate_pdf` spends its time in.
    The per-omega loop survives as
    :func:`reference_characteristic_function` (equivalence-tested).
    """
    arrival_rate = check_positive("arrival_rate", arrival_rate)
    omegas = np.atleast_1d(np.asarray(omega, dtype=np.float64))
    sizes, durations = _flow_arrays(ensemble, max_flows)
    nodes, weights = leggauss_nodes(quad_order)
    profile = shot.profile(nodes)
    rates = (sizes / durations)[:, None] * profile[None, :]  # (flow, node)
    flat = omegas.ravel()
    out = np.empty(flat.shape, dtype=np.complex128)
    block = max(1, _OMEGA_BLOCK_ELEMENTS // max(rates.size, 1))
    for i in range(0, flat.size, block):
        w = flat[i: i + block]
        values = np.exp(1j * w[:, None, None] * rates[None, :, :])
        values -= 1.0
        per_flow = durations[None, :] * (values @ weights)  # (omega, flow)
        expectation = np.mean(per_flow, axis=1)
        out[i: i + block] = np.exp(arrival_rate * expectation)
    return out.reshape(omegas.shape)


def reference_characteristic_function(
    omega,
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    *,
    quad_order: int = _DEFAULT_QUAD_ORDER,
    max_flows: int | None = _DEFAULT_MAX_FLOWS,
) -> np.ndarray:
    """Per-omega loop evaluation of ``phi`` — the vectorization oracle."""
    arrival_rate = check_positive("arrival_rate", arrival_rate)
    omegas = np.atleast_1d(np.asarray(omega, dtype=np.float64))
    out = np.empty(omegas.shape, dtype=np.complex128)
    for i, w in enumerate(omegas.ravel()):
        expectation = _shot_exponent_integral(
            lambda x, w=w: np.exp(1j * w * x) - 1.0,
            ensemble,
            shot,
            quad_order=quad_order,
            max_flows=max_flows,
        )
        out.ravel()[i] = np.exp(arrival_rate * expectation)
    return out


def rate_pdf(
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    x=None,
    *,
    n_omega: int = 512,
    span_sigmas: float = 6.0,
    quad_order: int = _DEFAULT_QUAD_ORDER,
    max_flows: int | None = _DEFAULT_MAX_FLOWS,
) -> tuple[np.ndarray, np.ndarray]:
    """First-order distribution of the rate by numerically inverting the LST.

    Returns ``(x, pdf)``.  The characteristic function of a shot noise with
    many active flows decays like a Gaussian of the same variance, so the
    integration window ``|w| <= 8/sigma`` captures it to machine precision.
    """
    k1 = cumulant(1, arrival_rate, ensemble, shot)
    k2 = cumulant(2, arrival_rate, ensemble, shot)
    sigma = float(np.sqrt(k2))
    if x is None:
        x = np.linspace(
            max(k1 - span_sigmas * sigma, 0.0), k1 + span_sigmas * sigma, 201
        )
    x = np.asarray(x, dtype=np.float64)
    omega_max = 8.0 / sigma
    omegas = np.linspace(0.0, omega_max, n_omega)
    phi = characteristic_function(
        omegas, arrival_rate, ensemble, shot,
        quad_order=quad_order, max_flows=max_flows,
    )
    # pdf(x) = (1/pi) * integral_0^inf Re[phi(w) e^{-iwx}] dw
    kernel = np.real(phi[None, :] * np.exp(-1j * omegas[None, :] * x[:, None]))
    pdf = np.trapezoid(kernel, omegas, axis=1) / np.pi
    return x, np.maximum(pdf, 0.0)


def chernoff_tail_bound(
    level: float,
    arrival_rate: float,
    ensemble: FlowEnsemble,
    shot: Shot,
    *,
    quad_order: int = _DEFAULT_QUAD_ORDER,
    max_flows: int | None = _DEFAULT_MAX_FLOWS,
) -> float:
    """Large-deviations upper bound ``P(R > level) <= exp(psi(t) - t*level)``.

    ``psi(t) = lambda E[integral (e^{tX} - 1) du]`` is the log-MGF of ``R``;
    the bound is optimised over ``t > 0``.  This is the sharper tail
    estimate the paper points to via [23] when the Gaussian approximation
    is too rough.  Returns 1.0 when ``level <= E[R]`` (the bound is vacuous
    below the mean).
    """
    level = check_positive("level", level)
    mean = cumulant(1, arrival_rate, ensemble, shot)
    if level <= mean:
        return 1.0
    sizes, durations = _flow_arrays(ensemble, max_flows)
    peak = float(np.max(sizes / durations)) * float(
        np.max(shot.profile(np.linspace(0.0, 1.0, 257)))
    )
    if peak <= 0:
        raise ModelError("cannot bound the tail of a zero-rate ensemble")
    t_max = 500.0 / peak  # keep exp(t X) within float range

    def negative_exponent(t: float) -> float:
        psi = arrival_rate * _shot_exponent_integral(
            lambda x, t=t: np.expm1(t * x),
            ensemble,
            shot,
            quad_order=quad_order,
            max_flows=max_flows,
        ).real
        return psi - t * level

    result = optimize.minimize_scalar(
        negative_exponent, bounds=(1e-12, t_max), method="bounded"
    )
    return float(min(1.0, np.exp(result.fun)))
