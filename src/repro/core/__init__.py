"""Core Poisson shot-noise model (the paper's primary contribution).

Import surface::

    from repro.core import (
        PoissonShotNoiseModel, ThreeParameterModel, FlowStatistics,
        RectangularShot, TriangularShot, ParabolicShot, PowerShot,
        EmpiricalEnsemble, fit_power_from_variance, ...
    )
"""

from .covariance import (
    autocorrelation,
    autocovariance,
    correlation_horizon,
    spectral_density,
)
from .ensemble import (
    EmpiricalEnsemble,
    FlowEnsemble,
    MonteCarloEnsemble,
    SizeRateEnsemble,
)
from .fitting import (
    PowerFit,
    fit_power_averaged,
    fit_power_from_cov,
    fit_power_from_variance,
    solve_power,
)
from .gaussian import (
    EdgeworthApproximation,
    GaussianApproximation,
    normal_quantile,
)
from .lst import (
    characteristic_function,
    chernoff_tail_bound,
    cumulant,
    cumulants,
    excess_kurtosis,
    laplace_transform,
    log_laplace_transform,
    rate_pdf,
    skewness,
)
from .mginf import MGInfinityModel
from .model import PoissonShotNoiseModel, SuperposedModel, ThreeParameterModel
from .parameters import FlowStatistics
from .sampling import (
    averaged_variance,
    averaged_variance_curve,
    averaged_variance_from_autocovariance,
    averaging_correction_factor,
    sinc_squared_filter,
)
from .shots import (
    GenericShot,
    ParabolicShot,
    PowerShot,
    RectangularShot,
    Shot,
    TriangularShot,
    variance_shape_factor,
)

__all__ = [
    # model
    "PoissonShotNoiseModel",
    "ThreeParameterModel",
    "SuperposedModel",
    "FlowStatistics",
    # shots
    "Shot",
    "PowerShot",
    "RectangularShot",
    "TriangularShot",
    "ParabolicShot",
    "GenericShot",
    "variance_shape_factor",
    # ensembles
    "FlowEnsemble",
    "EmpiricalEnsemble",
    "MonteCarloEnsemble",
    "SizeRateEnsemble",
    # second order
    "autocovariance",
    "autocorrelation",
    "spectral_density",
    "correlation_horizon",
    # transforms
    "cumulant",
    "cumulants",
    "skewness",
    "excess_kurtosis",
    "laplace_transform",
    "log_laplace_transform",
    "characteristic_function",
    "rate_pdf",
    "chernoff_tail_bound",
    # averaging window
    "averaged_variance",
    "averaged_variance_curve",
    "averaged_variance_from_autocovariance",
    "averaging_correction_factor",
    "sinc_squared_filter",
    # gaussian
    "GaussianApproximation",
    "EdgeworthApproximation",
    "normal_quantile",
    # fitting
    "PowerFit",
    "solve_power",
    "fit_power_from_variance",
    "fit_power_from_cov",
    "fit_power_averaged",
    # M/G/infinity
    "MGInfinityModel",
]
