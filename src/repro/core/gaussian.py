"""Gaussian approximation of the total rate — section V-E.

With many simultaneously active flows the Central Limit Theorem justifies
approximating the marginal law of ``R(t)`` by a normal with the model's
mean and variance.  The paper uses this for dimensioning: pick a link
capacity ``C = E[R] + F(epsilon) * sigma`` so that the rate exceeds ``C``
for less than a fraction ``epsilon`` of time, where ``F`` is the standard
normal quantile function.

The approximation also yields the "70% of time within one sigma of the
mean" rule of thumb quoted in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .._util import check_positive, check_probability

__all__ = ["GaussianApproximation", "EdgeworthApproximation", "normal_quantile"]


def normal_quantile(epsilon: float) -> float:
    """``F(epsilon)``: the paper's normal quantile, ``P(N > F) = epsilon``.

    E.g. ``F(0.05) ~= 1.64``, ``F(0.01) ~= 2.33``.
    """
    epsilon = check_probability("epsilon", epsilon)
    return float(stats.norm.ppf(1.0 - epsilon))


@dataclass(frozen=True)
class GaussianApproximation:
    """Normal approximation ``N(mean, std^2)`` of the stationary total rate."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        check_positive("mean", self.mean)
        check_positive("std", self.std)

    @property
    def variance(self) -> float:
        return self.std**2

    @property
    def coefficient_of_variation(self) -> float:
        return self.std / self.mean

    def pdf(self, x) -> np.ndarray:
        """Approximate probability density of the total rate."""
        return stats.norm.pdf(np.asarray(x, dtype=float), self.mean, self.std)

    def cdf(self, x) -> np.ndarray:
        """``P(R <= x)`` under the approximation."""
        return stats.norm.cdf(np.asarray(x, dtype=float), self.mean, self.std)

    def tail_probability(self, level: float) -> float:
        """``P(R > level)`` — the congestion probability for capacity ``level``."""
        return float(stats.norm.sf(level, self.mean, self.std))

    def quantile(self, p: float) -> float:
        """Value exceeded with probability ``1 - p``."""
        p = check_probability("p", p)
        return float(stats.norm.ppf(p, self.mean, self.std))

    def required_capacity(self, epsilon: float) -> float:
        """Capacity ``E[R] + F(epsilon) sigma`` with congestion fraction <= epsilon.

        This is the section VII-A provisioning rule.
        """
        return self.mean + normal_quantile(epsilon) * self.std

    def symmetric_band(self, probability: float = 0.70) -> tuple[float, float]:
        """Interval ``[mean - k sigma, mean + k sigma]`` holding ``probability``.

        With the default 0.70 this is the paper's "70% of time the rate is
        within one standard deviation of its mean" statement (k ~= 1.04).
        """
        probability = check_probability("probability", probability)
        k = float(stats.norm.ppf(0.5 + probability / 2.0))
        return self.mean - k * self.std, self.mean + k * self.std

    def standardize(self, x) -> np.ndarray:
        """``(x - mean) / std`` — convenience for anomaly scoring."""
        return (np.asarray(x, dtype=float) - self.mean) / self.std


@dataclass(frozen=True)
class EdgeworthApproximation:
    """Gaussian approximation refined with cumulants 3-4 (Edgeworth).

    The shot noise is right-skewed (all shots are non-negative), with
    skewness shrinking as ``1/sqrt(lambda)``.  On lightly multiplexed
    links the plain Gaussian of section V-E under-estimates the upper
    tail; the Edgeworth series corrects the pdf/cdf with the model's
    skewness and excess kurtosis (available in closed form from
    Corollary 3 / :func:`repro.core.lst.cumulants`), and the
    Cornish-Fisher expansion corrects the provisioning quantile.
    """

    mean: float
    std: float
    skewness: float = 0.0
    excess_kurtosis: float = 0.0

    def __post_init__(self) -> None:
        check_positive("mean", self.mean)
        check_positive("std", self.std)

    @classmethod
    def from_cumulants(cls, k1: float, k2: float, k3: float, k4: float):
        """Build from the first four cumulants of the total rate."""
        std = float(np.sqrt(k2))
        return cls(
            mean=float(k1),
            std=std,
            skewness=float(k3 / k2**1.5),
            excess_kurtosis=float(k4 / k2**2),
        )

    @property
    def gaussian(self) -> GaussianApproximation:
        """The order-0 (plain Gaussian) version of this approximation."""
        return GaussianApproximation(self.mean, self.std)

    def _z(self, x) -> np.ndarray:
        return (np.asarray(x, dtype=float) - self.mean) / self.std

    def pdf(self, x) -> np.ndarray:
        """Edgeworth-corrected density (clipped at zero: the series is an
        asymptotic expansion and can dip negative deep in the tails)."""
        z = self._z(x)
        g1, g2 = self.skewness, self.excess_kurtosis
        he3 = z**3 - 3 * z
        he4 = z**4 - 6 * z**2 + 3
        he6 = z**6 - 15 * z**4 + 45 * z**2 - 15
        correction = (
            1.0 + g1 / 6.0 * he3 + g2 / 24.0 * he4 + g1**2 / 72.0 * he6
        )
        base = stats.norm.pdf(z) / self.std
        return np.maximum(base * correction, 0.0)

    def cdf(self, x) -> np.ndarray:
        z = self._z(x)
        g1, g2 = self.skewness, self.excess_kurtosis
        he2 = z**2 - 1
        he3 = z**3 - 3 * z
        he5 = z**5 - 10 * z**3 + 15 * z
        correction = (
            g1 / 6.0 * he2 + g2 / 24.0 * he3 + g1**2 / 72.0 * he5
        )
        return np.clip(stats.norm.cdf(z) - stats.norm.pdf(z) * correction, 0.0, 1.0)

    def tail_probability(self, level: float) -> float:
        """``P(R > level)`` with the skewness-aware tail."""
        return float(1.0 - self.cdf(level))

    def required_capacity(self, epsilon: float) -> float:
        """Cornish-Fisher-corrected provisioning quantile.

        For right-skewed traffic this exceeds the Gaussian capacity — the
        plain section V-E rule slightly under-provisions small links.
        """
        epsilon = check_probability("epsilon", epsilon)
        z = float(stats.norm.ppf(1.0 - epsilon))
        g1, g2 = self.skewness, self.excess_kurtosis
        z_cf = (
            z
            + g1 / 6.0 * (z**2 - 1)
            + g2 / 24.0 * (z**3 - 3 * z)
            - g1**2 / 36.0 * (2 * z**3 - 5 * z)
        )
        return self.mean + z_cf * self.std
