"""The M/G/infinity active-flow model — section V-A of the paper.

When shots are rectangles of height 1, the Poisson shot-noise reduces to
the number of customers ``N(t)`` in an M/G/infinity queue: flows arrive as
Poisson(lambda), stay for a generally distributed duration ``D``, and the
stationary count is Poisson with mean ``rho = lambda E[D]`` — the paper
uses this fact (via its PGF, eq. 3) in the proof of Theorem 1.

The class below also exposes the two auxiliary results used in that proof:

* the *length-biased* duration of a flow observed active at a random time,
  with density ``f0(y) = y f(y) / E[D]`` (section V-A, residual-service
  argument), and
* the count autocovariance ``Gamma_N(tau) = lambda E[(D - |tau|)+]``, which
  is Theorem 2 specialised to unit-height rectangles.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from .._util import as_1d_float_array, check_positive
from ..exceptions import ParameterError

__all__ = ["MGInfinityModel"]


class MGInfinityModel:
    """Stationary M/G/infinity flow-count model.

    Parameters
    ----------
    arrival_rate:
        Poisson flow arrival rate ``lambda`` (flows/second).
    mean_duration:
        ``E[D]`` in seconds.  May be omitted when ``durations`` is given.
    durations:
        Optional array of per-flow durations; enables the count
        autocovariance and length-biased statistics.
    """

    def __init__(
        self,
        arrival_rate: float,
        mean_duration: float | None = None,
        durations=None,
    ) -> None:
        self.arrival_rate = check_positive("arrival_rate", arrival_rate)
        self._durations = None
        if durations is not None:
            self._durations = as_1d_float_array("durations", durations)
            if np.any(self._durations <= 0):
                raise ParameterError("durations must be strictly positive")
            if mean_duration is None:
                mean_duration = float(np.mean(self._durations))
        if mean_duration is None:
            raise ParameterError("provide mean_duration or durations")
        self.mean_duration = check_positive("mean_duration", mean_duration)

    def __repr__(self) -> str:
        return (
            f"MGInfinityModel(arrival_rate={self.arrival_rate:g}, "
            f"mean_duration={self.mean_duration:g})"
        )

    # -- stationary count --------------------------------------------------

    @property
    def load(self) -> float:
        """``rho = lambda E[D]`` — mean (and variance) of the active count."""
        return self.arrival_rate * self.mean_duration

    @property
    def count_distribution(self):
        """Frozen Poisson(rho) law of the stationary active-flow count."""
        return stats.poisson(self.load)

    def pmf(self, k) -> np.ndarray:
        """``P(N = k)`` (paper's M/G/infinity marginal, eq. before (3))."""
        return self.count_distribution.pmf(np.asarray(k))

    def pgf(self, z) -> np.ndarray:
        """Probability generating function ``exp(rho (z - 1))`` (eq. 3)."""
        z = np.asarray(z, dtype=np.float64)
        return np.exp(self.load * (z - 1.0))

    def probability_at_least(self, k: int) -> float:
        """``P(N >= k)`` — e.g. probability a flow-table exceeds a size."""
        if k <= 0:
            return 1.0
        return float(self.count_distribution.sf(k - 1))

    def quantile(self, p: float) -> int:
        """Smallest ``k`` with ``P(N <= k) >= p`` (flow-table sizing)."""
        if not 0.0 < p < 1.0:
            raise ParameterError(f"p must be in (0,1), got {p}")
        return int(self.count_distribution.ppf(p))

    # -- second-order structure and length bias -----------------------------

    def _require_durations(self) -> np.ndarray:
        if self._durations is None:
            raise ParameterError(
                "this quantity needs per-flow duration samples; "
                "construct the model with durations=..."
            )
        return self._durations

    def count_autocovariance(self, lags) -> np.ndarray:
        """``Gamma_N(tau) = lambda E[(D - |tau|)+]`` (Theorem 2, unit shots)."""
        durations = self._require_durations()
        lags = np.abs(np.atleast_1d(np.asarray(lags, dtype=np.float64)))
        excess = np.maximum(durations[None, :] - lags[:, None], 0.0)
        return self.arrival_rate * np.mean(excess, axis=1)

    def count_autocorrelation(self, lags) -> np.ndarray:
        """``Gamma_N(tau) / Gamma_N(0)``."""
        gamma = self.count_autocovariance(np.concatenate([[0.0], np.atleast_1d(lags)]))
        return gamma[1:] / gamma[0]

    @property
    def length_biased_mean_duration(self) -> float:
        """Mean duration ``E[D^2]/E[D]`` of a flow seen active at a random
        instant — always >= E[D] (the inspection paradox used in the proof
        of Theorem 1)."""
        durations = self._require_durations()
        return float(np.mean(durations**2) / np.mean(durations))

    def length_biased_sample(self, n: int, rng=None) -> np.ndarray:
        """Draw ``n`` durations from the length-biased density
        ``f0(y) = y f(y) / E[D]`` by weighted resampling."""
        durations = self._require_durations()
        rng = np.random.default_rng(rng) if not isinstance(
            rng, np.random.Generator
        ) else rng
        weights = durations / durations.sum()
        return rng.choice(durations, size=int(n), p=weights)
