"""IPFIX (RFC 7011) flow archives: streaming reader and writer.

The on-disk layout is a concatenation of IPFIX messages — a 16-byte
header (version 10), then sets: template sets (id 2) that describe
record layouts, and data sets (id >= 256) carrying fixed-size records.
The reader decodes templates into numpy structured dtypes on the fly,
so it handles any exporter whose templates cover the five-tuple,
packet/octet counters and start/end timestamps; unknown information
elements are skipped, enterprise-specific ones tolerated.

Our writer emits one template (id 256) with millisecond start/end
timestamps (IEs 152/153), so exported archives round-trip with 1 ms
quantization — same documented tolerance as NetFlow v5.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from ..exceptions import ParameterError, TraceFormatError
from .records import FLOW_RECORD_DTYPE

__all__ = [
    "IPFIX_VERSION",
    "IPFIX_EXPORT_TEMPLATE_ID",
    "IpfixReader",
    "IpfixWriter",
    "write_ipfix",
]

IPFIX_VERSION = 10

#: version, length, export_time, sequence, observation_domain_id
_MESSAGE_HEADER = struct.Struct(">HHIII")
#: set_id, length
_SET_HEADER = struct.Struct(">HH")
#: template_id, field_count
_TEMPLATE_HEADER = struct.Struct(">HH")
_FIELD_SPEC = struct.Struct(">HH")

_TEMPLATE_SET_ID = 2
_OPTIONS_TEMPLATE_SET_ID = 3
_MIN_DATA_SET_ID = 256
_MAX_MESSAGE_LENGTH = 0xFFFF

# IANA information element numbers (RFC 7012 registry).
IE_OCTET_DELTA_COUNT = 1
IE_PACKET_DELTA_COUNT = 2
IE_PROTOCOL_IDENTIFIER = 4
IE_SOURCE_TRANSPORT_PORT = 7
IE_SOURCE_IPV4_ADDRESS = 8
IE_DESTINATION_TRANSPORT_PORT = 11
IE_DESTINATION_IPV4_ADDRESS = 12
IE_FLOW_START_SECONDS = 150
IE_FLOW_END_SECONDS = 151
IE_FLOW_START_MILLISECONDS = 152
IE_FLOW_END_MILLISECONDS = 153

IPFIX_EXPORT_TEMPLATE_ID = 256

#: Our export template: (IE number, field length).  45-byte records.
_EXPORT_FIELDS = (
    (IE_SOURCE_IPV4_ADDRESS, 4),
    (IE_DESTINATION_IPV4_ADDRESS, 4),
    (IE_SOURCE_TRANSPORT_PORT, 2),
    (IE_DESTINATION_TRANSPORT_PORT, 2),
    (IE_PROTOCOL_IDENTIFIER, 1),
    (IE_PACKET_DELTA_COUNT, 8),
    (IE_OCTET_DELTA_COUNT, 8),
    (IE_FLOW_START_MILLISECONDS, 8),
    (IE_FLOW_END_MILLISECONDS, 8),
)

_EXPORT_RECORD_DTYPE = np.dtype(
    [
        ("src_addr", ">u4"),
        ("dst_addr", ">u4"),
        ("src_port", ">u2"),
        ("dst_port", ">u2"),
        ("protocol", "u1"),
        ("packets", ">u8"),
        ("octets", ">u8"),
        ("start_ms", ">u8"),
        ("end_ms", ">u8"),
    ]
)
assert _EXPORT_RECORD_DTYPE.itemsize == sum(n for _, n in _EXPORT_FIELDS)

_MS = 1000.0


def _template_set_bytes() -> bytes:
    body = _TEMPLATE_HEADER.pack(IPFIX_EXPORT_TEMPLATE_ID, len(_EXPORT_FIELDS))
    for ie, length in _EXPORT_FIELDS:
        body += _FIELD_SPEC.pack(ie, length)
    return _SET_HEADER.pack(_TEMPLATE_SET_ID, _SET_HEADER.size + len(body)) + body


class IpfixWriter:
    """Stream :data:`FLOW_RECORD_DTYPE` chunks as IPFIX messages.

    Every message re-announces template 256 (file readers see messages
    in order, but a collector replaying the file may start anywhere),
    then carries one data set, batched to the 64 KiB message limit.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.record_count = 0
        self._file = None

    def __enter__(self) -> "IpfixWriter":
        self._file = open(self.path, "wb")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def write(self, records: np.ndarray) -> None:
        """Append flow records, batched into <=64 KiB messages."""
        if self._file is None:
            raise TraceFormatError("IpfixWriter is not open")
        records = np.asarray(records)
        if records.dtype != FLOW_RECORD_DTYPE:
            raise TraceFormatError(
                f"chunk dtype {records.dtype} != FLOW_RECORD_DTYPE"
            )
        if records.size == 0:
            return
        if float(records["start"].min()) < 0.0:
            raise TraceFormatError(
                "IPFIX flowStartMilliseconds is unsigned; cannot encode a "
                f"flow starting at {float(records['start'].min()):g}s — "
                "rebase the records to a 0-based capture clock first"
            )
        wire = np.zeros(records.size, dtype=_EXPORT_RECORD_DTYPE)
        for field in ("src_addr", "dst_addr", "src_port", "dst_port",
                      "protocol", "packets", "octets"):
            wire[field] = records[field]
        wire["start_ms"] = np.rint(records["start"] * _MS).astype(np.uint64)
        wire["end_ms"] = np.rint(records["end"] * _MS).astype(np.uint64)

        template = _template_set_bytes()
        overhead = _MESSAGE_HEADER.size + len(template) + _SET_HEADER.size
        per_message = (_MAX_MESSAGE_LENGTH - overhead) // _EXPORT_RECORD_DTYPE.itemsize
        for lo in range(0, wire.size, per_message):
            block = wire[lo: lo + per_message]
            data = block.tobytes()
            data_set = _SET_HEADER.pack(
                IPFIX_EXPORT_TEMPLATE_ID, _SET_HEADER.size + len(data)
            ) + data
            length = _MESSAGE_HEADER.size + len(template) + len(data_set)
            header = _MESSAGE_HEADER.pack(
                IPFIX_VERSION,
                length,
                0,  # export_time: 0-based capture clock
                self.record_count & 0xFFFFFFFF,  # sequence
                0,  # observation domain
            )
            self._file.write(header)
            self._file.write(template)
            self._file.write(data_set)
            self.record_count += int(block.size)


def write_ipfix(records: np.ndarray, path) -> int:
    """Write one record array as an IPFIX archive; returns the count."""
    with IpfixWriter(path) as writer:
        writer.write(records)
        return writer.record_count


class _Template:
    """A decoded IPFIX template: field layout -> numpy view plan."""

    _WIDTH_DTYPES = {1: "u1", 2: ">u2", 4: ">u4", 8: ">u8"}

    def __init__(self, template_id: int, fields: list[tuple[int, int]]) -> None:
        self.template_id = template_id
        names: list[str] = []
        dtypes: list[str] = []
        self.by_ie: dict[int, str] = {}
        for i, (ie, length) in enumerate(fields):
            name = f"f{i}_ie{ie}"
            names.append(name)
            dtypes.append(self._WIDTH_DTYPES.get(length, f"V{length}"))
            # first occurrence wins (reverse fields are rare duplicates)
            self.by_ie.setdefault(ie, name)
        self.dtype = np.dtype(list(zip(names, dtypes)))
        self.record_size = self.dtype.itemsize

    def _field(self, wire: np.ndarray, ie: int):
        name = self.by_ie.get(ie)
        if name is None or self.dtype[name].kind == "V":
            return None
        return wire[name]

    def _has(self, ie: int) -> bool:
        name = self.by_ie.get(ie)
        return name is not None and self.dtype[name].kind != "V"

    def missing_fields(self) -> list[int]:
        required = (
            IE_SOURCE_IPV4_ADDRESS, IE_DESTINATION_IPV4_ADDRESS,
            IE_PROTOCOL_IDENTIFIER, IE_PACKET_DELTA_COUNT,
            IE_OCTET_DELTA_COUNT,
        )
        missing = [ie for ie in required if not self._has(ie)]
        has_start = any(
            self._has(ie)
            for ie in (IE_FLOW_START_MILLISECONDS, IE_FLOW_START_SECONDS)
        )
        has_end = any(
            self._has(ie)
            for ie in (IE_FLOW_END_MILLISECONDS, IE_FLOW_END_SECONDS)
        )
        if not has_start:
            missing.append(IE_FLOW_START_MILLISECONDS)
        if not has_end:
            missing.append(IE_FLOW_END_MILLISECONDS)
        return missing

    def decode(
        self, payload: bytes, *, path, offset: int, drop_invalid: bool = False
    ) -> "tuple[np.ndarray, int]":
        count = len(payload) // self.record_size
        wire = np.frombuffer(
            payload[: count * self.record_size], dtype=self.dtype
        )
        out = np.empty(count, dtype=FLOW_RECORD_DTYPE)
        start_ms = self._field(wire, IE_FLOW_START_MILLISECONDS)
        if start_ms is not None:
            out["start"] = start_ms.astype(np.float64) / _MS
        else:
            out["start"] = self._field(
                wire, IE_FLOW_START_SECONDS
            ).astype(np.float64)
        end_ms = self._field(wire, IE_FLOW_END_MILLISECONDS)
        if end_ms is not None:
            out["end"] = end_ms.astype(np.float64) / _MS
        else:
            out["end"] = self._field(
                wire, IE_FLOW_END_SECONDS
            ).astype(np.float64)
        out["src_addr"] = self._field(wire, IE_SOURCE_IPV4_ADDRESS)
        out["dst_addr"] = self._field(wire, IE_DESTINATION_IPV4_ADDRESS)
        out["protocol"] = self._field(wire, IE_PROTOCOL_IDENTIFIER)
        out["packets"] = self._field(wire, IE_PACKET_DELTA_COUNT)
        out["octets"] = self._field(wire, IE_OCTET_DELTA_COUNT)
        for ie, name in (
            (IE_SOURCE_TRANSPORT_PORT, "src_port"),
            (IE_DESTINATION_TRANSPORT_PORT, "dst_port"),
        ):
            column = self._field(wire, ie)
            out[name] = 0 if column is None else column
        bad = out["end"] < out["start"]
        if bool(np.any(bad)):
            if drop_invalid:
                return out[~bad], int(bad.sum())
            index = int(np.argmax(bad))
            raise TraceFormatError(
                f"{path}: record {index} of the data set at byte offset "
                f"{offset} ends before it starts"
            )
        return out, 0


class IpfixReader:
    """Bounded-memory chunk iterator over an IPFIX archive.

    Decodes template sets as encountered; data sets referencing an
    unknown template, or a template missing the five-tuple/counter/
    timestamp fields, raise :class:`TraceFormatError` naming the byte
    offset.  Set padding (RFC 7011 §3.3.1) is tolerated.

    ``errors="skip"`` drops malformed structures instead of raising and
    counts them in :attr:`skipped` (reset at the start of each pass):
    a bad set, an unknown or incomplete template's data set, or a
    bad-version message with a plausible length is skipped whole; a
    record that ends before it starts is dropped individually; a
    truncated message — where the stream cannot be re-synchronised —
    stops the pass.
    """

    format = "ipfix"

    def __init__(
        self, path, *, chunk: int = 65536, errors: str = "strict"
    ) -> None:
        self.path = Path(path)
        self.chunk = int(chunk)
        if self.chunk < 1:
            raise TraceFormatError(f"chunk must be >= 1 record, got {chunk}")
        if errors not in ("strict", "skip"):
            raise ParameterError(
                f"errors must be 'strict' or 'skip', got {errors!r}"
            )
        self.errors = errors
        #: malformed records/sets dropped by the most recent
        #: ``errors="skip"`` pass (0 under ``errors="strict"``)
        self.skipped = 0

    def _decode_template_set(self, body, templates, *, offset: int) -> None:
        pos = 0
        # a trailing fragment shorter than a template header is padding
        while pos + _TEMPLATE_HEADER.size <= len(body):
            template_id, field_count = _TEMPLATE_HEADER.unpack_from(body, pos)
            if template_id == 0 and field_count == 0:
                break  # padding
            pos += _TEMPLATE_HEADER.size
            if template_id < _MIN_DATA_SET_ID:
                raise TraceFormatError(
                    f"{self.path}: template id {template_id} < "
                    f"{_MIN_DATA_SET_ID} in the template set at byte "
                    f"offset {offset}"
                )
            fields: list[tuple[int, int]] = []
            for _ in range(field_count):
                if pos + _FIELD_SPEC.size > len(body):
                    raise TraceFormatError(
                        f"{self.path}: truncated template {template_id} in "
                        f"the set at byte offset {offset}: field specs run "
                        "past the set boundary"
                    )
                ie, length = _FIELD_SPEC.unpack_from(body, pos)
                pos += _FIELD_SPEC.size
                if ie & 0x8000:  # enterprise-specific: 4 extra bytes
                    pos += 4
                    ie &= 0x7FFF
                if length == 0 or length == 0xFFFF:
                    raise TraceFormatError(
                        f"{self.path}: template {template_id} field ie={ie} "
                        f"has unsupported length {length} (variable-length "
                        "elements are not supported) in the set at byte "
                        f"offset {offset}"
                    )
                fields.append((ie, length))
            templates[template_id] = _Template(template_id, fields)

    def _sets(self):
        """Yield decoded ``FLOW_RECORD_DTYPE`` blocks, one per data set."""
        skip = self.errors == "skip"
        templates: dict[int, _Template] = {}
        with open(self.path, "rb") as fh:
            offset = 0
            while True:
                raw = fh.read(_MESSAGE_HEADER.size)
                if not raw:
                    return
                if len(raw) < _MESSAGE_HEADER.size:
                    if skip:
                        self.skipped += 1
                        return
                    raise TraceFormatError(
                        f"{self.path}: truncated IPFIX message header at "
                        f"byte offset {offset}: got {len(raw)} bytes, "
                        f"expected {_MESSAGE_HEADER.size}"
                    )
                version, length, _etime, _seq, _odid = _MESSAGE_HEADER.unpack(raw)
                if length < _MESSAGE_HEADER.size:
                    if skip:
                        # the length sizes the message; without it the
                        # stream cannot be re-synchronised
                        self.skipped += 1
                        return
                    raise TraceFormatError(
                        f"{self.path}: implausible IPFIX message length "
                        f"{length} at byte offset {offset} (expected >= "
                        f"{_MESSAGE_HEADER.size})"
                    )
                if version != IPFIX_VERSION:
                    if skip:
                        # length is plausible: hop over this message
                        fh.seek(length - _MESSAGE_HEADER.size, 1)
                        self.skipped += 1
                        offset += length
                        continue
                    raise TraceFormatError(
                        f"{self.path}: bad IPFIX version {version} at byte "
                        f"offset {offset}, expected {IPFIX_VERSION}"
                    )
                body = fh.read(length - _MESSAGE_HEADER.size)
                if len(body) < length - _MESSAGE_HEADER.size:
                    if skip:
                        self.skipped += 1
                        return
                    raise TraceFormatError(
                        f"{self.path}: truncated IPFIX message at byte "
                        f"offset {offset}: got "
                        f"{_MESSAGE_HEADER.size + len(body)} bytes, the "
                        f"header promised {length}"
                    )
                pos = 0
                while pos + _SET_HEADER.size <= len(body):
                    set_offset = offset + _MESSAGE_HEADER.size + pos
                    set_id, set_length = _SET_HEADER.unpack_from(body, pos)
                    if set_length < _SET_HEADER.size:
                        if skip:
                            # set boundaries inside this message are
                            # lost; drop the message's remainder
                            self.skipped += 1
                            break
                        raise TraceFormatError(
                            f"{self.path}: implausible set length "
                            f"{set_length} at byte offset {set_offset} "
                            f"(expected >= {_SET_HEADER.size})"
                        )
                    if pos + set_length > len(body):
                        if skip:
                            self.skipped += 1
                            break
                        raise TraceFormatError(
                            f"{self.path}: set at byte offset {set_offset} "
                            f"runs past its message: set length {set_length}"
                            f", {len(body) - pos} bytes remain"
                        )
                    set_body = body[pos + _SET_HEADER.size: pos + set_length]
                    if set_id == _TEMPLATE_SET_ID:
                        try:
                            self._decode_template_set(
                                set_body, templates, offset=set_offset
                            )
                        except TraceFormatError:
                            if not skip:
                                raise
                            self.skipped += 1
                    elif set_id == _OPTIONS_TEMPLATE_SET_ID:
                        pass  # options records carry no flows
                    elif set_id >= _MIN_DATA_SET_ID:
                        template = templates.get(set_id)
                        if template is None:
                            if skip:
                                self.skipped += 1
                                pos += set_length
                                continue
                            raise TraceFormatError(
                                f"{self.path}: data set at byte offset "
                                f"{set_offset} references template "
                                f"{set_id}, which no template set has "
                                "defined yet"
                            )
                        missing = template.missing_fields()
                        if missing:
                            if skip:
                                self.skipped += 1
                                pos += set_length
                                continue
                            raise TraceFormatError(
                                f"{self.path}: template {set_id} lacks "
                                "required information elements "
                                f"{missing} (data set at byte offset "
                                f"{set_offset})"
                            )
                        block, dropped = template.decode(
                            set_body,
                            path=self.path,
                            offset=set_offset,
                            drop_invalid=skip,
                        )
                        self.skipped += dropped
                        if block.size:
                            yield block
                    # set ids 0,1,4..255 are reserved: skip
                    pos += set_length
                offset += length

    def record_chunks(self):
        """Yield decoded :data:`FLOW_RECORD_DTYPE` blocks (~``chunk``)."""
        self.skipped = 0
        pending: list[np.ndarray] = []
        pending_size = 0
        for block in self._sets():
            pending.append(block)
            pending_size += block.size
            if pending_size >= self.chunk:
                yield np.concatenate(pending)
                pending, pending_size = [], 0
        if pending:
            yield np.concatenate(pending)

    __iter__ = record_chunks
