"""The interop layer's common currency: columnar flow records.

Every flow archive format (NetFlow v5/cflowd datagrams, IPFIX messages)
decodes into chunks of :data:`FLOW_RECORD_DTYPE` — the five-tuple plus
the per-flow counters real exporters emit (packets, octets, first/last
timestamp) — and every writer encodes from the same dtype.  A
:class:`~repro.flows.records.FlowSet` converts losslessly in both
directions (:func:`flow_records_from_flowset`), so synthetic scenarios
can feed downstream collectors and operator archives can feed the
paper's model.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..flows.records import FlowSet

__all__ = [
    "FLOW_RECORD_DTYPE",
    "flow_records_from_flowset",
    "iter_record_chunks",
]

#: One exported flow record: decoded timestamps are float64 seconds on
#: the archive's own clock (rebasing to a 0-based capture clock is the
#: import stream's job, not the decoder's).
FLOW_RECORD_DTYPE = np.dtype(
    [
        ("start", "<f8"),
        ("end", "<f8"),
        ("src_addr", "<u4"),
        ("dst_addr", "<u4"),
        ("src_port", "<u2"),
        ("dst_port", "<u2"),
        ("protocol", "u1"),
        ("packets", "<i8"),
        ("octets", "<i8"),
    ]
)


def flow_records_from_flowset(flows: FlowSet) -> np.ndarray:
    """A :data:`FLOW_RECORD_DTYPE` array of the flow set, start-ordered.

    Only five-tuple flow sets export — NetFlow/IPFIX records *are*
    five-tuple records; a prefix-aggregated :class:`FlowSet` has no
    addresses/ports to put on the wire.
    """
    if flows.key_kind != "five_tuple":
        raise ParameterError(
            "only five_tuple flow sets export to NetFlow/IPFIX; got "
            f"key_kind={flows.key_kind!r} (prefix aggregation is a "
            "measurement-side view, not a wire format)"
        )
    records = np.empty(len(flows), dtype=FLOW_RECORD_DTYPE)
    records["start"] = flows.starts
    records["end"] = flows.ends
    for field in ("src_addr", "dst_addr", "src_port", "dst_port", "protocol"):
        records[field] = flows.keys[field]
    records["packets"] = flows.packet_counts
    records["octets"] = np.asarray(flows.sizes, dtype=np.int64)
    order = np.argsort(records["start"], kind="stable")
    return records[order]


def iter_record_chunks(records: np.ndarray, chunk: int | None):
    """Yield consecutive views of at most ``chunk`` flow records."""
    records = np.asarray(records)
    if records.dtype != FLOW_RECORD_DTYPE:
        raise ParameterError(
            f"expected FLOW_RECORD_DTYPE records, got dtype {records.dtype}"
        )
    if chunk is None:
        yield records
        return
    chunk = int(chunk)
    if chunk < 1:
        raise ParameterError(f"chunk must be >= 1 record, got {chunk}")
    for i in range(0, records.size, chunk):
        yield records[i: i + chunk]
