"""Adapters: imported telemetry -> ``MeasurementEngine.measure_chunks``.

Flow archives (NetFlow v5, IPFIX) decode into flow *records* — the
exporting router's own idle-timeout accounting.  To re-apply the
paper's flow semantics uniformly, :class:`FlowPacketStream` expands
each record back into its packets (uniformly spaced over the record's
lifetime, octets split as evenly as the byte granularity allows) and
streams time-ordered ``PACKET_DTYPE`` chunks into the measurement
engine's open-flow carry table.  Expansion preserves the record's
start, end, packet count and octet total exactly, and keeps
intra-record gaps at ``duration/(packets-1)`` — no larger than the
idle timeout that produced the record — so re-measuring with the same
timeout reproduces the archive's flows (up to the wire format's
timestamp quantization).

Packet captures (pcap) and native ``.rptr`` traces skip the expansion
and stream through :class:`PacketChunkStream`, which applies the same
clock rebasing and cross-chunk ordering checks.

Both streams carry ``duration`` and ``link_capacity`` attributes, so
``measure_chunks(stream)`` picks them up without re-plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import ParameterError, TraceFormatError
from ..trace.format import PACKET_DTYPE
from ..trace.io import TraceReader
from .ipfix import IpfixReader
from .netflow5 import NetFlow5Reader
from .pcap import PcapReader
from .records import FLOW_RECORD_DTYPE

__all__ = [
    "IMPORT_FORMATS",
    "ScanInfo",
    "detect_format",
    "expand_flow_records",
    "FlowPacketStream",
    "PacketChunkStream",
    "open_import_stream",
    "scan_record_chunks",
]

#: Formats ``open_import_stream`` accepts (plus ``"auto"``).
IMPORT_FORMATS = ("rptr", "netflow5", "ipfix", "pcap")

#: Timestamps above this are taken to be epoch seconds (the threshold
#: is ~3 years; capture-clock archives start near zero, epoch-anchored
#: ones near 1.7e9).
EPOCH_THRESHOLD = 1e8

_PCAP_MAGICS = (
    b"\xa1\xb2\xc3\xd4", b"\xd4\xc3\xb2\xa1",
    b"\xa1\xb2\x3c\x4d", b"\x4d\x3c\xb2\xa1",
)


def detect_format(path) -> str:
    """Sniff a telemetry file's format from its leading magic bytes."""
    path = Path(path)
    with open(path, "rb") as fh:
        head = fh.read(4)
    if len(head) < 4:
        # A missing or truncated file is a caller mistake (wrong path,
        # empty export), not a format mismatch — flag it as such.
        detail = "file is empty" if not head else (
            f"file holds only {len(head)} byte"
            f"{'' if len(head) == 1 else 's'}"
        )
        raise ParameterError(
            f"{path}: too short to identify a telemetry format ({detail}; "
            "every supported format needs at least 4 magic bytes)"
        )
    if head == b"RPTR":
        return "rptr"
    if head in _PCAP_MAGICS:
        return "pcap"
    version = int.from_bytes(head[:2], "big")
    if version == 5:
        return "netflow5"
    if version == 10:
        return "ipfix"
    raise TraceFormatError(
        f"{path}: unrecognised telemetry format (leading bytes "
        f"{head!r}); expected a .rptr trace, a pcap capture, a NetFlow "
        "v5 archive, or an IPFIX archive"
    )


@dataclass(frozen=True)
class ScanInfo:
    """One bounded-memory pass over an archive: counts and clock range."""

    records: int
    packets: int
    octets: int
    t_min: float
    t_max: float
    starts_sorted: bool

    @property
    def empty(self) -> bool:
        return self.records == 0


def scan_record_chunks(chunks) -> ScanInfo:
    """Scan flow-record chunks for counts, clock range and sortedness."""
    records = packets = octets = 0
    t_min = np.inf
    t_max = -np.inf
    prev_last = -np.inf
    starts_sorted = True
    for block in chunks:
        if block.size == 0:
            continue
        records += int(block.size)
        packets += int(block["packets"].sum())
        octets += int(block["octets"].sum())
        starts = block["start"]
        t_min = min(t_min, float(starts.min()))
        t_max = max(t_max, float(block["end"].max()))
        if starts_sorted:
            if float(starts[0]) < prev_last or bool(
                np.any(np.diff(starts) < 0)
            ):
                starts_sorted = False
        prev_last = float(starts[-1])
    if records == 0:
        return ScanInfo(0, 0, 0, 0.0, 0.0, True)
    return ScanInfo(records, packets, octets, t_min, t_max, starts_sorted)


def _scan_packet_chunks(chunks) -> ScanInfo:
    """Scan packet chunks (``PACKET_DTYPE``) the same way."""
    packets = octets = 0
    t_min = np.inf
    t_max = -np.inf
    prev_last = -np.inf
    sorted_ = True
    for block in chunks:
        if block.size == 0:
            continue
        packets += int(block.size)
        octets += int(block["size"].sum(dtype=np.int64))
        ts = block["timestamp"]
        t_min = min(t_min, float(ts.min()))
        t_max = max(t_max, float(ts.max()))
        if sorted_:
            if float(ts[0]) < prev_last or bool(np.any(np.diff(ts) < 0)):
                sorted_ = False
        prev_last = float(ts[-1])
    if packets == 0:
        return ScanInfo(0, 0, 0, 0.0, 0.0, True)
    return ScanInfo(packets, packets, octets, t_min, t_max, sorted_)


def expand_flow_records(records: np.ndarray) -> np.ndarray:
    """Expand flow records into the ``PACKET_DTYPE`` packets behind them.

    A record of ``n`` packets and ``S`` octets over ``[start, end]``
    becomes ``n`` packets at ``start + (end-start)*k/(n-1)`` (all at
    ``start`` when ``n == 1``), sized ``S // n`` with the remainder
    spread one byte each over the first packets — totals are exact.
    The output is NOT globally time-sorted (records interleave); the
    stream layer handles ordering.
    """
    records = np.asarray(records)
    if records.dtype != FLOW_RECORD_DTYPE:
        raise ParameterError(
            f"expected FLOW_RECORD_DTYPE records, got dtype {records.dtype}"
        )
    if records.size == 0:
        return np.empty(0, dtype=PACKET_DTYPE)
    n = records["packets"].astype(np.int64)
    octets = records["octets"].astype(np.int64)
    if bool(np.any(n < 1)):
        index = int(np.argmax(n < 1))
        raise TraceFormatError(
            f"flow record {index} claims {int(n[index])} packets; "
            "a flow carries at least one"
        )
    if bool(np.any(octets < n)):
        index = int(np.argmax(octets < n))
        raise TraceFormatError(
            f"flow record {index} claims {int(octets[index])} octets over "
            f"{int(n[index])} packets — less than one byte per packet"
        )
    mean_size = -(-octets // n)  # ceil
    if bool(np.any(mean_size > 65535)):
        index = int(np.argmax(mean_size > 65535))
        raise TraceFormatError(
            f"flow record {index} averages {int(mean_size[index])} octets "
            "per packet, above the 65535-byte packet cap — a sampled "
            "archive (sampling_interval > 1) cannot be expanded to packets"
        )
    spans = records["end"] - records["start"]
    if bool(np.any(spans < 0)):
        index = int(np.argmax(spans < 0))
        raise TraceFormatError(
            f"flow record {index} ends before it starts"
        )

    total = int(n.sum())
    out = np.empty(total, dtype=PACKET_DTYPE)
    # intra-record packet index k = 0..n-1
    firsts = np.concatenate(([0], np.cumsum(n)[:-1]))
    k = np.arange(total, dtype=np.int64) - np.repeat(firsts, n)
    denom = np.repeat(np.maximum(n - 1, 1), n).astype(np.float64)
    out["timestamp"] = (
        np.repeat(records["start"], n)
        + np.repeat(spans, n) * (k.astype(np.float64) / denom)
    )
    for field in ("src_addr", "dst_addr", "src_port", "dst_port", "protocol"):
        out[field] = np.repeat(records[field], n)
    base = octets // n
    remainder = octets - base * n
    out["size"] = np.repeat(base, n) + (k < np.repeat(remainder, n))
    return out


def _resolve_rebase(rebase: str, t_min: float) -> float:
    """The clock offset to subtract, per the ``rebase`` policy."""
    if rebase == "never":
        return 0.0
    if rebase == "always":
        return t_min
    if rebase == "auto":
        return t_min if t_min > EPOCH_THRESHOLD else 0.0
    raise ParameterError(
        f"rebase must be 'auto', 'always' or 'never', got {rebase!r}"
    )


class FlowPacketStream:
    """Expanded-packet chunk stream over a flow-record archive.

    Iterating yields time-ordered ``PACKET_DTYPE`` chunks suitable for
    :meth:`MeasurementEngine.measure_chunks`.  Records must arrive
    start-ordered — natively (``order='start'``), or via an in-memory
    sort of the (small) record table (``order='export'``); ``'auto'``
    scans first and picks.  Expanded packets are held back until the
    record-start watermark passes them, so emission order is globally
    nondecreasing while memory stays bounded by the flows that span
    the watermark.

    Attributes ``duration`` and ``link_capacity`` feed
    ``measure_chunks``'s defaults; counters (``records_read``,
    ``packets_emitted``) update as the stream drains.
    """

    def __init__(
        self,
        reader,
        *,
        scan: ScanInfo | None = None,
        order: str = "auto",
        rebase: str = "auto",
        duration: float | None = None,
        link_capacity: float | None = None,
    ) -> None:
        if order not in ("auto", "start", "export"):
            raise ParameterError(
                f"order must be 'auto', 'start' or 'export', got {order!r}"
            )
        self._reader = reader
        self.format = getattr(reader, "format", "flow-records")
        self.scan = scan if scan is not None else scan_record_chunks(reader)
        self.order = (
            ("start" if self.scan.starts_sorted else "export")
            if order == "auto"
            else order
        )
        self.base_offset = _resolve_rebase(rebase, self.scan.t_min)
        if duration is not None:
            self.duration = float(duration)
        elif self.scan.empty:
            self.duration = 0.0
        else:
            self.duration = self.scan.t_max - self.base_offset
        self.link_capacity = link_capacity
        self.records_read = 0
        self.packets_emitted = 0

    @property
    def records_skipped(self) -> int:
        """Malformed records the reader dropped (``errors="skip"``)."""
        return int(getattr(self._reader, "skipped", 0))

    def _record_chunks_sorted(self):
        """Record chunks in nondecreasing start order, per ``order``."""
        if self.order == "export":
            blocks = [b for b in self._reader if b.size]
            if not blocks:
                return
            table = np.concatenate(blocks)
            del blocks
            table = table[np.argsort(table["start"], kind="stable")]
            # hand the sorted table back out in reader-sized chunks
            chunk = max(int(getattr(self._reader, "chunk", 65536)), 1)
            for i in range(0, table.size, chunk):
                yield table[i: i + chunk]
            return
        watermark = -np.inf
        for block in self._reader:
            if block.size == 0:
                continue
            starts = block["start"]
            if float(starts[0]) < watermark or bool(
                np.any(np.diff(starts) < 0)
            ):
                raise TraceFormatError(
                    f"{getattr(self._reader, 'path', self.format)}: flow "
                    "records are not start-ordered; re-run with "
                    "order='export' (or 'auto') to sort the record table "
                    "in memory"
                )
            watermark = float(starts[-1])
            yield block

    def __iter__(self):
        pending = np.empty(0, dtype=PACKET_DTYPE)
        for block in self._record_chunks_sorted():
            self.records_read += int(block.size)
            packets = expand_flow_records(block)
            if self.base_offset:
                packets["timestamp"] -= self.base_offset
            pending = np.concatenate((pending, packets))
            # every future record starts at or after this watermark, so
            # packets at or before it are final
            watermark = float(block["start"][-1]) - self.base_offset
            ready = pending["timestamp"] <= watermark
            if bool(np.any(ready)):
                batch = pending[ready]
                batch = batch[np.argsort(batch["timestamp"], kind="stable")]
                pending = pending[~ready]
                self.packets_emitted += int(batch.size)
                yield batch
        if pending.size:
            pending = pending[
                np.argsort(pending["timestamp"], kind="stable")
            ]
            self.packets_emitted += int(pending.size)
            yield pending


class PacketChunkStream:
    """Rebased, order-checked packet chunks from a pcap or .rptr source.

    Sorts within each chunk (captures can reorder within a tick) and
    verifies chunks do not overlap in time — packets are measured
    through the same open-flow carry table as native traces.
    """

    def __init__(
        self,
        source,
        *,
        scan: ScanInfo | None = None,
        rebase: str = "auto",
        duration: float | None = None,
        link_capacity: float | None = None,
    ) -> None:
        self._source = source
        self.format = getattr(source, "format", "packets")
        self.scan = scan if scan is not None else _scan_packet_chunks(
            source.chunks()
        )
        self.base_offset = _resolve_rebase(rebase, self.scan.t_min)
        if duration is not None:
            self.duration = float(duration)
        elif self.scan.empty:
            self.duration = 0.0
        else:
            self.duration = self.scan.t_max - self.base_offset
        self.link_capacity = link_capacity
        self.packets_emitted = 0

    @property
    def records_read(self) -> int:
        return self.packets_emitted

    @property
    def records_skipped(self) -> int:
        """Malformed records the source dropped (``errors="skip"``)."""
        return int(getattr(self._source, "skipped", 0))

    def __iter__(self):
        prev_max = -np.inf
        for block in self._source.chunks():
            if block.size == 0:
                continue
            ts = block["timestamp"]
            if bool(np.any(np.diff(ts) < 0)):
                block = block[np.argsort(ts, kind="stable")]
                ts = block["timestamp"]
            if float(ts[0]) < prev_max:
                raise TraceFormatError(
                    f"{getattr(self._source, 'path', self.format)}: packet "
                    f"chunks overlap in time (chunk starts at "
                    f"{float(ts[0]):g}s, an earlier chunk ran to "
                    f"{prev_max:g}s); the capture is not time-ordered"
                )
            prev_max = float(ts[-1])
            if self.base_offset:
                block = block.copy()
                block["timestamp"] -= self.base_offset
            self.packets_emitted += int(block.size)
            yield block


def open_import_stream(
    path,
    *,
    format: str = "auto",
    chunk: int | None = None,
    order: str = "auto",
    rebase: str = "auto",
    duration: float | None = None,
    link_capacity: float | None = None,
    errors: str = "strict",
):
    """Open any supported telemetry file as a measure-ready stream.

    Returns a :class:`FlowPacketStream` (flow archives) or
    :class:`PacketChunkStream` (packet captures / native traces): an
    iterable of time-ordered ``PACKET_DTYPE`` chunks carrying
    ``duration``/``link_capacity``, directly consumable by
    ``MeasurementEngine.measure_chunks``.

    ``errors="skip"`` makes the format readers drop malformed records
    instead of raising (counted in the stream's ``records_skipped``);
    native ``.rptr`` traces are always read strictly.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"{path}: no such file")
    if errors not in ("strict", "skip"):
        raise ParameterError(
            f"errors must be 'strict' or 'skip', got {errors!r}"
        )
    if format == "auto":
        format = detect_format(path)
    if format not in IMPORT_FORMATS:
        raise ParameterError(
            f"format must be one of {('auto',) + IMPORT_FORMATS}, "
            f"got {format!r}"
        )
    if format == "rptr":
        reader = TraceReader(path)
        source_chunk = int(chunk) if chunk else 1_000_000

        class _RptrSource:
            format = "rptr"

            def __init__(self, reader, chunk):
                self.path = reader.path
                self._reader = reader
                self._chunk = chunk

            def chunks(self):
                return self._reader.chunks(self._chunk)

        # the native header already carries the trace geometry: no scan
        scan = ScanInfo(
            records=reader.packet_count,
            packets=reader.packet_count,
            octets=0,
            t_min=0.0,
            t_max=reader.duration,
            starts_sorted=True,
        )
        return PacketChunkStream(
            _RptrSource(reader, source_chunk),
            scan=scan,
            rebase="never",
            duration=duration if duration is not None else reader.duration,
            link_capacity=(
                link_capacity if link_capacity is not None
                else reader.link_capacity
            ),
        )
    if format == "pcap":
        source = PcapReader(
            path, chunk=int(chunk) if chunk else 1_000_000, errors=errors
        )
        return PacketChunkStream(
            source,
            rebase=rebase,
            duration=duration,
            link_capacity=link_capacity,
        )
    reader_cls = NetFlow5Reader if format == "netflow5" else IpfixReader
    reader = reader_cls(
        path, chunk=int(chunk) if chunk else 65536, errors=errors
    )
    return FlowPacketStream(
        reader,
        order=order,
        rebase=rebase,
        duration=duration,
        link_capacity=link_capacity,
    )
