"""NetFlow v5 / cflowd flow archives: streaming reader and writer.

The on-disk layout is the classic v5 export stream — consecutive
datagrams, each a 24-byte big-endian header followed by up to 30
48-byte flow records — exactly what a cflowd-style collector appends to
a file as datagrams arrive.  Decoding follows the router semantics:
``First``/``Last`` are SysUptime milliseconds, anchored to wall time by
the header's ``(sys_uptime, unix_secs, unix_nsecs)`` triple, so both
our own archives (exported on a 0-based capture clock) and real router
archives (epoch-anchored) come back as float64 seconds.

Timestamps quantize to 1 ms on the wire — the one documented lossy step
of the NetFlow round trip (see ``tests/interop/test_roundtrip.py``).
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from ..exceptions import ParameterError, TraceFormatError
from .records import FLOW_RECORD_DTYPE

__all__ = [
    "NETFLOW5_VERSION",
    "NETFLOW5_HEADER",
    "NETFLOW5_RECORD_SIZE",
    "MAX_RECORDS_PER_DATAGRAM",
    "NetFlow5Reader",
    "NetFlow5Writer",
    "write_netflow5",
]

NETFLOW5_VERSION = 5

#: version, count, sys_uptime(ms), unix_secs, unix_nsecs, flow_sequence,
#: engine_type, engine_id, sampling_interval — 24 bytes, big-endian.
NETFLOW5_HEADER = struct.Struct(">HHIIIIBBH")

#: The 48-byte v5 flow record, as a vectorizable structured dtype.
_RECORD_DTYPE = np.dtype(
    [
        ("srcaddr", ">u4"),
        ("dstaddr", ">u4"),
        ("nexthop", ">u4"),
        ("input", ">u2"),
        ("output", ">u2"),
        ("dPkts", ">u4"),
        ("dOctets", ">u4"),
        ("first", ">u4"),
        ("last", ">u4"),
        ("srcport", ">u2"),
        ("dstport", ">u2"),
        ("pad1", "u1"),
        ("tcp_flags", "u1"),
        ("prot", "u1"),
        ("tos", "u1"),
        ("src_as", ">u2"),
        ("dst_as", ">u2"),
        ("src_mask", "u1"),
        ("dst_mask", "u1"),
        ("pad2", ">u2"),
    ]
)

NETFLOW5_RECORD_SIZE = _RECORD_DTYPE.itemsize
assert NETFLOW5_RECORD_SIZE == 48

#: The v5 export cap: a datagram carries at most 30 records.
MAX_RECORDS_PER_DATAGRAM = 30

#: Upper sanity bound on a datagram's record count when reading; real v5
#: caps at 30, but some cflowd archives concatenate oversized datagrams.
_MAX_READ_COUNT = 8192

_MS = 1000.0
_U32_MAX = 0xFFFFFFFF


class NetFlow5Writer:
    """Stream :data:`FLOW_RECORD_DTYPE` chunks to a v5 archive.

    Records are written on a 0-based capture clock: ``sys_uptime``,
    ``unix_secs`` and ``unix_nsecs`` are zero, so ``First``/``Last`` are
    plain milliseconds since capture start — decoding with the standard
    anchor formula recovers them exactly (to the 1 ms quantum).

    Example::

        with NetFlow5Writer(path) as writer:
            for chunk in record_chunks:
                writer.write(chunk)
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.record_count = 0
        self._file = None

    def __enter__(self) -> "NetFlow5Writer":
        self._file = open(self.path, "wb")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def write(self, records: np.ndarray) -> None:
        """Append flow records (split into <=30-record datagrams)."""
        if self._file is None:
            raise TraceFormatError("NetFlow5Writer is not open")
        records = np.asarray(records)
        if records.dtype != FLOW_RECORD_DTYPE:
            raise TraceFormatError(
                f"chunk dtype {records.dtype} != FLOW_RECORD_DTYPE"
            )
        if records.size == 0:
            return
        starts = records["start"]
        ends = records["end"]
        if float(starts.min()) < 0.0:
            raise TraceFormatError(
                "NetFlow v5 timestamps are unsigned milliseconds; cannot "
                f"encode a flow starting at {float(starts.min()):g}s — "
                "rebase the records to a 0-based capture clock first"
            )
        first = np.rint(starts * _MS)
        last = np.rint(ends * _MS)
        if float(last.max()) > _U32_MAX:
            raise TraceFormatError(
                "NetFlow v5 timestamps are 32-bit milliseconds (max "
                f"{_U32_MAX / _MS:.0f}s); cannot encode a flow ending at "
                f"{float(ends.max()):g}s"
            )
        wire = np.zeros(records.size, dtype=_RECORD_DTYPE)
        wire["srcaddr"] = records["src_addr"]
        wire["dstaddr"] = records["dst_addr"]
        wire["dPkts"] = records["packets"]
        wire["dOctets"] = records["octets"]
        wire["first"] = first.astype(np.uint64)
        wire["last"] = last.astype(np.uint64)
        wire["srcport"] = records["src_port"]
        wire["dstport"] = records["dst_port"]
        wire["prot"] = records["protocol"]
        for lo in range(0, records.size, MAX_RECORDS_PER_DATAGRAM):
            block = wire[lo: lo + MAX_RECORDS_PER_DATAGRAM]
            header = NETFLOW5_HEADER.pack(
                NETFLOW5_VERSION,
                block.size,
                0,  # sys_uptime: the capture clock starts at 0
                0,  # unix_secs
                0,  # unix_nsecs
                self.record_count & _U32_MAX,  # flow_sequence
                0,  # engine_type
                0,  # engine_id
                0,  # sampling_interval
            )
            self._file.write(header)
            self._file.write(block.tobytes())
            self.record_count += int(block.size)


def write_netflow5(records: np.ndarray, path) -> int:
    """Write one record array as a v5 archive; returns the record count."""
    with NetFlow5Writer(path) as writer:
        writer.write(records)
        return writer.record_count


class NetFlow5Reader:
    """Bounded-memory chunk iterator over a NetFlow v5 archive.

    ``record_chunks()`` yields :data:`FLOW_RECORD_DTYPE` blocks of about
    ``chunk`` records (datagrams are never split, so blocks may run a
    datagram long); only one block plus one datagram is ever in memory.

    ``errors="strict"`` (the default) raises :class:`TraceFormatError`
    on corrupt or truncated archives, naming the byte offset and the
    expected size.  ``errors="skip"`` drops malformed data instead and
    counts it in :attr:`skipped` (reset at the start of each pass): a
    bad-version datagram with a plausible count is skipped whole, a
    ``Last < First`` record is dropped individually, and truncation —
    where the datagram boundary itself is unknown — stops the pass
    after counting what the header promised.
    """

    format = "netflow5"

    def __init__(
        self, path, *, chunk: int = 65536, errors: str = "strict"
    ) -> None:
        self.path = Path(path)
        self.chunk = int(chunk)
        if self.chunk < 1:
            raise TraceFormatError(f"chunk must be >= 1 record, got {chunk}")
        if errors not in ("strict", "skip"):
            raise ParameterError(
                f"errors must be 'strict' or 'skip', got {errors!r}"
            )
        self.errors = errors
        #: malformed records dropped by the most recent ``errors="skip"``
        #: pass (0 under ``errors="strict"``)
        self.skipped = 0

    def _skip(self, count: int, why: str) -> None:
        self.skipped += int(count)

    def _datagrams(self):
        """Yield ``(offset, header fields, record block)`` per datagram."""
        skip = self.errors == "skip"
        with open(self.path, "rb") as fh:
            offset = 0
            while True:
                raw = fh.read(NETFLOW5_HEADER.size)
                if not raw:
                    return
                if len(raw) < NETFLOW5_HEADER.size:
                    if skip:
                        # a torn header: no record boundary to recover
                        self._skip(1, "truncated header")
                        return
                    raise TraceFormatError(
                        f"{self.path}: truncated NetFlow v5 header at byte "
                        f"offset {offset}: got {len(raw)} bytes, expected "
                        f"{NETFLOW5_HEADER.size}"
                    )
                (
                    version, count, sys_uptime, unix_secs, unix_nsecs,
                    _sequence, _etype, _eid, _sampling,
                ) = NETFLOW5_HEADER.unpack(raw)
                if not 1 <= count <= _MAX_READ_COUNT:
                    if skip:
                        # the count sizes the datagram; without it the
                        # stream cannot be re-synchronised
                        self._skip(1, "implausible count")
                        return
                    raise TraceFormatError(
                        f"{self.path}: implausible record count {count} in "
                        f"the datagram header at byte offset {offset} "
                        f"(expected 1-{_MAX_READ_COUNT})"
                    )
                payload_size = count * NETFLOW5_RECORD_SIZE
                if version != NETFLOW5_VERSION:
                    if skip:
                        # count is plausible: hop over this datagram
                        fh.seek(payload_size, 1)
                        self._skip(count, "bad version")
                        offset += NETFLOW5_HEADER.size + payload_size
                        continue
                    raise TraceFormatError(
                        f"{self.path}: bad NetFlow version {version} at byte "
                        f"offset {offset}, expected {NETFLOW5_VERSION}"
                    )
                payload = fh.read(payload_size)
                if len(payload) < payload_size:
                    if skip:
                        self._skip(count, "truncated datagram")
                        return
                    raise TraceFormatError(
                        f"{self.path}: truncated NetFlow v5 datagram at "
                        f"byte offset {offset + NETFLOW5_HEADER.size}: got "
                        f"{len(payload)} bytes, expected {payload_size} "
                        f"({count} records of {NETFLOW5_RECORD_SIZE} bytes)"
                    )
                wire = np.frombuffer(payload, dtype=_RECORD_DTYPE)
                # router anchor: wall time of SysUptime's origin
                base = (
                    float(unix_secs)
                    + float(unix_nsecs) * 1e-9
                    - float(sys_uptime) / _MS
                )
                yield offset, base, wire
                offset += NETFLOW5_HEADER.size + payload_size

    def record_chunks(self):
        """Yield decoded :data:`FLOW_RECORD_DTYPE` blocks (~``chunk``)."""
        self.skipped = 0
        skip = self.errors == "skip"
        pending: list[np.ndarray] = []
        pending_size = 0
        for offset, base, wire in self._datagrams():
            block = np.empty(wire.size, dtype=FLOW_RECORD_DTYPE)
            block["start"] = base + wire["first"].astype(np.float64) / _MS
            block["end"] = base + wire["last"].astype(np.float64) / _MS
            block["src_addr"] = wire["srcaddr"]
            block["dst_addr"] = wire["dstaddr"]
            block["src_port"] = wire["srcport"]
            block["dst_port"] = wire["dstport"]
            block["protocol"] = wire["prot"]
            block["packets"] = wire["dPkts"]
            block["octets"] = wire["dOctets"]
            bad = block["end"] < block["start"]
            if bool(np.any(bad)):
                if skip:
                    self._skip(int(bad.sum()), "Last < First")
                    block = block[~bad]
                    if block.size == 0:
                        continue
                else:
                    index = int(np.argmax(bad))
                    raise TraceFormatError(
                        f"{self.path}: record {index} of the datagram at "
                        f"byte offset {offset} ends before it starts "
                        "(Last < First)"
                    )
            pending.append(block)
            pending_size += block.size
            if pending_size >= self.chunk:
                yield np.concatenate(pending)
                pending, pending_size = [], 0
        if pending:
            yield np.concatenate(pending)

    __iter__ = record_chunks
