"""repro.interop — real operator telemetry in and out of the model.

Readers stream NetFlow v5/cflowd and IPFIX flow archives and pcap
captures into bounded-memory chunks; writers export any
:class:`~repro.flows.records.FlowSet` or packet-chunk stream back out
in the same formats; the adapter layer re-applies the paper's
idle-timeout flow semantics through ``MeasurementEngine.measure_chunks``
so a multi-GB archive fits the model out-of-core.

Typical use::

    from repro.interop import open_import_stream
    from repro.measurement import MeasurementEngine

    stream = open_import_stream("router.nf5", format="auto")
    result = MeasurementEngine().measure_chunks(stream, delta=0.2)
"""

from .adapter import (
    IMPORT_FORMATS,
    FlowPacketStream,
    PacketChunkStream,
    ScanInfo,
    detect_format,
    expand_flow_records,
    open_import_stream,
    scan_record_chunks,
)
from .ipfix import IpfixReader, IpfixWriter, write_ipfix
from .netflow5 import NetFlow5Reader, NetFlow5Writer, write_netflow5
from .pcap import PcapReader, PcapWriter, write_pcap
from .records import (
    FLOW_RECORD_DTYPE,
    flow_records_from_flowset,
    iter_record_chunks,
)

__all__ = [
    "FLOW_RECORD_DTYPE",
    "IMPORT_FORMATS",
    "FlowPacketStream",
    "IpfixReader",
    "IpfixWriter",
    "NetFlow5Reader",
    "NetFlow5Writer",
    "PacketChunkStream",
    "PcapReader",
    "PcapWriter",
    "ScanInfo",
    "detect_format",
    "expand_flow_records",
    "flow_records_from_flowset",
    "iter_record_chunks",
    "open_import_stream",
    "scan_record_chunks",
    "write_ipfix",
    "write_netflow5",
    "write_pcap",
]
