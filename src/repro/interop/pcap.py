"""pcap capture files: packet-chunk reader and header-snap writer.

The reader turns a classic libpcap capture (either byte order,
microsecond or nanosecond resolution, Ethernet or raw-IP link type)
into bounded-memory :data:`~repro.trace.format.PACKET_DTYPE` chunks:
timestamp, IPv4 five-tuple, and the IP total length as the packet size.
Only IPv4 packets contribute; ports decode for TCP and UDP, other
protocols get port 0 — same convention as the synthesis engine.

The writer does the reverse for synthetic traces: each
``PACKET_DTYPE`` packet becomes a snapped capture record (IP header
plus a TCP or UDP-shaped transport header carrying the ports) whose
``orig_len``/IP total length is the model's packet size.  Non-TCP
protocols get a UDP-shaped 8-byte header so the ports survive; readers
that parse ports strictly per-protocol will see 0 there — the one
documented lossy corner of the pcap round trip.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from ..exceptions import ParameterError, TraceFormatError
from ..trace.format import PACKET_DTYPE

__all__ = [
    "PcapReader",
    "PcapWriter",
    "write_pcap",
    "LINKTYPE_ETHERNET",
    "LINKTYPE_RAW",
]

_MAGIC_US_LE = 0xA1B2C3D4  # written LE, read as LE
_MAGIC_NS_LE = 0xA1B23C4D
_GLOBAL_HEADER = struct.Struct("<IHHiIII")  # endianness swapped as needed
_RECORD_HEADER_SIZE = 16

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101

_ETHERTYPE_IPV4 = 0x0800
_IPPROTO_TCP = 6
_IPPROTO_UDP = 17

_IP_HEADER_SIZE = 20
_TCP_HEADER_SIZE = 20
_UDP_HEADER_SIZE = 8


class PcapWriter:
    """Stream ``PACKET_DTYPE`` chunks to a nanosecond-resolution pcap.

    Records are written little-endian with ``LINKTYPE_RAW`` (raw IPv4,
    no link-layer header) and headers-only snapping: 20-byte IP header
    plus 20 bytes of TCP (protocol 6) or 8 UDP-shaped bytes (everything
    else).  ``orig_len`` and the IP total-length field carry the
    model's packet size, so re-reading reproduces the trace exactly at
    nanosecond resolution.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.packet_count = 0
        self._file = None

    def __enter__(self) -> "PcapWriter":
        self._file = open(self.path, "wb")
        self._file.write(
            _GLOBAL_HEADER.pack(
                _MAGIC_NS_LE,
                2, 4,  # version 2.4
                0,  # thiszone
                0,  # sigfigs
                65535,  # snaplen
                LINKTYPE_RAW,
            )
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def write(self, packets: np.ndarray) -> None:
        """Append one packet chunk as snapped capture records."""
        if self._file is None:
            raise TraceFormatError("PcapWriter is not open")
        packets = np.asarray(packets)
        if packets.dtype != PACKET_DTYPE:
            raise TraceFormatError(
                f"chunk dtype {packets.dtype} != PACKET_DTYPE"
            )
        n = packets.size
        if n == 0:
            return
        if float(packets["timestamp"].min()) < 0.0:
            raise TraceFormatError(
                "pcap timestamps are unsigned; cannot encode a packet at "
                f"t={float(packets['timestamp'].min()):g}s — rebase the "
                "trace to a 0-based capture clock first"
            )
        is_tcp = packets["protocol"] == _IPPROTO_TCP
        transport = np.where(is_tcp, _TCP_HEADER_SIZE, _UDP_HEADER_SIZE)
        snap = (_IP_HEADER_SIZE + transport).astype(np.int64)
        sizes = packets["size"].astype(np.int64)
        if bool(np.any(sizes < snap)):
            index = int(np.argmax(sizes < snap))
            raise TraceFormatError(
                "packet sizes must cover the snapped headers "
                f"(IP + transport = {int(snap[index])} bytes); packet "
                f"{self.packet_count + index} has size {int(sizes[index])}"
            )

        # per-record byte layout: 16B record header + snap bytes
        rec_sizes = _RECORD_HEADER_SIZE + snap
        offsets = np.concatenate(([0], np.cumsum(rec_sizes)))
        buf = np.zeros(int(offsets[-1]), dtype=np.uint8)
        base = offsets[:-1]

        def put(offset_in_record, values, dtype):
            values = np.asarray(values, dtype=dtype)
            width = values.dtype.itemsize
            view = values.view(np.uint8).reshape(n, width)
            for b in range(width):
                buf[base + offset_in_record + b] = view[:, b]

        ts = packets["timestamp"]
        secs = np.floor(ts).astype(np.uint64)
        nanos = np.rint((ts - secs) * 1e9).astype(np.uint64)
        carry = (nanos >= 1_000_000_000).astype(np.uint64)
        secs = secs + carry
        nanos = nanos - carry * np.uint64(1_000_000_000)
        # record header (little-endian): ts_sec, ts_nsec, incl_len, orig_len
        put(0, secs, "<u4")
        put(4, nanos, "<u4")
        put(8, snap, "<u4")
        put(12, sizes, "<u4")

        ip = _RECORD_HEADER_SIZE
        buf[base + ip] = 0x45  # version 4, IHL 5
        put(ip + 2, sizes, ">u2")  # total length
        buf[base + ip + 8] = 64  # TTL
        buf[base + ip + 9] = packets["protocol"]
        put(ip + 12, packets["src_addr"], ">u4")
        put(ip + 16, packets["dst_addr"], ">u4")

        tp = ip + _IP_HEADER_SIZE
        put(tp + 0, packets["src_port"], ">u2")
        put(tp + 2, packets["dst_port"], ">u2")
        # UDP-shaped headers carry a length field at +4
        udp_len = np.where(is_tcp, 0, sizes - _IP_HEADER_SIZE)
        udp_rows = ~is_tcp
        if bool(np.any(udp_rows)):
            values = np.asarray(udp_len, dtype=">u2").view(np.uint8).reshape(n, 2)
            for b in range(2):
                target = base + tp + 4 + b
                buf[target[udp_rows]] = values[udp_rows, b]
        if bool(np.any(is_tcp)):
            buf[(base + tp + 12)[is_tcp]] = 0x50  # data offset 5

        self._file.write(buf.tobytes())
        self.packet_count += int(n)


def write_pcap(packets: np.ndarray, path) -> int:
    """Write one packet array as a pcap file; returns the packet count."""
    with PcapWriter(path) as writer:
        writer.write(packets)
        return writer.packet_count


class PcapReader:
    """Bounded-memory ``PACKET_DTYPE`` chunk iterator over a pcap file.

    Handles all four classic magics (micro/nanosecond, either byte
    order) and Ethernet or raw-IP link types.  Non-IPv4 records are
    skipped; truncated records raise :class:`TraceFormatError` naming
    the byte offset and expected size.

    ``errors="skip"`` counts a truncated trailing record in
    :attr:`skipped` (reset at the start of each pass) and stops the
    pass instead of raising — the classic pcap record header carries no
    magic to re-synchronise on, so mid-file truncation always ends the
    stream.  The global header is validated strictly either way.
    """

    format = "pcap"

    def __init__(
        self, path, *, chunk: int = 1_000_000, errors: str = "strict"
    ) -> None:
        self.path = Path(path)
        self.chunk = int(chunk)
        if self.chunk < 1:
            raise TraceFormatError(f"chunk must be >= 1 packet, got {chunk}")
        if errors not in ("strict", "skip"):
            raise ParameterError(
                f"errors must be 'strict' or 'skip', got {errors!r}"
            )
        self.errors = errors
        #: malformed records dropped by the most recent ``errors="skip"``
        #: pass (0 under ``errors="strict"``)
        self.skipped = 0
        self._read_global_header()

    def _read_global_header(self) -> None:
        with open(self.path, "rb") as fh:
            raw = fh.read(_GLOBAL_HEADER.size)
        if len(raw) < _GLOBAL_HEADER.size:
            raise TraceFormatError(
                f"{self.path}: truncated pcap global header at byte offset "
                f"0: got {len(raw)} bytes, expected {_GLOBAL_HEADER.size}"
            )
        magic_le = struct.unpack("<I", raw[:4])[0]
        magic_be = struct.unpack(">I", raw[:4])[0]
        if magic_le in (_MAGIC_US_LE, _MAGIC_NS_LE):
            self._endian = "<"
        elif magic_be in (_MAGIC_US_LE, _MAGIC_NS_LE):
            self._endian = ">"
        else:
            raise TraceFormatError(
                f"{self.path}: bad pcap magic 0x{magic_le:08x} at byte "
                "offset 0 (expected 0xa1b2c3d4 or 0xa1b23c4d in either "
                "byte order)"
            )
        magic = magic_le if self._endian == "<" else magic_be
        self._frac_scale = 1e-9 if magic == _MAGIC_NS_LE else 1e-6
        fields = struct.unpack(self._endian + "IHHiIII", raw)
        _, major, minor, _zone, _sigfigs, _snaplen, network = fields
        if (major, minor) != (2, 4):
            raise TraceFormatError(
                f"{self.path}: unsupported pcap version {major}.{minor} "
                "at byte offset 4, expected 2.4"
            )
        if network not in (LINKTYPE_ETHERNET, LINKTYPE_RAW):
            raise TraceFormatError(
                f"{self.path}: unsupported pcap link type {network} at "
                f"byte offset 20 (supported: {LINKTYPE_ETHERNET} Ethernet, "
                f"{LINKTYPE_RAW} raw IP)"
            )
        self.link_type = network
        self._link_offset = 14 if network == LINKTYPE_ETHERNET else 0

    def chunks(self, chunk: int | None = None):
        """Yield ``PACKET_DTYPE`` arrays of at most ``chunk`` packets."""
        chunk = self.chunk if chunk is None else int(chunk)
        skip = self.errors == "skip"
        self.skipped = 0
        header = struct.Struct(self._endian + "IIII")
        link = self._link_offset
        need = link + _IP_HEADER_SIZE

        rows: list[tuple] = []
        with open(self.path, "rb") as fh:
            fh.seek(_GLOBAL_HEADER.size)
            offset = _GLOBAL_HEADER.size
            while True:
                raw = fh.read(_RECORD_HEADER_SIZE)
                if not raw:
                    break
                if len(raw) < _RECORD_HEADER_SIZE:
                    if skip:
                        self.skipped += 1
                        break
                    raise TraceFormatError(
                        f"{self.path}: truncated pcap record header at "
                        f"byte offset {offset}: got {len(raw)} bytes, "
                        f"expected {_RECORD_HEADER_SIZE}"
                    )
                ts_sec, ts_frac, incl_len, orig_len = header.unpack(raw)
                data = fh.read(incl_len)
                if len(data) < incl_len:
                    if skip:
                        self.skipped += 1
                        break
                    raise TraceFormatError(
                        f"{self.path}: truncated pcap record at byte "
                        f"offset {offset + _RECORD_HEADER_SIZE}: got "
                        f"{len(data)} bytes, the record header promised "
                        f"{incl_len}"
                    )
                offset += _RECORD_HEADER_SIZE + incl_len
                if incl_len < need:
                    continue  # too short for an IP header: skip
                if link and struct.unpack(">H", data[12:14])[0] != _ETHERTYPE_IPV4:
                    continue
                ip = data[link:]
                if (ip[0] >> 4) != 4:
                    continue
                ihl = (ip[0] & 0x0F) * 4
                if ihl < _IP_HEADER_SIZE or len(ip) < ihl:
                    continue
                total_length = struct.unpack(">H", ip[2:4])[0]
                protocol = ip[9]
                src_addr, dst_addr = struct.unpack(">II", ip[12:20])
                src_port = dst_port = 0
                if protocol in (_IPPROTO_TCP, _IPPROTO_UDP) and len(ip) >= ihl + 4:
                    src_port, dst_port = struct.unpack(
                        ">HH", ip[ihl: ihl + 4]
                    )
                size = total_length if total_length else orig_len
                rows.append((
                    ts_sec + ts_frac * self._frac_scale,
                    src_addr, dst_addr, src_port, dst_port,
                    protocol, min(size, 65535),
                ))
                if len(rows) >= chunk:
                    yield np.array(rows, dtype=PACKET_DTYPE)
                    rows = []
        if rows:
            yield np.array(rows, dtype=PACKET_DTYPE)

    __iter__ = chunks
